#!/usr/bin/env python
"""A §8 sleep-policy comparison run through the sweep subsystem.

Expands the built-in ``sleep-policy`` matrix -- two fleet sizes times
four Hypnos configurations (no sleeping, the paper's redundancy-
preserving planner at 50 % and 30 % utilisation caps, and an aggressive
variant that drops the redundancy requirement) -- into eight independent
jobs, runs them across two worker processes, and tabulates mean power,
energy, and the per-policy savings range.

Because every job seeds its RNGs from ``hash(root_seed, job_key)``, the
numbers below are identical for any ``workers=`` value -- try it.
Equivalent CLI:  netpower sweep --preset sleep-policy --workers 2

Run:  python examples/sleep_policy_sweep.py
"""

import json
import tempfile
from pathlib import Path

from repro.sweep import MATRIX_PRESETS, run_sweep


def main():
    matrix = MATRIX_PRESETS["sleep-policy"]
    print(f"Sleep-policy sweep: {matrix.n_jobs} jobs "
          f"({'/'.join(matrix.topologies)} fleets x "
          f"{'/'.join(matrix.sleeps)}), "
          f"{matrix.duration_s / 3600:.0f} h at {matrix.step_s:.0f} s "
          "steps, 2 workers\n")
    with tempfile.TemporaryDirectory() as tmp:
        output = Path(tmp) / "sleep_policy_sweep.json"
        document = run_sweep(matrix, root_seed=7, workers=2,
                             output=output,
                             progress=lambda line: print(f"  {line}"))
        report_bytes = output.read_bytes()

    print(f"\n{'job':42s} {'mean W':>10s} {'kWh':>8s} "
          f"{'sleeping':>8s} {'saving W':>12s}")
    for job in document["jobs"]:
        aggregates = job["aggregates"]
        sleep = job["sleep"]
        if sleep is None:
            sleeping, saving = "-", "-"
        else:
            sleeping = f"{sleep['ever_asleep']}/{sleep['internal_links']}"
            saving = (f"{sleep['saving_lower_w']:.0f}-"
                      f"{sleep['saving_upper_w']:.0f}")
        print(f"{job['key']:42s} {aggregates['mean_power_w']:10,.1f} "
              f"{aggregates['energy_kwh']:8.2f} {sleeping:>8s} "
              f"{saving:>12s}")

    # The determinism contract, demonstrated: the report is a pure
    # function of (matrix, root_seed, engine), so re-serialising the
    # returned document reproduces the file written during the run.
    assert json.dumps(document, indent=2) + "\n" == report_bytes.decode()
    print("\nReport is deterministic: in-memory document == written file")


if __name__ == "__main__":
    main()
