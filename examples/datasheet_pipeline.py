#!/usr/bin/env python
"""The §3 datasheet pipeline end to end: "we thought it would be easy".

Walks the paper's collection chain: the NetBox device library supplies
the model list and datasheet URLs, the (deliberately messy) datasheets
are fetched and parsed, extraction accuracy is measured against ground
truth, and the two §3.3 analyses run: the efficiency-over-time trend and
the datasheet-vs-measured comparison of Table 1.

Run:  python examples/datasheet_pipeline.py
"""

import numpy as np

from repro.datasheets import (
    asic_trend_fit,
    build_corpus,
    datasheet_vs_measured,
    efficiency_trend,
    library_from_corpus,
    measure_accuracy,
    parse_corpus,
    trend_fit,
)
from repro.hardware import TABLE1_MEASURED_MEDIAN_W


def main():
    rng = np.random.default_rng(11)

    print("Building the corpus (777 datasheets, three vendors) ...")
    corpus = build_corpus(777, rng)
    library = library_from_corpus(corpus)
    print(f"  NetBox-style library: {len(library)} device types, "
          f"{len(library.datasheet_urls())} datasheet URLs")
    sample = corpus.document("NCS-55A1-24H")
    print("\nA sample sheet (what the parser is up against):")
    for line in sample.text.splitlines()[:8]:
        print(f"    {line}")

    print("\nExtracting fields from every sheet ...")
    parsed = parse_corpus(corpus)
    accuracy = measure_accuracy(corpus, parsed)
    print(f"  typical power : {100 * accuracy.typical_rate:.0f} % recovered")
    print(f"  max power     : {100 * accuracy.max_rate:.0f} % recovered")
    print(f"  bandwidth     : {100 * accuracy.bandwidth_rate:.0f} % "
          f"recovered  (port-sum sheets are hard -- as the paper found)")

    # --- §3.3.1: the efficiency trend -------------------------------------
    years = {m: d.truth.release_year for m, d in corpus.documents.items()
             if d.truth.release_year}
    points = efficiency_trend(parsed, release_years=years)
    router_fit = trend_fit(points)
    asic_fit = asic_trend_fit()
    print(f"\n=== Do datasheets show efficiency improving? ============")
    print(f"  ASIC level (Fig. 2a)   : {asic_fit.slope:+.1f} W/100G/yr, "
          f"r^2 = {asic_fit.r_squared:.2f}  -- unmistakable")
    print(f"  router level (Fig. 2b) : {router_fit.slope:+.1f} W/100G/yr, "
          f"r^2 = {router_fit.r_squared:.2f}  -- murky "
          f"({len(points)} routers)")

    # --- §3.3.2: are the numbers even right? --------------------------------
    print(f"\n=== Datasheet 'typical' vs measured median (Table 1) ====")
    rows = datasheet_vs_measured(parsed, TABLE1_MEASURED_MEDIAN_W)
    for row in rows:
        flag = "  <-- datasheet UNDERESTIMATES" \
            if not row.overestimates else ""
        print(f"  {row.router_model:20s} {row.datasheet_typical_w:5.0f} W "
              f"vs {row.measured_median_w:5.0f} W  "
              f"({100 * row.relative_overestimate:+3.0f} %){flag}")
    print("\nConclusion: datasheets are dimensioning numbers, not "
          "predictions -- and\nsometimes they are simply wrong (Q1).")


if __name__ == "__main__":
    main()
