#!/usr/bin/env python
"""Quickstart: derive a router power model and predict deployed power.

This walks the paper's core loop in ~60 lines of user code:

1. put a router on the virtual lab bench (NetPowerBench, §5);
2. run the Base / Idle / Port / Trx / Snake experiment protocol;
3. fit the §4 power model from the measurements;
4. use the model to predict the power of a deployment scenario.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ExperimentPlan,
    InterfaceState,
    Orchestrator,
    VirtualRouter,
    derive_power_model,
    router_spec,
)
from repro.core.model import InterfaceClassKey


def main():
    rng = np.random.default_rng(42)

    # --- 1. the device under test --------------------------------------
    dut = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng)
    print(f"DUT: {dut.model_name} with {len(dut.ports)} ports")
    print(f"Wall power, unconfigured: {dut.wall_power_w():.1f} W\n")

    # --- 2. the §5.2 experiment protocol --------------------------------
    orchestrator = Orchestrator(dut, rng=rng)
    plan = ExperimentPlan(
        trx_name="QSFP28-100G-DAC",          # the interface class to model
        n_pairs_values=(1, 2, 4, 6, 8, 10),  # port counts for regressions
        rates_gbps=(2.5, 10, 25, 50, 100),   # snake-test bit rates
        packet_sizes=(64, 256, 1024, 1500),  # snake-test payload sizes
    )
    print("Running Base / Idle / Port / Trx / Snake experiments ...")
    suite = orchestrator.run_suite(plan)
    print(f"  collected {len(suite.frames)} measurement frames\n")

    # --- 3. fit the power model -----------------------------------------
    model, reports = derive_power_model([suite])
    iface = next(iter(model.interfaces.values()))
    print("Fitted power model (paper's Table 2 (a) row for comparison):")
    print(f"  P_base    = {model.p_base_w.value:7.1f} W   (paper: 320)")
    print(f"  P_port    = {iface.p_port_w.value:7.2f} W   (paper: 0.32)")
    print(f"  P_trx,in  = {iface.p_trx_in_w.value:7.2f} W   (paper: 0.02)")
    print(f"  P_trx,up  = {iface.p_trx_up_w.value:7.2f} W   (paper: 0.19)")
    print(f"  E_bit     = {iface.e_bit_pj.value:7.1f} pJ  (paper: 22)")
    print(f"  E_pkt     = {iface.e_pkt_nj.value:7.1f} nJ  (paper: 58)")
    print(f"  P_offset  = {iface.p_offset_w.value:7.2f} W   (paper: 0.37)\n")

    # --- 4. predict a deployment scenario --------------------------------
    key = InterfaceClassKey("QSFP28", "Passive DAC", 100)
    scenario = [
        # ten interfaces up, each carrying 8 Gbps of ~700 B packets
        InterfaceState(key=key, bps=8e9, pps=8e9 / (8 * 738))
        for _ in range(10)
    ]
    predicted = model.predict_power_w(scenario)
    print(f"Predicted power with 10 loaded 100G interfaces: "
          f"{predicted:.1f} W")
    print(f"  static  : {model.static_power_w(scenario):.1f} W")
    print(f"  dynamic : {model.dynamic_power_w(scenario):.1f} W "
          f"(traffic is cheap -- the paper's §7 point)")


if __name__ == "__main__":
    main()
