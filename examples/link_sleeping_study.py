#!/usr/bin/env python
"""A sleep study (§8): what does turning links off actually save?

Replays the paper's Hypnos analysis on the synthetic fleet and contrasts
three numbers:

* what prior work would have claimed (P_port + P_trx per side);
* the realistic range once "down != off" is accounted for
  (P_port + P_trx,up, with P_trx,up only bounded by datasheets);
* how much of the transceiver power is on external links and therefore
  untouchable by an intra-domain protocol.

Run:  python examples/link_sleeping_study.py
"""

import numpy as np

from repro import units
from repro.network import FleetTrafficModel, build_switch_like_network
from repro.sleep import (
    Hypnos,
    HypnosConfig,
    external_power_share,
    naive_saving_w,
    plan_savings,
)


def main():
    rng = np.random.default_rng(7)
    print("Building the fleet and routing the traffic matrix ...")
    network = build_switch_like_network(rng=rng)
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(8),
                                n_demands=800)

    reference_w = network.total_wall_power_w()
    print(f"  total power    : {reference_w:,.0f} W")
    print(f"  internal links : {len(network.internal_links())}")
    print(f"  external links : {len(network.external_links())}")

    # --- plan a week of sleeping ------------------------------------------
    print("\nPlanning one week of link sleeping (hourly windows) ...")
    hypnos = Hypnos(network, traffic.matrix,
                    HypnosConfig(max_utilisation=0.5,
                                 require_redundancy=True))
    plan = hypnos.plan(0, units.days(7))
    sleeping = plan.ever_sleeping()
    print(f"  links asleep at least sometimes: {len(sleeping)} "
          f"({100 * len(sleeping) / len(network.internal_links()):.0f} % "
          f"of internal links)")

    # --- the three savings numbers ------------------------------------------
    naive = sum(plan.sleep_fraction(lid) * naive_saving_w(network, lid)
                for lid in sleeping)
    estimate = plan_savings(network, plan, reference_w)

    print(f"\n=== Savings ============================================")
    print(f"  prior-work expectation : {naive:6.0f} W "
          f"({100 * naive / reference_w:.1f} %)")
    print(f"  realistic range        : {estimate.lower_w:.0f}-"
          f"{estimate.upper_w:.0f} W "
          f"({100 * estimate.lower_fraction:.1f}-"
          f"{100 * estimate.upper_fraction:.1f} %)")
    print(f"  paper's finding        : 80-390 W (0.4-1.9 %)")

    # --- why so little? ------------------------------------------------------
    share = external_power_share(network)
    print(f"\n=== Why so little? =====================================")
    print(f"  1. 'down' does not power transceivers off: only P_trx,up "
          f"is recoverable;")
    print(f"  2. {100 * share['external_share']:.0f} % of transceiver "
          f"power sits on external links")
    print(f"     (internal {share['internal_trx_w']:.0f} W vs external "
          f"{share['external_trx_w']:.0f} W) -- out of reach for an "
          f"intra-domain protocol.")

    # --- bonus: what if the software fix landed? -------------------------------
    fixed_extra = 0.0
    for lid in sleeping:
        link = next(l for l in network.internal_links()
                    if l.link_id == lid)
        for end in (link.a, link.b):
            port = network.port_of(end)
            truth = port.class_truth()
            if truth is not None:
                fixed_extra += plan.sleep_fraction(lid) * truth.p_trx_in_w
    print(f"\nIf admin-down actually powered modules off (§7's software "
          f"fix),\nsleeping would recover another {fixed_extra:.0f} W.")


if __name__ == "__main__":
    main()
