#!/usr/bin/env python
"""Export every figure's data as CSV (plot with your tool of choice).

Runs a short monitored campaign, derives what each figure needs, and
writes one CSV per figure into ``./figure_data/``.  This is the artifact
a replication hands to a plotting pipeline.

Run:  python examples/export_figure_data.py
"""

import numpy as np

from repro import units
from repro.datasheets import build_corpus, parse_corpus
from repro.figures import (
    fig1_data,
    fig2a_data,
    fig2b_data,
    fig5_data,
    fig6_data,
    write_figures,
)
from repro.network import (
    FleetConfig,
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)
from repro.psu_opt import clean_exports


def main():
    print("Simulating two monitored days of a small fleet ...")
    config = FleetConfig(
        model_counts=(("8201-32FH", 2), ("NCS-55A1-24H", 3),
                      ("NCS-55A1-24Q6H-SS", 3), ("ASR-920-24SZ-M", 6),
                      ("N540-24Z8Q2C-M", 4)),
        n_regional_pops=3, core_core_links=2)
    network = build_switch_like_network(config,
                                        rng=np.random.default_rng(7))
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(8))
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(9))
    result = sim.run(duration_s=units.days(2), step_s=1800)

    print("Building the datasheet corpus ...")
    corpus = build_corpus(200, np.random.default_rng(11))
    parsed = parse_corpus(corpus)
    years = {m: d.truth.release_year for m, d in corpus.documents.items()
             if d.truth.release_year}

    figures = [
        fig1_data(result.total_power, result.total_traffic_bps,
                  window_s=units.hours(1)),
        fig2a_data(),
        fig2b_data(parsed, years),
        fig5_data(),
        fig6_data(clean_exports(result.sensor_exports)),
    ]
    paths = write_figures(figures, "figure_data")
    print("\nWrote:")
    for path in paths:
        print(f"  {path}")
    print("\nEach CSV carries the exact series the corresponding paper "
          "figure plots.")


if __name__ == "__main__":
    main()
