#!/usr/bin/env python
"""Energy audit of a Tier-2 ISP: the paper's §7 + §9 pipeline.

Builds the 107-router Switch-like network, runs a monitored week, and
produces the audit an operator would want:

* where the power goes (base systems vs transceivers vs traffic);
* how (in)efficient the PSU population is (Fig. 6);
* what the §9 measures would save (Table 3 / Table 4 style).

Run:  python examples/isp_energy_audit.py
"""

import numpy as np

from repro import units
from repro.hardware import EightyPlus
from repro.network import (
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)
from repro.psu_opt import (
    clean_exports,
    efficiency_scatter,
    resize_savings,
    single_psu_savings,
    upgrade_savings,
)


def main():
    rng = np.random.default_rng(7)

    print("Building the Switch-like fleet (107 routers) ...")
    network = build_switch_like_network(rng=rng)
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(8))
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(9))

    print("Simulating one monitored week ...")
    result = sim.run(duration_s=units.days(7), step_s=1800)

    total_w = result.total_power.mean()
    traffic_tbps = units.bps_to_tbps(result.total_traffic_bps.mean())
    print(f"\n=== Network totals =====================================")
    print(f"  total power    : {total_w:,.0f} W")
    print(f"  total traffic  : {traffic_tbps:.2f} Tbps "
          f"({100 * result.total_traffic_bps.mean() / network.total_capacity_bps():.1f} % of capacity)")

    # --- where the power goes -------------------------------------------
    base_w = sum(r.spec.p_base_w for r in network.routers.values()
                 if r.powered)
    trx_w = 0.0
    for router in network.routers.values():
        for port in router.ports:
            truth = port.class_truth()
            if truth is not None:
                trx_w += truth.p_trx_in_w
                if port.link_up:
                    trx_w += truth.p_trx_up_w
    print(f"\n=== Power breakdown ====================================")
    print(f"  base systems   : {base_w:8,.0f} W "
          f"({100 * base_w / total_w:.0f} %)")
    print(f"  transceivers   : {trx_w:8,.0f} W "
          f"({100 * trx_w / total_w:.0f} %)   <- the paper's ≈10 %")
    print(f"  everything else: conversion losses, ports, traffic")

    # --- PSU efficiency audit (§9) ----------------------------------------
    points = clean_exports(result.sensor_exports)
    loads, effs = efficiency_scatter(points)
    print(f"\n=== PSU population ({len(points)} supplies) =============")
    print(f"  loads        : {loads.min():.0f}-{loads.max():.0f} % "
          f"(mean {loads.mean():.0f} %) -- everything runs oversupplied")
    print(f"  efficiencies : {effs.min():.0%} to {effs.max():.0%} "
          f"(mean {effs.mean():.0%})")

    print(f"\n=== What would the §9 measures save? ====================")
    for std in EightyPlus:
        saving = upgrade_savings(points, std)
        print(f"  all PSUs >= {std.value:9s}: "
              f"{100 * saving.fraction:4.1f} %  ({saving.saved_w:6,.0f} W)")
    single = single_psu_savings(points)
    print(f"  one PSU per router  : {100 * single.fraction:4.1f} %  "
          f"({single.saved_w:6,.0f} W)")
    resize = resize_savings(points, k=2.0, min_capacity_w=250)
    print(f"  right-size (k=2)    : {100 * resize.fraction:4.1f} %  "
          f"({resize.saved_w:6,.0f} W)")
    print("\nTakeaway: conversion losses, not traffic, are where the "
          "recoverable joules hide.")


if __name__ == "__main__":
    main()
