#!/usr/bin/env python
"""Validating power data sources (§6): PSU vs Autopower vs model.

Deploys Autopower measurement units on three routers of different models
in a small production network, runs a monitored week, then compares for
each device (i) the router's own PSU telemetry and (ii) the lab-derived
model prediction against the external ground truth -- the paper's Fig. 4
experiment end to end.

Run:  python examples/validate_power_sources.py
"""

import numpy as np

from repro import units
from repro.core import derive_power_model
from repro.hardware import VirtualRouter, router_spec
from repro.lab import ExperimentPlan, Orchestrator
from repro.network import (
    DeployAutopower,
    FleetConfig,
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)
from repro.validation import validate_router


def derive_lab_model(device, trx_names, seed):
    """Characterise one router model in the lab for the given modules."""
    rng = np.random.default_rng(seed)
    dut = VirtualRouter(router_spec(device), rng=rng, noise_std_w=0.2)
    orchestrator = Orchestrator(dut, rng=rng)
    suites = [
        orchestrator.run_suite(ExperimentPlan(
            trx_name=trx, n_pairs_values=(1, 2, 4, 6),
            rates_gbps=(2.5, 10, 25, 50), packet_sizes=(256, 1500),
            snake_n_pairs=3, measure_duration_s=20, settle_time_s=2))
        for trx in trx_names
    ]
    model, _ = derive_power_model(suites)
    return model


def main():
    config = FleetConfig(
        model_counts=(("8201-32FH", 2), ("NCS-55A1-24H", 3),
                      ("NCS-55A1-24Q6H-SS", 3), ("ASR-920-24SZ-M", 6)),
        n_regional_pops=3, core_core_links=2)
    network = build_switch_like_network(config,
                                        rng=np.random.default_rng(31))
    targets = {
        "8201-32FH": next(h for h in sorted(network.routers)
                          if network.routers[h].model_name == "8201-32FH"),
        "NCS-55A1-24H": next(h for h in sorted(network.routers)
                             if network.routers[h].model_name
                             == "NCS-55A1-24H"),
    }

    print("Simulating a monitored week (Autopower deployed on day 1) ...")
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(32),
                                mean_external_utilisation=0.05,
                                internal_utilisation_scale=6.0)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(33))
    result = sim.run(
        duration_s=units.days(7), step_s=900,
        events=[DeployAutopower(at_s=units.days(1), hostname=h)
                for h in targets.values()],
        detailed_hosts=sorted(targets.values()))

    print("Deriving lab models for the two platforms ...\n")
    models = {
        "8201-32FH": derive_lab_model(
            "8201-32FH",
            ("QSFP-DD-400G-FR4", "QSFP-DD-400G-LR4", "QSFP-DD-400G-DAC",
             "QSFP28-100G-LR4"), seed=501),
        "NCS-55A1-24H": derive_lab_model(
            "NCS-55A1-24H",
            ("QSFP28-100G-DAC", "QSFP28-100G-LR4", "QSFP28-100G-SR4"),
            seed=502),
    }

    print(f"{'router':14s} {'model':16s} {'PSU telemetry':30s} "
          f"{'model prediction':30s}")
    print("-" * 92)
    for model_name, hostname in targets.items():
        report = validate_router(
            hostname=hostname, trace=result.snmp[hostname],
            autopower=result.autopower[hostname],
            model=models[model_name])
        psu = report.psu_verdict().value
        if report.psu_stats is not None:
            psu += f" ({report.psu_stats.offset_w:+.0f} W)"
        model_str = (f"{report.model_verdict().value} "
                     f"({report.model_stats.offset_w:+.0f} W)")
        print(f"{hostname:14s} {model_name:16s} {psu:30s} {model_str:30s}")

    print("\nReading: the model's *shape* is right everywhere (precise); "
          "the constant\noffset comes from PSU-instance differences and "
          "spare modules the inventory\nhides -- exactly the paper's Q2/Q3 "
          "answer.")


if __name__ == "__main__":
    main()
