#!/usr/bin/env python
"""The §4.3 extension in action: modeling a modular chassis router.

The paper's model covers fixed-chassis routers and sketches the
extension for modular platforms: a ``P_linecard`` term "measured
similarly as P_trx".  This walkthrough derives it: chassis power from
the empty chassis, per-card power from a regression over the number of
inserted cards, and a prediction for a populated production chassis --
checked against the virtual hardware's actual draw.

Run:  python examples/modular_chassis.py
"""

import numpy as np

from repro.hardware import ModularRouter, chassis_spec, connect
from repro.lab import ModularOrchestrator


def main():
    rng = np.random.default_rng(17)

    dut = ModularRouter(chassis_spec("MOD-CHASSIS-6"), rng=rng,
                        noise_std_w=0.2)
    print(f"DUT: {dut.chassis.name}, {dut.n_slots} slots, "
          f"empty-chassis wall power {dut.wall_power_w():.0f} W\n")

    orchestrator = ModularOrchestrator(dut, rng=rng)

    print("Deriving P_linecard by count regression (the paper's sketch):")
    model, reports = orchestrator.derive_model(
        ["LC-24X10GE", "LC-8X100GE", "LC-4X400GE"], counts=(1, 2, 3, 4))
    print(f"  P_chassis = {model.p_base_w.value:.0f} W (truth 540)")
    truths = {"LC-24X10GE": 180, "LC-8X100GE": 310, "LC-4X400GE": 405}
    for card, fitted in model.linecards.items():
        report = reports[card]
        print(f"  {card:12s}: {fitted.value:6.1f} ± {fitted.stderr:.1f} W "
              f"(truth {truths[card]}, r^2 = {report.fit.r_squared:.4f})")

    # --- predict a production chassis -------------------------------------
    cards = ["LC-8X100GE", "LC-8X100GE", "LC-4X400GE", "LC-24X10GE"]
    predicted = model.predict_modular_power_w(cards, [])
    print(f"\nPredicted power of a chassis with {len(cards)} cards "
          f"(no interfaces up): {predicted:.0f} W")

    # Build it for real and compare.
    production = ModularRouter(chassis_spec("MOD-CHASSIS-6"),
                               rng=np.random.default_rng(18),
                               noise_std_w=0.0)
    for slot, card in enumerate(cards):
        production.insert_linecard(slot, card)
    actual = production.wall_power_w()
    print(f"Virtual hardware actually draws:                   "
          f"{actual:.0f} W")
    print(f"Prediction error: "
          f"{100 * (predicted - actual) / actual:+.1f} % -- the same "
          f"precise-with-small-offset behaviour as the fixed-chassis "
          f"models (§6).")

    # --- the cards' interfaces work like any other ----------------------------
    ports = production._slot_ports[0]
    ports[0].plug("QSFP28-100G-LR4")
    ports[1].plug("QSFP28-100G-LR4")
    for p in ports[:2]:
        p.set_admin(True)
    connect(ports[0], ports[1])
    with_link = production.wall_power_w()
    print(f"\nBringing up one 100G LR4 link on the card adds "
          f"{with_link - actual:.1f} W (2 x (P_port + P_trx,in + "
          f"P_trx,up)).")


if __name__ == "__main__":
    main()
