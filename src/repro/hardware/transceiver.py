"""Port types and pluggable transceiver modules.

The paper's central transceiver finding (§7) is that *"down" does not mean
"off"*: a large share of a transceiver's power -- ``P_trx,in`` -- is drawn
as soon as the module is plugged into a port, even if that port is
administratively down.  Only the remainder -- ``P_trx,up`` -- depends on the
interface coming up.  The catalog below encodes that split per module, plus
the datasheet power value operators would read off the module's spec sheet
(used by the link-sleeping analysis of §8, which only knows
``P_trx = P_trx,in + P_trx,up`` from datasheets).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Tuple


class PortType(enum.Enum):
    """Physical port cages found on the routers the paper studies."""

    SFP = "SFP"
    SFP_PLUS = "SFP+"
    SFP28 = "SFP28"
    QSFP = "QSFP"
    QSFP28 = "QSFP28"
    QSFP_DD = "QSFP-DD"
    RJ45 = "RJ45"

    @property
    def max_speed_gbps(self) -> float:
        """Nominal maximum line rate supported by the cage."""
        return _PORT_MAX_SPEED[self]


_PORT_MAX_SPEED: Dict[PortType, float] = {
    PortType.SFP: 1.0,
    PortType.SFP_PLUS: 10.0,
    PortType.SFP28: 25.0,
    PortType.QSFP: 40.0,
    PortType.QSFP28: 100.0,
    PortType.QSFP_DD: 400.0,
    PortType.RJ45: 10.0,
}


class Reach(enum.Enum):
    """Optical reach / media class of a transceiver."""

    DAC = "Passive DAC"      # passive copper, near-zero module power
    AOC = "AOC"              # active optical cable
    SR = "SR"                # short reach multimode
    LR = "LR"                # long reach single mode (10 km)
    LR4 = "LR4"              # 4-lane long reach
    FR4 = "FR4"              # 4-lane 2km reach (400G)
    CWDM4 = "CWDM4"
    ER = "ER"                # extended reach (40 km)
    ZR = "ZR"                # coherent 80 km+
    T = "T"                  # electrical copper (BASE-T)


@dataclass(frozen=True)
class TransceiverModel:
    """A pluggable transceiver product.

    Attributes
    ----------
    name:
        Catalog identifier, e.g. ``"QSFP28-100G-LR4"``.
    form_factor:
        The :class:`PortType` cage the module plugs into.
    reach:
        Media class; passive DACs draw almost nothing, coherent optics a lot.
    speed_gbps:
        Nominal line rate of the module.
    power_in_w:
        True power drawn as soon as the module is seated in a powered
        router, regardless of the port's admin state (``P_trx,in``).
    power_up_w:
        True additional power once the interface is up (``P_trx,up``).
        Small -- sometimes slightly negative in fitted models -- because
        the laser of an optical module is typically on from plug-in.
    datasheet_power_w:
        The "max power" number printed on the module's datasheet.  This is
        what §8 has to use when no fitted model exists; it approximates
        ``P_trx,in + P_trx,up`` with generous margin.
    powers_off_when_down:
        Whether taking the port admin-down cuts the module's ``P_trx,in``
        draw.  ``False`` for every module the paper measured ("down" does
        not mean "off"); exposed so the ablation benches can explore the
        software fix the paper postulates.
    """

    name: str
    form_factor: PortType
    reach: Reach
    speed_gbps: float
    power_in_w: float
    power_up_w: float
    datasheet_power_w: float
    powers_off_when_down: bool = False

    @property
    def total_power_w(self) -> float:
        """True steady-state power of a plugged, up module."""
        return self.power_in_w + self.power_up_w

    def power_draw(self, plugged: bool, link_up: bool, *,
                   port_admin_up: bool = True) -> float:
        """True module power for a given port state.

        Models the §7 observation: ``power_in_w`` is paid from plug-in
        unless the platform actually powers modules off on admin-down
        (``powers_off_when_down``).
        """
        if not plugged:
            return 0.0
        if self.powers_off_when_down and not port_admin_up:
            return 0.0
        power = self.power_in_w
        if link_up:
            power += self.power_up_w
        return power


_serial_counter = itertools.count(1)


@dataclass
class TransceiverInstance:
    """A physical module: a :class:`TransceiverModel` plus a serial number.

    Operators track instances, not products; inventory files (§6.2) list the
    module type per interface, and spare modules left plugged into inactive
    ports are individual instances the model does not know about.
    """

    model: TransceiverModel
    serial: str = field(default_factory=lambda: f"TRX{next(_serial_counter):08d}")

    @property
    def name(self) -> str:
        """Product name of the underlying model."""
        return self.model.name


def _trx(name: str, form: PortType, reach: Reach, speed: float,
         p_in: float, p_up: float, datasheet: float) -> TransceiverModel:
    return TransceiverModel(
        name=name, form_factor=form, reach=reach, speed_gbps=speed,
        power_in_w=p_in, power_up_w=p_up, datasheet_power_w=datasheet,
    )


#: Catalog of transceiver products used across the simulated Switch network
#: and the lab experiments.  The ``power_in``/``power_up`` splits for the
#: modules appearing in Tables 2 and 6 come straight from the paper; the
#: rest are datasheet-typical values with the paper's qualitative split
#: (plug-in cost dominates for optics, is negligible for passive copper).
TRANSCEIVER_CATALOG: Dict[str, TransceiverModel] = {
    m.name: m
    for m in [
        # --- Passive copper -------------------------------------------------
        _trx("QSFP28-100G-DAC", PortType.QSFP28, Reach.DAC, 100, 0.02, 0.19, 0.5),
        _trx("QSFP28-50G-DAC", PortType.QSFP28, Reach.DAC, 50, 0.02, 0.16, 0.5),
        _trx("QSFP28-25G-DAC", PortType.QSFP28, Reach.DAC, 25, 0.02, 0.08, 0.5),
        _trx("QSFP28-40G-DAC", PortType.QSFP28, Reach.DAC, 40, 0.11, 0.16, 0.5),
        _trx("QSFP-100G-DAC", PortType.QSFP, Reach.DAC, 100, 0.35, 0.21, 0.5),
        _trx("SFP28-25G-DAC", PortType.SFP28, Reach.DAC, 25, 0.05, 0.05, 0.4),
        _trx("SFP+-10G-DAC", PortType.SFP_PLUS, Reach.DAC, 10, 0.04, 0.04, 0.4),
        # --- Short-reach optics ---------------------------------------------
        _trx("QSFP28-100G-SR4", PortType.QSFP28, Reach.SR, 100, 1.7, 0.3, 2.5),
        _trx("QSFP28-100G-CWDM4", PortType.QSFP28, Reach.CWDM4, 100, 2.4, 0.4, 3.5),
        _trx("SFP+-10G-SR", PortType.SFP_PLUS, Reach.SR, 10, 0.55, 0.1, 1.0),
        _trx("SFP28-25G-SR", PortType.SFP28, Reach.SR, 25, 0.7, 0.15, 1.2),
        # --- Long-reach optics ----------------------------------------------
        _trx("QSFP28-100G-LR4", PortType.QSFP28, Reach.LR4, 100, 2.79, 0.4, 4.5),
        _trx("QSFP28-100G-LR", PortType.QSFP28, Reach.LR, 100, 2.79, -0.06, 4.5),
        _trx("SFP+-10G-LR", PortType.SFP_PLUS, Reach.LR, 10, 0.8, 0.15, 1.5),
        _trx("SFP+-10G-ER", PortType.SFP_PLUS, Reach.ER, 10, 1.2, 0.3, 2.0),
        _trx("SFP-1G-LX", PortType.SFP, Reach.LR, 1, 0.55, 0.1, 1.0),
        _trx("SFP-1G-SX", PortType.SFP, Reach.SR, 1, 0.45, 0.08, 0.8),
        # --- 400G optics -----------------------------------------------------
        _trx("QSFP-DD-400G-FR4", PortType.QSFP_DD, Reach.FR4, 400, 10.0, 2.0, 12.0),
        _trx("QSFP-DD-400G-LR4", PortType.QSFP_DD, Reach.LR4, 400, 10.5, 2.5, 14.0),
        _trx("QSFP-DD-400G-DAC", PortType.QSFP_DD, Reach.DAC, 400, 0.2, 0.3, 1.0),
        _trx("QSFP-DD-400G-ZR", PortType.QSFP_DD, Reach.ZR, 400, 17.0, 4.0, 23.0),
        # --- Electrical BASE-T ------------------------------------------------
        _trx("SFP-1G-T", PortType.SFP, Reach.T, 1, 1.05, 0.0, 1.5),
        _trx("SFP+-10G-T", PortType.SFP_PLUS, Reach.T, 10, 0.06, 0.0, 2.5),
        _trx("RJ45-10G-T", PortType.RJ45, Reach.T, 10, 0.11, 0.0, 0.0),
        _trx("RJ45-1G-T", PortType.RJ45, Reach.T, 1, 0.11, 0.0, 0.0),
        _trx("RJ45-100M-T", PortType.RJ45, Reach.T, 0.1, 0.0, 0.0, 0.0),
    ]
}


def transceiver(name: str) -> TransceiverInstance:
    """Instantiate a fresh physical module of catalog product ``name``.

    Raises ``KeyError`` with the known product list if ``name`` is unknown.
    """
    try:
        model = TRANSCEIVER_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(TRANSCEIVER_CATALOG))
        raise KeyError(f"unknown transceiver {name!r}; known products: {known}")
    return TransceiverInstance(model=model)


def compatible(port: PortType, model: TransceiverModel) -> bool:
    """Whether a module physically fits and runs in a port cage.

    QSFP28 cages accept QSFP modules (backwards compatible); everything
    else requires an exact form-factor match.
    """
    if port == model.form_factor:
        return True
    if port == PortType.QSFP28 and model.form_factor == PortType.QSFP:
        return True
    if port == PortType.QSFP_DD and model.form_factor in (
            PortType.QSFP, PortType.QSFP28):
        return True
    if port == PortType.SFP_PLUS and model.form_factor == PortType.SFP:
        return True
    if port == PortType.SFP28 and model.form_factor in (
            PortType.SFP, PortType.SFP_PLUS):
        return True
    return False


def catalog_by_form_factor() -> Dict[PortType, Tuple[TransceiverModel, ...]]:
    """Group the catalog by form factor, for inventory generators."""
    grouped: Dict[PortType, list] = {}
    for model in TRANSCEIVER_CATALOG.values():
        grouped.setdefault(model.form_factor, []).append(model)
    return {k: tuple(sorted(v, key=lambda m: m.name)) for k, v in grouped.items()}
