"""The virtual router: a ground-truth power engine behind real interfaces.

A :class:`VirtualRouter` stands in for the physical DUTs of the paper.  It
exposes exactly what an operator (or the NetPowerBench orchestrator) can
touch on real hardware:

* configuration -- plug/unplug transceivers, admin up/down, speed;
* cabling -- ports connect to peer ports via :class:`Cable`;
* traffic counters -- 64-bit octet/packet counters per interface;
* PSU telemetry -- self-reported power, with the model-specific quirks
  observed in §6 (offset, pseudo-constant, absent);
* the wall -- ``wall_power_w()`` is what an external meter would see.

The true power computation implements the paper's §4 model *as physics*:
``P_base`` plus, per interface, ``P_trx,in`` from plug-in, ``P_port`` from
admin-up, ``P_trx,up`` from link-up, and the affine traffic terms -- then
pushes the DC total through the PSU group's efficiency curves.  Catalog
power terms are wall-referred (the paper derived them from wall power on
nominal supplies), so DC demand is obtained by inverting the *nominal* PSU
curve; per-instance PSU deviations then surface exactly as the constant
model offsets the paper observes in deployment (§6, §9).

Deriving a model from this object is therefore a genuine end-to-end test
of the paper's methodology, offsets included.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import units
from repro.activity import carrying_traffic
from repro.hardware.catalog import (
    InterfaceClassTruth,
    PsuSensorQuirk,
    RouterModelSpec,
)
from repro.hardware.psu import (
    PSUGroup,
    PSUInstance,
    PSUModel,
    PsuSensorReading,
    SharingPolicy,
    rating_curve,
)
from repro.hardware.transceiver import (
    PortType,
    TransceiverInstance,
    compatible,
    transceiver,
)

COUNTER_64_WRAP = 2 ** 64


@dataclass
class Counters:
    """SNMP-style interface counters (ifHC* MIB objects).

    Octet counters count layer-2 frame bytes (header + payload, no preamble
    or inter-packet gap), exactly like ``ifHCInOctets``.  They wrap at 2^64.
    """

    rx_octets: int = 0
    tx_octets: int = 0
    rx_packets: int = 0
    tx_packets: int = 0

    def snapshot(self) -> "Counters":
        """A frozen copy of the current values."""
        return Counters(self.rx_octets, self.tx_octets,
                        self.rx_packets, self.tx_packets)

    def add(self, rx_octets: float, tx_octets: float,
            rx_packets: float, tx_packets: float) -> None:
        """Accumulate traffic, wrapping at 64 bits."""
        self.rx_octets = int(self.rx_octets + rx_octets) % COUNTER_64_WRAP
        self.tx_octets = int(self.tx_octets + tx_octets) % COUNTER_64_WRAP
        self.rx_packets = int(self.rx_packets + rx_packets) % COUNTER_64_WRAP
        self.tx_packets = int(self.tx_packets + tx_packets) % COUNTER_64_WRAP

    def reset(self) -> None:
        """Zero all counters (happens on reboot)."""
        self.rx_octets = self.tx_octets = 0
        self.rx_packets = self.tx_packets = 0


@dataclass
class OfferedTraffic:
    """Traffic currently flowing through a port, per direction.

    ``rx_bps``/``tx_bps`` are *physical-layer* bit rates (including preamble
    and inter-packet gap); ``packet_bytes`` is the payload size ``L`` of the
    paper's Eq. (12), used to derive packet rates and counter increments.
    """

    rx_bps: float = 0.0
    tx_bps: float = 0.0
    packet_bytes: float = units.MAX_PACKET_BYTES

    @property
    def rx_pps(self) -> float:
        """Received packets per second."""
        return units.packet_rate(self.rx_bps, self.packet_bytes)

    @property
    def tx_pps(self) -> float:
        """Transmitted packets per second."""
        return units.packet_rate(self.tx_bps, self.packet_bytes)

    @property
    def total_bps(self) -> float:
        """Bit rate summed over both directions (the model's ``r_i``)."""
        return self.rx_bps + self.tx_bps

    @property
    def total_pps(self) -> float:
        """Packet rate summed over both directions (the model's ``p_i``)."""
        return self.rx_pps + self.tx_pps


class Port:
    """One physical port of a virtual router."""

    def __init__(self, router: "VirtualRouter", index: int,
                 port_type: PortType, name: str):
        self.router = router
        self.index = index
        self.port_type = port_type
        self.name = name
        self.transceiver: Optional[TransceiverInstance] = None
        self.admin_up = False
        self.configured_speed_gbps: Optional[float] = None
        self.cable: Optional["Cable"] = None
        self.counters = Counters()
        self.traffic = OfferedTraffic()
        self._truth_cache: Optional[InterfaceClassTruth] = None
        self._truth_cache_valid = False

    # -- state ---------------------------------------------------------------

    @property
    def plugged(self) -> bool:
        """Whether a transceiver module is seated in this port."""
        return self.transceiver is not None

    @property
    def speed_gbps(self) -> float:
        """Operating line rate: configured speed, else the module's rate."""
        if self.configured_speed_gbps is not None:
            return self.configured_speed_gbps
        if self.transceiver is not None:
            return self.transceiver.model.speed_gbps
        return 0.0

    @property
    def peer(self) -> Optional["Port"]:
        """The endpoint at the other end of the cable, if any."""
        if self.cable is None:
            return None
        return self.cable.other(self)

    @property
    def link_up(self) -> bool:
        """Whether the interface is operationally up.

        Requires both ends plugged, admin-up, and a cable between them --
        the Trx experiment of §5.2 brings links up by setting both ports
        of a pair admin-up.
        """
        peer = self.peer
        return (self.plugged and self.admin_up and peer is not None
                and peer.plugged and peer.admin_up)

    def _mark_dirty(self) -> None:
        """Invalidate this port's class-truth cache and the owning
        router's static-power cache."""
        self._truth_cache_valid = False
        self.router._static_dirty = True

    def _mark_peer_dirty(self) -> None:
        peer = self.peer
        if peer is not None and hasattr(peer, "_mark_dirty"):
            peer._mark_dirty()

    # -- configuration -------------------------------------------------------

    def plug(self, module: Union[str, TransceiverInstance]) -> None:
        """Seat a transceiver (instance or catalog product name)."""
        if isinstance(module, str):
            module = transceiver(module)
        if not compatible(self.port_type, module.model):
            raise ValueError(
                f"{module.model.name} ({module.model.form_factor.value}) does "
                f"not fit {self.port_type.value} port {self.name}")
        self.transceiver = module
        self._mark_dirty()
        self._mark_peer_dirty()

    def unplug(self) -> Optional[TransceiverInstance]:
        """Remove the seated module, returning it."""
        module, self.transceiver = self.transceiver, None
        self._mark_dirty()
        self._mark_peer_dirty()
        return module

    def set_admin(self, up: bool) -> None:
        """Set the administrative state ('no shutdown' / 'shutdown')."""
        self.admin_up = up
        self._mark_dirty()
        self._mark_peer_dirty()

    def set_speed(self, gbps: Optional[float]) -> None:
        """Force a line rate below the module's nominal (e.g. 100G -> 25G)."""
        if gbps is not None and gbps <= 0:
            raise ValueError(f"speed must be positive, got {gbps}")
        self.configured_speed_gbps = gbps
        self._mark_dirty()

    def offer_traffic(self, rx_bps: float = 0.0, tx_bps: float = 0.0,
                      packet_bytes: float = units.MAX_PACKET_BYTES) -> None:
        """Declare the traffic flowing through this port from now on."""
        if rx_bps < 0 or tx_bps < 0:
            raise ValueError("traffic rates must be >= 0")
        capacity = units.gbps_to_bps(self.speed_gbps)
        if capacity and max(rx_bps, tx_bps) > capacity * 1.001:
            raise ValueError(
                f"{self.name}: offered "
                f"{units.bps_to_gbps(max(rx_bps, tx_bps)):.1f} Gbps "
                f"exceeds line rate {self.speed_gbps} Gbps")
        self.traffic = OfferedTraffic(rx_bps=rx_bps, tx_bps=tx_bps,
                                      packet_bytes=packet_bytes)

    # -- truth ---------------------------------------------------------------

    def class_truth(self) -> Optional[InterfaceClassTruth]:
        """Ground-truth power parameters for the current configuration."""
        if not self._truth_cache_valid:
            if self.transceiver is None:
                self._truth_cache = None
            else:
                self._truth_cache = self.router.spec.find_class(
                    self.port_type, self.transceiver.model.reach,
                    self.speed_gbps)
            self._truth_cache_valid = True
        return self._truth_cache

    def static_components(self) -> Tuple[float, float, float]:
        """Static power split as ``(p_trx_in, p_port, p_trx_up)`` watts.

        Each term is either the catalog truth value or 0.0 depending on
        the port's admin/link state, exactly mirroring the conditional
        accumulation :meth:`static_power_w` always performed.  The
        attribution ledger consumes the split; the scalar sum stays the
        single source of truth for total power.
        """
        truth = self.class_truth()
        if truth is None:
            # Empty cage.  Fixed copper (RJ45) ports are represented with a
            # zero-power pseudo-module, so "no module" always draws nothing.
            return (0.0, 0.0, 0.0)
        module = self.transceiver.model
        trx_in = (0.0 if (module.powers_off_when_down and not self.admin_up)
                  else truth.p_trx_in_w)
        port = truth.p_port_w if self.admin_up else 0.0
        trx_up = truth.p_trx_up_w if self.link_up else 0.0
        return (trx_in, port, trx_up)

    def static_power_w(self) -> float:
        """True state-dependent (traffic-independent) power of this port."""
        # Summing the component split in the original accumulation order
        # is bitwise-identical to the old conditional accumulation:
        # every term is either the truth value or 0.0, and x + 0.0 == x
        # for the finite non-negative powers in the catalog.
        trx_in, port, trx_up = self.static_components()
        power = 0.0
        power += trx_in
        power += port
        power += trx_up
        return power

    def sleep_savings_w(self) -> float:
        """Wall-referred static power *not* drawn because this port sleeps.

        A counterfactual, not a component of the power actually drawn:
        for a plugged, admin-down port it is the static power the port
        would draw were it admin-up with link up (`p_port + p_trx_up`,
        plus `p_trx_in` when the module powers off while shut down).
        Zero for empty cages and for ports that are admin-up.
        """
        truth = self.class_truth()
        if truth is None or self.admin_up:
            return 0.0
        saved = truth.p_port_w + truth.p_trx_up_w
        if self.transceiver.model.powers_off_when_down:
            saved += truth.p_trx_in_w
        return saved

    def dynamic_power_w(self) -> float:
        """True traffic-dependent power of this port."""
        if not self.link_up or not carrying_traffic(self.traffic.rx_bps,
                                                    self.traffic.tx_bps):
            return 0.0
        truth = self.class_truth()
        if truth is None:
            return 0.0
        return (truth.p_offset_w
                + truth.e_bit_j * self.traffic.total_bps
                + truth.e_pkt_j * self.traffic.total_pps)

    def true_power_w(self) -> float:
        """Total true power contribution of this interface."""
        return self.static_power_w() + self.dynamic_power_w()

    def advance(self, dt_s: float) -> None:
        """Accumulate counters for ``dt_s`` seconds of the offered traffic."""
        if dt_s < 0:
            raise ValueError(f"dt must be >= 0, got {dt_s}")
        if not self.link_up or self.traffic.total_bps == 0:
            return
        frame_octets = self.traffic.packet_bytes + units.ETHERNET_HEADER_BYTES
        self.counters.add(
            rx_octets=self.traffic.rx_pps * dt_s * frame_octets,
            tx_octets=self.traffic.tx_pps * dt_s * frame_octets,
            rx_packets=self.traffic.rx_pps * dt_s,
            tx_packets=self.traffic.tx_pps * dt_s,
        )


@dataclass
class Cable:
    """A physical cable (or fibre pair) between two endpoints."""

    a: object
    b: object

    def other(self, port: object) -> object:
        """The far end relative to ``port``."""
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise ValueError(f"port {getattr(port, 'name', port)!r} is not an "
                         f"end of this cable")


def connect(a: Port, b: Port) -> Cable:
    """Cable two ports together (replacing any existing cables)."""
    disconnect(a)
    disconnect(b)
    cable = Cable(a=a, b=b)
    a.cable = cable
    b.cable = cable
    for end in (a, b):
        if hasattr(end, "_mark_dirty"):
            end._mark_dirty()
    return cable


def disconnect(port: Port) -> None:
    """Remove the cable attached to a port, if any."""
    cable = port.cable
    if cable is None:
        return
    for end in (cable.a, cable.b):
        end.cable = None
        if hasattr(end, "_mark_dirty"):
            end._mark_dirty()


_hostname_counter = itertools.count(1)


class VirtualRouter:
    """A simulated router with ground-truth power behaviour.

    Parameters
    ----------
    spec:
        The product's ground truth (see :mod:`repro.hardware.catalog`).
    hostname:
        Device name; auto-generated if omitted.
    rng:
        Source of randomness for PSU instance offsets, sensor noise, and
        the small ambient power fluctuation.  Pass a seeded generator for
        reproducible experiments.
    noise_std_w:
        Standard deviation of the slowly-varying ambient power noise
        (control plane activity, thermal micro-variation).
    """

    def __init__(self, spec: RouterModelSpec, hostname: Optional[str] = None,
                 rng: Optional[np.random.Generator] = None,
                 noise_std_w: float = 0.25):
        self.spec = spec
        self.hostname = hostname or f"router-{next(_hostname_counter):03d}"
        self.rng = rng if rng is not None else np.random.default_rng()
        self.noise_std_w = noise_std_w
        self.ports: List[Port] = []
        index = 0
        for group in spec.port_groups:
            for _ in range(group.count):
                name = f"Eth0/{index}"
                self.ports.append(Port(self, index, group.port_type, name))
                index += 1
        self.psu_group = self._build_psu_group()
        self._nominal_group = self._build_nominal_group()
        self._inversion_grid: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: Extra fan power from environment events (e.g. the Fig. 8 OS
        #: update that bumped fan speeds by 45 W).
        self.fan_bump_w = 0.0
        #: Ambient temperature at the PoP (°C).  §4.3 deliberately omits
        #: temperature from the *model* because it is pseudo-constant in
        #: server rooms; the truth engine carries it so that excursions
        #: (cooling failures, heat waves) surface as model inaccuracy.
        self.ambient_c = 22.0
        #: Extra fan watts per °C above the cooling set point, as a
        #: fraction of base power (fans ramp with intake temperature).
        self.thermal_coeff_per_c = 0.012
        #: Intake temperature above which fans start ramping.
        self.thermal_setpoint_c = 24.0
        self._noise_state = 0.0
        self._boots = 1
        self._sensor_bias_w = 0.0
        self._pseudo_constant_basis: Optional[float] = None
        self._static_dirty = True
        self._static_sum_w = 0.0
        #: Whether the device is powered at all (decommissioned routers
        #: are dark but stay in the fleet inventory).
        self.powered = True

    # -- construction ---------------------------------------------------------

    def _build_psu_group(self) -> PSUGroup:
        cfg = self.spec.psu
        model = PSUModel(
            name=f"{self.spec.name}-PSU-{int(cfg.capacity_w)}W",
            capacity_w=cfg.capacity_w,
            curve=rating_curve(cfg.rating),
            rating=cfg.rating,
        )
        instances = [
            PSUInstance(
                model=model,
                efficiency_offset=float(self.rng.normal(cfg.offset_mean,
                                                        cfg.offset_std)),
                serial=f"{self.hostname}-psu{i}",
            )
            for i in range(cfg.count)
        ]
        return PSUGroup(instances=instances)

    def _build_nominal_group(self) -> PSUGroup:
        """PSUs carrying this model's *nominal* efficiency deviation.

        See the module docstring: the catalog's power terms are
        wall-referred, so the truth engine inverts this nominal curve to
        obtain DC demand.
        """
        cfg = self.spec.psu
        model = self.psu_group.instances[0].model
        instances = [
            PSUInstance(model=model, efficiency_offset=cfg.offset_mean,
                        serial=f"{self.hostname}-nominal{i}")
            for i in range(cfg.count)
        ]
        return PSUGroup(instances=instances)

    def _dc_from_wall_referred(self, wall_referred_w: float) -> float:
        """Invert the nominal PSU curve: wall-referred watts -> DC watts.

        Uses a lazily-built monotone interpolation grid; accurate to well
        under 0.01 W across the device's operating range.
        """
        if self._inversion_grid is None:
            capacity = self._nominal_group.total_capacity_w
            dc_grid = np.linspace(0.0, 0.95 * capacity, 512)
            wall_grid = np.array(
                [self._nominal_group.wall_power(dc) for dc in dc_grid])
            self._inversion_grid = (wall_grid, dc_grid)
        wall_grid, dc_grid = self._inversion_grid
        return float(np.interp(wall_referred_w, wall_grid, dc_grid))

    # -- convenience accessors -------------------------------------------------

    @property
    def model_name(self) -> str:
        """Product name of this device."""
        return self.spec.name

    def port(self, index: int) -> Port:
        """Port by index, with a helpful error when out of range."""
        try:
            return self.ports[index]
        except IndexError:
            raise IndexError(
                f"{self.hostname} has {len(self.ports)} ports; "
                f"no port {index}")

    def ports_of_type(self, port_type: PortType) -> List[Port]:
        """All ports with a given cage type."""
        return [p for p in self.ports if p.port_type == port_type]

    # -- truth ------------------------------------------------------------------

    def thermal_power_w(self) -> float:
        """Extra fan power from ambient temperature above the set point."""
        excess = max(0.0, self.ambient_c - self.thermal_setpoint_c)
        return self.spec.p_base_w * self.thermal_coeff_per_c * excess

    def set_ambient(self, temperature_c: float) -> None:
        """Change the PoP's ambient temperature (cooling events, §4.3)."""
        if not -20.0 <= temperature_c <= 60.0:
            raise ValueError(
                f"ambient temperature {temperature_c} °C is outside the "
                f"plausible -20..60 °C range")
        self.ambient_c = temperature_c

    def wall_referred_power_w(self) -> float:
        """Sum of the (wall-referred) catalog power terms, noise-free."""
        if self._static_dirty:
            self._static_sum_w = sum(p.static_power_w() for p in self.ports)
            self._static_dirty = False
        dynamic = 0.0
        for port in self.ports:
            if carrying_traffic(port.traffic.rx_bps, port.traffic.tx_bps):
                dynamic += port.dynamic_power_w()
        return (self.spec.p_base_w + self.fan_bump_w
                + self.thermal_power_w()
                + self._static_sum_w + dynamic)

    def device_power_w(self, include_noise: bool = True) -> float:
        """True DC-side power demand of the device right now."""
        if not self.powered:
            return 0.0
        power = self._dc_from_wall_referred(self.wall_referred_power_w())
        if include_noise:
            power += self._noise_state
        return max(0.0, power)

    def wall_power_w(self, include_noise: bool = True) -> float:
        """True AC power at the wall: DC demand through the PSU curves.

        This is what the paper's Autopower units (and the lab power meter)
        measure, and it is the quantity the §5 methodology models.
        """
        if not self.powered:
            return 0.0
        return self.psu_group.wall_power(self.device_power_w(include_noise))

    # -- time -------------------------------------------------------------------

    def advance(self, dt_s: float) -> None:
        """Advance simulated time: counters accumulate, ambient noise drifts."""
        if not self.powered:
            return
        for port in self.ports:
            port.advance(dt_s)
        if self.noise_std_w > 0:
            # AR(1) ambient noise with a ~10-minute correlation time.
            rho = float(np.exp(-dt_s / 600.0))
            innovation_std = self.noise_std_w * float(
                np.sqrt(max(0.0, 1 - rho ** 2)))
            self._noise_state = (rho * self._noise_state
                                 + float(self.rng.normal(0.0, innovation_std)))

    def power_cycle(self) -> None:
        """Unplug/replug power: counters reset, PSU sensors re-zero.

        §6.2 observed a PSU reporting 7 W less after nothing but a power
        cycle; PSEUDO_CONSTANT telemetry redraws its bias here.
        """
        self._boots += 1
        for port in self.ports:
            port.counters.reset()
        self._pseudo_constant_basis = None
        if self.spec.psu_quirk == PsuSensorQuirk.PSEUDO_CONSTANT:
            quantum = self.spec.psu_report_quantum_w or 1.0
            self._sensor_bias_w = float(self.rng.uniform(-quantum, quantum))

    def apply_os_update(self, fan_bump_w: float = 45.0) -> None:
        """Install an OS update that changes thermal management (Fig. 8)."""
        self.fan_bump_w += fan_bump_w

    # -- telemetry ----------------------------------------------------------------

    def psu_reported_power_w(self, true_in: Optional[float] = None,
                             ) -> Optional[float]:
        """Total input power as reported by the router's own PSU sensors.

        Behaviour depends on the model's quirk (§6.2): faithful within
        noise, constant offset, pseudo-constant plateau, or ``None``.
        Collectors that already computed this router's wall power (e.g.
        the vectorized engine) can pass it as ``true_in`` to skip the
        recomputation; the sensor-noise draws are identical either way.
        """
        quirk = self.spec.psu_quirk
        if quirk == PsuSensorQuirk.ABSENT or not self.powered:
            return None
        if true_in is None:
            true_in = self.wall_power_w()
        if quirk == PsuSensorQuirk.ACCURATE:
            return true_in * (1.0 + float(self.rng.normal(0.0, 0.005)))
        if quirk == PsuSensorQuirk.OFFSET:
            return (true_in + self.spec.psu_report_offset_w
                    + float(self.rng.normal(0.0, 0.3)))
        # PSEUDO_CONSTANT: a quantised plateau that only moves when the
        # true value drifts far from the last basis, plus a per-boot bias.
        quantum = self.spec.psu_report_quantum_w or 1.0
        if (self._pseudo_constant_basis is None
                or abs(true_in - self._pseudo_constant_basis) > 1.5 * quantum):
            self._pseudo_constant_basis = round(true_in / quantum) * quantum
        return (self._pseudo_constant_basis + self._sensor_bias_w
                + float(self.rng.normal(0.0, 0.05)))

    def psu_sensor_snapshots(self) -> List[PsuSensorReading]:
        """One (P_in, P_out) reading per PSU -- the §9.2 one-time export."""
        return self.psu_group.sensor_snapshots(
            self.device_power_w(), self.rng)

    def interface_counters(self) -> Dict[str, Counters]:
        """Snapshot of every port's counters, keyed by interface name."""
        return {port.name: port.counters.snapshot() for port in self.ports}

    def inventory(self) -> Dict[str, Optional[str]]:
        """Module inventory: interface name -> transceiver product (or None).

        This is the "module inventory file" §6.2 combines with power models
        to predict deployed power.
        """
        return {
            port.name: port.transceiver.name if port.transceiver else None
            for port in self.ports
        }

    def admin_states(self) -> Dict[str, bool]:
        """Interface name -> administrative state."""
        return {port.name: port.admin_up for port in self.ports}

    def set_sharing_policy(self, policy: SharingPolicy) -> None:
        """Change how DC load spreads over the PSUs (§9.3.4 scenarios)."""
        self.psu_group.policy = policy

    def __repr__(self) -> str:
        return (f"VirtualRouter({self.model_name!r}, {self.hostname!r}, "
                f"{len(self.ports)} ports)")
