"""Modular (chassis + linecard) routers: the paper's §4.3 extension.

The published model covers fixed-chassis routers only; the paper sketches
the extension -- "it should be possible to extend the model by introducing
a ``P_linecard`` term that could be measured similarly as ``P_trx``" --
and leaves it as future work.  This module implements it: a chassis with
slots, hot-insertable linecards that each contribute a per-card power
term plus their own ports, and the same ground-truth discipline as the
fixed-chassis :class:`~repro.hardware.router.VirtualRouter` so the
extended methodology can be validated end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.hardware.catalog import (
    DatasheetInfo,
    InterfaceClassTruth,
    PortGroup,
    PsuConfig,
    PsuSensorQuirk,
    RouterModelSpec,
)
from repro.hardware.psu import EightyPlus
from repro.hardware.router import Port, VirtualRouter
from repro.hardware.transceiver import PortType, Reach


@dataclass(frozen=True)
class LinecardSpec:
    """Ground truth of one linecard product.

    ``p_card_w`` is the wall-referred power the card draws once seated
    and powered, before any port is configured -- the ``P_linecard`` term
    of the extended model.  Interface classes ride on the card, not the
    chassis (different cards forward with different ASICs).
    """

    name: str
    p_card_w: float
    port_groups: Tuple[PortGroup, ...]
    interface_classes: Tuple[InterfaceClassTruth, ...] = ()

    @property
    def total_ports(self) -> int:
        """Physical ports on the card."""
        return sum(group.count for group in self.port_groups)


@dataclass(frozen=True)
class ChassisSpec:
    """Ground truth of a modular chassis.

    ``p_base_w`` covers the chassis itself: route processors, fabric
    cards, fans -- everything that runs with zero linecards inserted.
    """

    name: str
    vendor: str
    series: str
    p_base_w: float
    n_slots: int
    psu: PsuConfig
    datasheet: DatasheetInfo
    psu_quirk: PsuSensorQuirk = PsuSensorQuirk.ACCURATE

    def __post_init__(self):
        if self.n_slots <= 0:
            raise ValueError(f"a chassis needs slots, got {self.n_slots}")


def _cls(port: PortType, reach: Reach, speed: float, p_port: float,
         p_in: float, p_up: float, e_bit: float, e_pkt: float,
         p_off: float) -> InterfaceClassTruth:
    return InterfaceClassTruth(
        port_type=port, reach=reach, speed_gbps=speed, p_port_w=p_port,
        p_trx_in_w=p_in, p_trx_up_w=p_up, e_bit_pj=e_bit, e_pkt_nj=e_pkt,
        p_offset_w=p_off)


#: Linecard products for the modular extension (plausible ASR-9000-class
#: cards; the paper has no published card models to calibrate against).
LINECARD_CATALOG: Dict[str, LinecardSpec] = {
    card.name: card
    for card in [
        LinecardSpec(
            name="LC-24X10GE",
            p_card_w=180.0,
            port_groups=(PortGroup(24, PortType.SFP_PLUS),),
            interface_classes=(
                _cls(PortType.SFP_PLUS, Reach.LR, 10,
                     0.55, 0.80, 0.15, 18, 22, 0.05),
                _cls(PortType.SFP_PLUS, Reach.DAC, 10,
                     0.55, 0.04, 0.04, 18, 22, 0.05),
            )),
        LinecardSpec(
            name="LC-8X100GE",
            p_card_w=310.0,
            port_groups=(PortGroup(8, PortType.QSFP28),),
            interface_classes=(
                _cls(PortType.QSFP28, Reach.LR4, 100,
                     0.70, 2.79, 0.40, 9, 20, 0.15),
                _cls(PortType.QSFP28, Reach.DAC, 100,
                     0.70, 0.02, 0.19, 9, 20, 0.15),
            )),
        LinecardSpec(
            name="LC-4X400GE",
            p_card_w=405.0,
            port_groups=(PortGroup(4, PortType.QSFP_DD),),
            interface_classes=(
                _cls(PortType.QSFP_DD, Reach.FR4, 400,
                     1.60, 10.0, 2.0, 4, 14, 0.10),
                _cls(PortType.QSFP_DD, Reach.DAC, 400,
                     1.60, 0.20, 0.30, 4, 14, 0.10),
            )),
    ]
}


#: A modular chassis to exercise the extension (ASR-9006-like).
CHASSIS_CATALOG: Dict[str, ChassisSpec] = {
    "MOD-CHASSIS-6": ChassisSpec(
        name="MOD-CHASSIS-6", vendor="Cisco", series="Modular 9000",
        p_base_w=540.0, n_slots=6,
        psu=PsuConfig(count=2, capacity_w=2700,
                      rating=EightyPlus.PLATINUM,
                      offset_mean=0.0, offset_std=0.02),
        datasheet=DatasheetInfo(typical_w=1800, max_w=4400,
                                max_bandwidth_gbps=9600,
                                release_year=2019,
                                psu_options_w=(2700,))),
}


def linecard_spec(name: str) -> LinecardSpec:
    """Look up a linecard product."""
    try:
        return LINECARD_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(LINECARD_CATALOG))
        raise KeyError(f"unknown linecard {name!r}; known cards: {known}")


def chassis_spec(name: str) -> ChassisSpec:
    """Look up a chassis product."""
    try:
        return CHASSIS_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CHASSIS_CATALOG))
        raise KeyError(f"unknown chassis {name!r}; known chassis: {known}")


class ModularRouter(VirtualRouter):
    """A chassis router whose ports come and go with its linecards.

    Reuses the fixed-chassis engine wholesale: PSUs, telemetry quirks,
    counters, the wall-power inversion.  The ground-truth power adds one
    ``p_card_w`` per inserted card, and each port's interface-class truth
    resolves against its *card's* classes.
    """

    def __init__(self, chassis: ChassisSpec,
                 hostname: Optional[str] = None,
                 rng: Optional[np.random.Generator] = None,
                 noise_std_w: float = 0.25):
        self.chassis = chassis
        # Build a port-less fixed-chassis spec for the base engine.
        base_spec = RouterModelSpec(
            name=chassis.name, vendor=chassis.vendor, series=chassis.series,
            p_base_w=chassis.p_base_w,
            port_groups=(),
            interface_classes=(),
            psu=chassis.psu, psu_quirk=chassis.psu_quirk,
            datasheet=chassis.datasheet)
        super().__init__(base_spec, hostname=hostname, rng=rng,
                         noise_std_w=noise_std_w)
        self._slots: List[Optional[LinecardSpec]] = [None] * chassis.n_slots
        self._slot_ports: List[List[Port]] = [[] for _ in range(chassis.n_slots)]

    # -- linecard management -----------------------------------------------------

    @property
    def n_slots(self) -> int:
        """Number of linecard slots."""
        return self.chassis.n_slots

    def linecards(self) -> Dict[int, str]:
        """Inserted cards by slot."""
        return {slot: card.name
                for slot, card in enumerate(self._slots) if card is not None}

    def insert_linecard(self, slot: int,
                        card: Union[str, LinecardSpec]) -> List[Port]:
        """Seat a linecard; returns its freshly created ports."""
        if not 0 <= slot < self.n_slots:
            raise IndexError(
                f"{self.chassis.name} has slots 0..{self.n_slots - 1}, "
                f"not {slot}")
        if self._slots[slot] is not None:
            raise ValueError(f"slot {slot} already holds "
                             f"{self._slots[slot].name}")
        if isinstance(card, str):
            card = linecard_spec(card)
        self._slots[slot] = card
        ports = []
        for group in card.port_groups:
            for _ in range(group.count):
                index = len(self.ports)
                port = _CardPort(self, index, group.port_type,
                                 f"Slot{slot}/{len(ports)}", card=card)
                self.ports.append(port)
                self._slot_ports[slot].append(port)
                ports.append(port)
        self._static_dirty = True
        return ports

    def remove_linecard(self, slot: int) -> Optional[LinecardSpec]:
        """Pull a linecard; its ports (and their modules) go with it."""
        card = self._slots[slot]
        if card is None:
            return None
        from repro.hardware.router import disconnect
        for port in self._slot_ports[slot]:
            disconnect(port)
            self.ports.remove(port)
        self._slot_ports[slot] = []
        self._slots[slot] = None
        self._static_dirty = True
        return card

    # -- truth ----------------------------------------------------------------------

    def wall_referred_power_w(self) -> float:
        """Device power plus per-card draw, referred through the PSUs."""
        power = super().wall_referred_power_w()
        for card in self._slots:
            if card is not None:
                power += card.p_card_w
        return power


class _CardPort(Port):
    """A port living on a linecard: class truth resolves on the card."""

    def __init__(self, router, index, port_type, name, card: LinecardSpec):
        super().__init__(router, index, port_type, name)
        self.card = card

    def class_truth(self):
        if not self._truth_cache_valid:
            if self.transceiver is None:
                self._truth_cache = None
            else:
                reach = self.transceiver.model.reach
                speed = self.speed_gbps
                exact = next(
                    (cls for cls in self.card.interface_classes
                     if cls.key == (self.port_type, reach, speed)), None)
                if exact is None:
                    from repro.hardware.catalog import default_class_truth
                    exact = default_class_truth(self.port_type, reach, speed)
                self._truth_cache = exact
            self._truth_cache_valid = True
        return self._truth_cache
