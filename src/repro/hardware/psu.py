"""Power supply units: efficiency curves, 80 Plus standards, load sharing.

§9 of the paper studies PSU conversion losses as an energy-saving vector.
The key modeling device there is simple: *the efficiency curve of any PSU is
assumed to be the PFE600 curve plus a constant offset* (the PFE600-12-054xA
is the Platinum-rated PSU of the Wedge 100BF-32X, Fig. 5).  This module
implements that curve as a physically-motivated quadratic loss model, the 80
Plus certification set points, per-instance efficiency offsets (the paper
observes large spread across PSUs of the same model, Fig. 6d), and the
load-sharing policies compared in §9.3.4 (balanced vs. single-PSU).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Efficiency curves
# ---------------------------------------------------------------------------


class EfficiencyCurve:
    """Interface for PSU efficiency as a function of load fraction."""

    def efficiency(self, load_fraction: float) -> float:
        """Conversion efficiency ``P_out / P_in`` at ``load_fraction`` ∈ (0, 1]."""
        raise NotImplementedError

    def loss_fraction(self, load_fraction: float) -> float:
        """Normalised conversion loss ``P_loss / C`` at a load fraction."""
        if load_fraction <= 0:
            raise ValueError("loss_fraction needs a positive load")
        eff = self.efficiency(load_fraction)
        if eff <= 0:
            raise ValueError(f"efficiency is non-positive at {load_fraction}")
        return load_fraction * (1.0 / eff - 1.0)

    def loss_w(self, output_w: float, capacity_w: float) -> float:
        """Conversion loss in watts when delivering ``output_w``."""
        if output_w < 0:
            raise ValueError(f"output power must be >= 0, got {output_w}")
        # netpower: ignore[NP-UNIT-003] -- exact zero is a sentinel
        # (nothing plugged in), not a computed power value; any nonzero
        # load takes the efficiency-curve branch.
        if output_w == 0:
            return self.idle_loss_w(capacity_w)
        eff = self.efficiency(output_w / capacity_w)
        return output_w / eff - output_w

    def input_power(self, output_w: float, capacity_w: float) -> float:
        """Wall power drawn when delivering ``output_w`` DC."""
        return output_w + self.loss_w(output_w, capacity_w)

    def idle_loss_w(self, capacity_w: float) -> float:
        """Loss when the PSU is powered but delivers nothing."""
        raise NotImplementedError


@dataclass(frozen=True)
class QuadraticLossCurve(EfficiencyCurve):
    """Loss model ``loss/C = a + b·x + c·x²`` with ``x = P_out / C``.

    The constant term is the idle loss, the linear term resistive and
    switching losses proportional to load, the quadratic term conduction
    (I²R) losses.  This produces the canonical PSU efficiency shape: poor
    below 10-20 % load, peaking near 50-60 %, slightly declining at full
    load (Fig. 5).
    """

    a: float
    b: float
    c: float

    def loss_fraction(self, load_fraction: float) -> float:
        """Normalised loss ``P_loss / C`` at a load fraction."""
        return self.a + self.b * load_fraction + self.c * load_fraction ** 2

    def efficiency(self, load_fraction: float) -> float:
        """Output/input efficiency at a load fraction (0 when idle)."""
        if load_fraction <= 0:
            return 0.0
        return load_fraction / (load_fraction + self.loss_fraction(load_fraction))

    def idle_loss_w(self, capacity_w: float) -> float:
        """Standing loss in watts with zero output load."""
        return self.a * capacity_w

    @classmethod
    def from_efficiency_points(
            cls, points: Sequence[Tuple[float, float]]) -> "QuadraticLossCurve":
        """Fit the three loss coefficients to exactly three (load, eff) points."""
        if len(points) != 3:
            raise ValueError(f"need exactly 3 points, got {len(points)}")
        loads = np.array([p[0] for p in points], dtype=float)
        effs = np.array([p[1] for p in points], dtype=float)
        if np.any(loads <= 0) or np.any((effs <= 0) | (effs >= 1)):
            raise ValueError("loads must be > 0 and efficiencies in (0, 1)")
        losses = loads * (1.0 / effs - 1.0)
        design = np.vstack([np.ones_like(loads), loads, loads ** 2]).T
        a, b, c = np.linalg.solve(design, losses)
        return cls(a=float(a), b=float(b), c=float(c))


#: The PFE600-12-054xA efficiency curve (Fig. 5), fitted to its
#: Platinum-grade datasheet points: 90 % at 20 % load, 94 % at 50 %,
#: 91 % at 100 %.  At 10 % load this yields ≈ 81 %, at 5 % ≈ 66 % --
#: matching the paper's "notoriously bad at loads below 10-20 %".
PFE600_CURVE = QuadraticLossCurve.from_efficiency_points(
    [(0.20, 0.90), (0.50, 0.94), (1.00, 0.91)]
)


@dataclass(frozen=True)
class ScaledLossCurve(EfficiencyCurve):
    """A base curve with all conversion losses scaled by a constant factor.

    Unlike the additive-offset model (which is the *paper's analysis
    device* and misbehaves at very low loads, where efficiency naturally
    tends to zero), scaling the loss term keeps the curve physical and the
    wall-power function strictly monotone at every load -- which is what
    the ground-truth hardware engine requires.  ``scale > 1`` is a lossier
    (worse) supply, ``scale < 1`` a better one.
    """

    base: EfficiencyCurve
    scale: float

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError(f"loss scale must be positive, got {self.scale}")

    def loss_fraction(self, load_fraction: float) -> float:
        """The base curve's normalised loss, scaled by ``scale``."""
        return self.scale * self.base.loss_fraction(load_fraction)

    def efficiency(self, load_fraction: float) -> float:
        """Output/input efficiency at a load fraction (0 when idle)."""
        if load_fraction <= 0:
            return 0.0
        return load_fraction / (load_fraction
                                + self.loss_fraction(load_fraction))

    def idle_loss_w(self, capacity_w: float) -> float:
        """Standing loss in watts, scaled like every other loss."""
        return self.scale * self.base.idle_loss_w(capacity_w)

    @classmethod
    def through_point(cls, base: EfficiencyCurve, load_fraction: float,
                      efficiency: float) -> "ScaledLossCurve":
        """The scaled curve whose efficiency at one load matches a target."""
        if not 0 < efficiency < 1:
            raise ValueError(
                f"target efficiency must be in (0, 1), got {efficiency}")
        target_loss = load_fraction * (1.0 / efficiency - 1.0)
        return cls(base=base,
                   scale=target_loss / base.loss_fraction(load_fraction))


def rating_curve(standard: "EightyPlus",
                 base: Optional[EfficiencyCurve] = None) -> ScaledLossCurve:
    """A physical (loss-scaled) efficiency curve for an 80 Plus level.

    The scale is the largest one that still satisfies every set point of
    the level -- i.e. a supply that is exactly certification-grade at its
    binding load point.  Used for ground-truth PSU hardware; the paper's
    own §9 projections use :func:`standard_curve` (additive offset).
    """
    if base is None:
        base = PFE600_CURVE
    scale = min(
        load * (1.0 - required) / (required * base.loss_fraction(load))
        for load, required in EIGHTY_PLUS_SET_POINTS[standard].items())
    return ScaledLossCurve(base=base, scale=max(scale, 0.05))


@dataclass(frozen=True)
class OffsetCurve(EfficiencyCurve):
    """A base curve shifted by a constant efficiency offset.

    This is the paper's §9 modeling assumption verbatim: "we assume that the
    efficiency curve of any PSU is the same as the PFE600 curve plus a
    constant offset".  Efficiencies are clamped to (1 %, 99.5 %].
    """

    base: EfficiencyCurve
    offset: float

    #: Clamp bounds keep shifted curves physical.
    MIN_EFF = 0.01
    MAX_EFF = 0.995

    def efficiency(self, load_fraction: float) -> float:
        """The base curve's efficiency shifted by ``offset`` (clamped)."""
        if load_fraction <= 0:
            return 0.0
        eff = self.base.efficiency(load_fraction) + self.offset
        return float(np.clip(eff, self.MIN_EFF, self.MAX_EFF))

    def idle_loss_w(self, capacity_w: float) -> float:
        """The base curve's standing loss (the offset shifts efficiency only)."""
        return self.base.idle_loss_w(capacity_w)

    @classmethod
    def through_point(cls, base: EfficiencyCurve, load_fraction: float,
                      efficiency: float) -> "OffsetCurve":
        """The offset curve passing through one observed (load, eff) point.

        §9.3.4: "We compute that constant from the efficiency data point for
        each PSU".
        """
        if load_fraction <= 0:
            raise ValueError(f"load fraction must be > 0, got {load_fraction}")
        return cls(base=base, offset=efficiency - base.efficiency(load_fraction))


# ---------------------------------------------------------------------------
# 80 Plus standards
# ---------------------------------------------------------------------------


class EightyPlus(enum.Enum):
    """The 80 Plus certification levels considered in §9 (Fig. 5, Table 3)."""

    BRONZE = "Bronze"
    SILVER = "Silver"
    GOLD = "Gold"
    PLATINUM = "Platinum"
    TITANIUM = "Titanium"

    @property
    def rank(self) -> int:
        """Ordering from least (Bronze = 0) to most stringent (Titanium = 4)."""
        return _RANKS[self]


_RANKS = {
    EightyPlus.BRONZE: 0,
    EightyPlus.SILVER: 1,
    EightyPlus.GOLD: 2,
    EightyPlus.PLATINUM: 3,
    EightyPlus.TITANIUM: 4,
}

#: Minimum efficiency required at each load fraction, per certification
#: level (230 V internal redundant programme -- the variant applicable to
#: datacenter/router PSUs).  Fig. 5 draws the 20/50/100 % set points, so
#: those are what the §9 projections use; Titanium's additional 10 %-load
#: requirement exists in the 115 V programme but is not part of the
#: figure's set points and is omitted here for consistency with it.
EIGHTY_PLUS_SET_POINTS: Dict[EightyPlus, Dict[float, float]] = {
    EightyPlus.BRONZE: {0.20: 0.81, 0.50: 0.85, 1.00: 0.81},
    EightyPlus.SILVER: {0.20: 0.85, 0.50: 0.89, 1.00: 0.85},
    EightyPlus.GOLD: {0.20: 0.88, 0.50: 0.92, 1.00: 0.88},
    EightyPlus.PLATINUM: {0.20: 0.90, 0.50: 0.94, 1.00: 0.91},
    EightyPlus.TITANIUM: {0.20: 0.94, 0.50: 0.96, 1.00: 0.91},
}


def meets_standard(curve: EfficiencyCurve, standard: EightyPlus) -> bool:
    """Whether a curve satisfies every set point of a certification level."""
    return all(curve.efficiency(load) >= required - 1e-9
               for load, required in EIGHTY_PLUS_SET_POINTS[standard].items())


def standard_curve(standard: EightyPlus,
                   base: Optional[EfficiencyCurve] = None) -> OffsetCurve:
    """Theoretical efficiency curve for an 80 Plus level (§9.3.2 method).

    The paper derives "a theoretical efficiency curve for each standard" by
    shifting the PFE600 curve; we use the smallest constant offset that
    satisfies every set point of the level.
    """
    if base is None:
        base = PFE600_CURVE
    offset = max(required - base.efficiency(load)
                 for load, required in EIGHTY_PLUS_SET_POINTS[standard].items())
    return OffsetCurve(base=base, offset=offset)


# ---------------------------------------------------------------------------
# PSU products, instances, groups
# ---------------------------------------------------------------------------

#: The PSU capacity options present in the Switch dataset (Table 4 columns).
PSU_CAPACITIES_W: Tuple[int, ...] = (250, 400, 750, 1100, 2000, 2700)


@dataclass(frozen=True)
class PSUModel:
    """A PSU product: capacity, nominal curve, and certification level."""

    name: str
    capacity_w: float
    curve: EfficiencyCurve
    rating: Optional[EightyPlus] = None

    def __post_init__(self):
        if self.capacity_w <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_w}")


@dataclass(frozen=True)
class PsuSensorReading:
    """One snapshot of a PSU's self-reported input and output power.

    §9.2 notes these sensors are of unknown precision, possibly updated
    asynchronously -- some PSUs even report ``P_out > P_in``, which is
    physically impossible.  Readings therefore carry raw values; consumers
    must cap the implied efficiency at 100 % like the paper does.
    """

    input_w: float
    output_w: float

    @property
    def efficiency(self) -> float:
        """Implied conversion efficiency, capped at 1.0 (§9.2)."""
        if self.input_w <= 0:
            return 0.0
        return min(1.0, self.output_w / self.input_w)


@dataclass
class PSUInstance:
    """A physical PSU: a product plus per-instance efficiency deviation.

    Fig. 6d shows PSUs of the *same* model spanning the entire efficiency
    range of the dataset; the paper attributes this to aging or
    manufacturing quality.  ``efficiency_offset`` captures that deviation as
    a constant shift of the product's nominal curve.
    """

    model: PSUModel
    efficiency_offset: float = 0.0
    serial: str = ""
    #: Standard deviation of multiplicative sensor noise on each reading.
    sensor_noise: float = 0.01
    #: Load fraction at which ``efficiency_offset`` is defined.  Router
    #: PSUs in the paper's dataset run at 5-20 % load (Fig. 6); defining
    #: the instance deviation at 12.5 % makes the Fig. 6 efficiency spread
    #: directly reflect the catalog's per-model offset distributions.
    reference_load: float = 0.125

    def __post_init__(self):
        # The offset is *defined* additively at the reference load (that
        # is how the paper talks about PSU quality differences), but the
        # instance's true curve is realised by scaling losses so it stays
        # physical and monotone at every load.
        nominal_eff = self.model.curve.efficiency(self.reference_load)
        target = float(np.clip(nominal_eff + self.efficiency_offset,
                               0.25, 0.98))
        self._curve = ScaledLossCurve.through_point(
            self.model.curve, self.reference_load, target)

    def apply_aging(self, efficiency_delta: float) -> None:
        """Degrade (negative delta) or recalibrate the instance's curve.

        §9.3.1 suspects aging behind the same-model efficiency spread;
        this hook lets longitudinal studies (GREEN monitoring) inject it.
        """
        self.efficiency_offset += efficiency_delta
        self.__post_init__()

    @property
    def capacity_w(self) -> float:
        """Rated output capacity in watts."""
        return self.model.capacity_w

    @property
    def curve(self) -> EfficiencyCurve:
        """This instance's true efficiency curve (nominal + offset)."""
        return self._curve

    def efficiency_at(self, output_w: float) -> float:
        """True conversion efficiency when delivering ``output_w``."""
        if output_w <= 0:
            return 0.0
        return self._curve.efficiency(output_w / self.capacity_w)

    def input_power(self, output_w: float) -> float:
        """True wall power drawn when delivering ``output_w``."""
        if output_w > self.capacity_w * 1.05:
            raise ValueError(
                f"PSU {self.model.name} overloaded: asked for {output_w:.1f} W "
                f"out of a {self.capacity_w:.0f} W supply")
        return self._curve.input_power(output_w, self.capacity_w)

    def sensor_snapshot(self, output_w: float,
                        rng: np.random.Generator) -> PsuSensorReading:
        """Noisy self-reported (P_in, P_out), as exported by router sensors.

        Independent multiplicative noise on the two channels means the
        implied efficiency occasionally exceeds 100 % at high true
        efficiency -- reproducing the impossible readings of §9.2.
        """
        true_in = self.input_power(output_w)
        noisy_in = true_in * (1.0 + rng.normal(0.0, self.sensor_noise))
        noisy_out = output_w * (1.0 + rng.normal(0.0, self.sensor_noise))
        return PsuSensorReading(input_w=max(0.0, noisy_in),
                                output_w=max(0.0, noisy_out))


class SharingPolicy(enum.Enum):
    """How a router spreads its DC demand over its PSUs."""

    BALANCED = "balanced"       # default: equal share on every PSU
    SINGLE = "single"           # all load on PSU 0, others idle (§9.3.4)
    HOT_STANDBY = "hot-standby" # all load on PSU 0, others powered but idle


@dataclass
class PSUGroup:
    """The PSUs of one router plus the active sharing policy.

    Redundant pairs are the norm (§9.1); ``wall_power`` is what an external
    meter on the router's feed would see.
    """

    instances: List[PSUInstance]
    policy: SharingPolicy = SharingPolicy.BALANCED

    def __post_init__(self):
        if not self.instances:
            raise ValueError("a PSU group needs at least one PSU")

    @property
    def total_capacity_w(self) -> float:
        """Sum of all member capacities."""
        return sum(psu.capacity_w for psu in self.instances)

    def output_shares(self, total_output_w: float) -> List[float]:
        """DC watts delivered by each PSU under the active policy."""
        if total_output_w < 0:
            raise ValueError(f"demand must be >= 0, got {total_output_w}")
        n = len(self.instances)
        if self.policy == SharingPolicy.BALANCED:
            return [total_output_w / n] * n
        # SINGLE and HOT_STANDBY both put the full load on PSU 0; they
        # differ only in whether the others draw idle losses.
        return [total_output_w] + [0.0] * (n - 1)

    def wall_power(self, total_output_w: float) -> float:
        """True AC power drawn from the wall to deliver ``total_output_w``."""
        shares = self.output_shares(total_output_w)
        total = 0.0
        for psu, share in zip(self.instances, shares):
            if share == 0.0 and self.policy == SharingPolicy.SINGLE:
                continue  # unplugged spare draws nothing
            total += psu.input_power(share)
        return total

    def loads(self, total_output_w: float) -> List[float]:
        """Load fraction of each PSU under the active policy."""
        return [share / psu.capacity_w
                for psu, share in zip(self.instances,
                                      self.output_shares(total_output_w))]

    def sensor_snapshots(self, total_output_w: float,
                         rng: np.random.Generator) -> List[PsuSensorReading]:
        """One noisy (P_in, P_out) reading per PSU (§9.2 data shape)."""
        return [psu.sensor_snapshot(share, rng)
                for psu, share in zip(self.instances,
                                      self.output_shares(total_output_w))]


def make_psu_model(capacity_w: float,
                   rating: EightyPlus = EightyPlus.PLATINUM,
                   name: Optional[str] = None) -> PSUModel:
    """A generic PSU product at a capacity, with a rating-shaped curve."""
    curve = standard_curve(rating)
    return PSUModel(
        name=name or f"PSU-{int(capacity_w)}W-{rating.value}",
        capacity_w=capacity_w,
        curve=curve,
        rating=rating,
    )


#: The PFE600-12-054xA itself, for the Wedge 100BF-32X and Fig. 5.
PFE600_MODEL = PSUModel(name="PFE600-12-054xA", capacity_w=600,
                        curve=PFE600_CURVE, rating=EightyPlus.PLATINUM)
