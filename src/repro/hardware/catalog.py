"""Ground-truth router model catalog.

Each :class:`RouterModelSpec` defines the *true* power behaviour of one
router product: base power, per-interface-class power terms, PSU
configuration, PSU sensor quirks, and the vendor-datasheet numbers an
operator would see.  The truth values for the eight modelled devices come
straight from the paper (Tables 2 and 6); datasheet values and measured
medians for Table 1 come from Table 1.  Everything downstream -- the lab
derivation, the SNMP fleet, the validation -- treats these specs as hidden
ground truth and must recover or approximate them through measurements.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import units
from repro.hardware.psu import EightyPlus
from repro.hardware.transceiver import PortType, Reach, TRANSCEIVER_CATALOG


class PsuSensorQuirk(enum.Enum):
    """How a router model's PSU power telemetry misbehaves (§6.2).

    The paper found three behaviours among its three externally-measured
    routers: a constant offset to the true value (precise but inaccurate),
    a pseudo-constant reading with sharp jumps (useless), and no reporting
    at all.
    """

    ACCURATE = "accurate"             # tracks truth within sensor noise
    OFFSET = "offset"                 # truth + constant offset (8201-32FH)
    PSEUDO_CONSTANT = "pseudo-constant"  # quantised plateau, jumps on power cycle
    ABSENT = "absent"                 # no power reporting (N540X-...)


@dataclass(frozen=True)
class InterfaceClassTruth:
    """True power parameters of one (port type, media, speed) class.

    These are the seven per-interface terms of the paper's model (§4.2),
    in the paper's units: watts, picojoules per bit, nanojoules per packet.
    ``p_trx_in``/``p_trx_up`` are attached to the class rather than the
    transceiver product because the measured split differs across router
    platforms for the same module (Table 2 b).
    """

    port_type: PortType
    reach: Reach
    speed_gbps: float
    p_port_w: float
    p_trx_in_w: float
    p_trx_up_w: float
    e_bit_pj: float
    e_pkt_nj: float
    p_offset_w: float

    @property
    def key(self) -> Tuple[PortType, Reach, float]:
        """Lookup key within a router spec."""
        return (self.port_type, self.reach, self.speed_gbps)

    @property
    def e_bit_j(self) -> float:
        """Energy per bit in joules."""
        return units.pj_to_joules(self.e_bit_pj)

    @property
    def e_pkt_j(self) -> float:
        """Energy per packet in joules."""
        return units.nj_to_joules(self.e_pkt_nj)

    @property
    def p_trx_total_w(self) -> float:
        """Full transceiver power ``P_trx,in + P_trx,up``."""
        return self.p_trx_in_w + self.p_trx_up_w


@dataclass(frozen=True)
class PortGroup:
    """A bank of identical ports on a fixed-chassis router."""

    count: int
    port_type: PortType

    def __post_init__(self):
        if self.count <= 0:
            raise ValueError(f"port count must be positive, got {self.count}")


@dataclass(frozen=True)
class DatasheetInfo:
    """What the vendor datasheet says about a router model (§3).

    ``typical_w`` may be absent ("TBD" happens, §3.1); the Fig. 2b analysis
    then falls back to ``max_w``.
    """

    typical_w: Optional[float]
    max_w: Optional[float]
    max_bandwidth_gbps: float
    release_year: Optional[int] = None
    psu_options_w: Tuple[int, ...] = ()


@dataclass(frozen=True)
class PsuConfig:
    """PSU provisioning of a router model as shipped."""

    count: int
    capacity_w: float
    rating: EightyPlus = EightyPlus.PLATINUM
    #: Mean and spread of the per-instance efficiency offset for this
    #: model's PSU population (drives the Fig. 6 scatter).
    offset_mean: float = 0.0
    offset_std: float = 0.02


@dataclass(frozen=True)
class RouterModelSpec:
    """Complete ground-truth description of one router product."""

    name: str
    vendor: str
    series: str
    p_base_w: float
    port_groups: Tuple[PortGroup, ...]
    interface_classes: Tuple[InterfaceClassTruth, ...]
    psu: PsuConfig
    psu_quirk: PsuSensorQuirk
    datasheet: DatasheetInfo
    #: Constant offset applied by OFFSET-quirk PSU telemetry (W).
    psu_report_offset_w: float = 0.0
    #: Quantisation step of PSEUDO_CONSTANT telemetry (W).
    psu_report_quantum_w: float = 0.0

    def __post_init__(self):
        seen = set()
        for cls in self.interface_classes:
            if cls.key in seen:
                raise ValueError(
                    f"{self.name}: duplicate interface class {cls.key}")
            seen.add(cls.key)

    @property
    def total_ports(self) -> int:
        """Number of physical ports across all groups."""
        return sum(group.count for group in self.port_groups)

    @property
    def class_map(self) -> Dict[Tuple[PortType, Reach, float], InterfaceClassTruth]:
        """Interface classes keyed for lookup.

        Built once per (frozen, immutable) spec and cached: at fleet
        scale this is on the hot path of columnising 10^5+ ports.
        """
        cached = self.__dict__.get("_class_map")
        if cached is None:
            cached = {cls.key: cls for cls in self.interface_classes}
            object.__setattr__(self, "_class_map", cached)
        return cached

    def find_class(self, port_type: PortType, reach: Reach,
                   speed_gbps: float) -> InterfaceClassTruth:
        """Truth for a class, falling back to generic defaults.

        Fleet routers carry modules the lab never characterised; their
        truth comes from :func:`default_class_truth`, which mirrors the
        per-port-type averages of Table 5.  Results are memoized per
        class key -- every input is frozen, so the lookup is a pure
        function of ``(port_type, reach, speed_gbps)``.
        """
        cache = self.__dict__.get("_find_class_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_find_class_cache", cache)
        key = (port_type, reach, speed_gbps)
        hit = cache.get(key)
        if hit is not None:
            return hit
        truth = self._find_class_uncached(port_type, reach, speed_gbps)
        cache[key] = truth
        return truth

    def _find_class_uncached(self, port_type: PortType, reach: Reach,
                             speed_gbps: float) -> InterfaceClassTruth:
        exact = self.class_map.get((port_type, reach, speed_gbps))
        if exact is not None:
            return exact
        # Same port type and speed, different media: reuse the router-side
        # terms, swap the transceiver split from the module catalog.
        for cls in self.interface_classes:
            if cls.port_type == port_type and cls.speed_gbps == speed_gbps:
                trx = _catalog_module(port_type, reach, speed_gbps)
                if trx is not None:
                    return InterfaceClassTruth(
                        port_type=port_type, reach=reach,
                        speed_gbps=speed_gbps, p_port_w=cls.p_port_w,
                        p_trx_in_w=trx.power_in_w, p_trx_up_w=trx.power_up_w,
                        e_bit_pj=cls.e_bit_pj, e_pkt_nj=cls.e_pkt_nj,
                        p_offset_w=cls.p_offset_w)
        return default_class_truth(port_type, reach, speed_gbps)


@functools.lru_cache(maxsize=None)
def _catalog_module(port_type: PortType, reach: Reach, speed_gbps: float):
    """Find a catalog transceiver matching a class, if any."""
    for model in TRANSCEIVER_CATALOG.values():
        if (model.form_factor == port_type and model.reach == reach
                and model.speed_gbps == speed_gbps):
            return model
    return None


# ---------------------------------------------------------------------------
# Generic class defaults (aligned with Table 5 per-port-type averages)
# ---------------------------------------------------------------------------

#: Per-port-type router-side power (``P_port``), Table 5.
DEFAULT_P_PORT_W: Dict[PortType, float] = {
    PortType.SFP: 0.05,
    PortType.SFP_PLUS: 0.55,
    PortType.SFP28: 0.30,
    PortType.QSFP: 0.94,
    PortType.QSFP28: 0.53,
    PortType.QSFP_DD: 1.82,
    PortType.RJ45: 1.00,
}

#: Per-port-type interface-up transceiver increment (``P_trx,up``), Table 5.
DEFAULT_P_TRX_UP_W: Dict[PortType, float] = {
    PortType.SFP: 0.005,
    PortType.SFP_PLUS: -0.016,
    PortType.SFP28: 0.05,
    PortType.QSFP: 0.21,
    PortType.QSFP28: 0.126,
    PortType.QSFP_DD: -0.069,
    PortType.RJ45: 0.0,
}


@functools.lru_cache(maxsize=None)
def default_class_truth(port_type: PortType, reach: Reach,
                        speed_gbps: float) -> InterfaceClassTruth:
    """Generic truth for classes no lab experiment characterised.

    ``P_port``/``P_trx,up`` follow the Table 5 per-port-type averages;
    ``P_trx,in`` comes from the transceiver catalog; the traffic terms use
    the paper's §7 observation that high-speed ports cost a few pJ/bit and
    nJ/packet while low-speed ports are an order of magnitude less
    efficient per bit.
    """
    module = _catalog_module(port_type, reach, speed_gbps)
    p_trx_in = module.power_in_w if module is not None else 0.5
    if speed_gbps >= 100:
        e_bit, e_pkt = 5.0, 15.0
    elif speed_gbps >= 25:
        e_bit, e_pkt = 8.0, 18.0
    elif speed_gbps >= 10:
        e_bit, e_pkt = 25.0, 25.0
    else:
        e_bit, e_pkt = 35.0, 20.0
    return InterfaceClassTruth(
        port_type=port_type, reach=reach, speed_gbps=speed_gbps,
        p_port_w=DEFAULT_P_PORT_W[port_type],
        p_trx_in_w=p_trx_in,
        p_trx_up_w=DEFAULT_P_TRX_UP_W[port_type],
        e_bit_pj=e_bit, e_pkt_nj=e_pkt, p_offset_w=0.05,
    )


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------


def _cls(port: PortType, reach: Reach, speed: float, p_port: float,
         p_in: float, p_up: float, e_bit: float, e_pkt: float,
         p_off: float) -> InterfaceClassTruth:
    return InterfaceClassTruth(
        port_type=port, reach=reach, speed_gbps=speed, p_port_w=p_port,
        p_trx_in_w=p_in, p_trx_up_w=p_up, e_bit_pj=e_bit, e_pkt_nj=e_pkt,
        p_offset_w=p_off)


ROUTER_CATALOG: Dict[str, RouterModelSpec] = {}


def _register(spec: RouterModelSpec) -> RouterModelSpec:
    if spec.name in ROUTER_CATALOG:
        raise ValueError(f"duplicate router model {spec.name}")
    ROUTER_CATALOG[spec.name] = spec
    return spec


# --- Table 2 devices (fully modelled in the paper) -------------------------

NCS_55A1_24H = _register(RouterModelSpec(
    name="NCS-55A1-24H",
    vendor="Cisco", series="NCS 5500",
    p_base_w=320.0,
    port_groups=(PortGroup(24, PortType.QSFP28),),
    interface_classes=(
        _cls(PortType.QSFP28, Reach.DAC, 100, 0.32, 0.02, 0.19, 22, 58, 0.37),
        _cls(PortType.QSFP28, Reach.DAC, 50, 0.18, 0.02, 0.16, 21, 57, 0.34),
        _cls(PortType.QSFP28, Reach.DAC, 25, 0.10, 0.02, 0.08, 21, 55, 0.21),
        _cls(PortType.QSFP28, Reach.LR4, 100, 0.32, 2.79, 0.40, 22, 58, 0.37),
        _cls(PortType.QSFP28, Reach.SR, 100, 0.32, 1.70, 0.30, 22, 58, 0.37),
    ),
    psu=PsuConfig(count=2, capacity_w=1100, rating=EightyPlus.PLATINUM,
                  offset_mean=0.03, offset_std=0.025),
    psu_quirk=PsuSensorQuirk.PSEUDO_CONSTANT,
    psu_report_quantum_w=7.0,
    datasheet=DatasheetInfo(typical_w=600, max_w=715,
                            max_bandwidth_gbps=2400, release_year=2017,
                            psu_options_w=(1100,)),
))

NEXUS_9336C_FX2 = _register(RouterModelSpec(
    name="Nexus9336-FX2",
    vendor="Cisco", series="Nexus 9300",
    p_base_w=285.0,
    port_groups=(PortGroup(36, PortType.QSFP28),),
    interface_classes=(
        _cls(PortType.QSFP28, Reach.LR, 100, 1.90, 2.79, -0.06, 8, 24, -0.43),
        _cls(PortType.QSFP28, Reach.DAC, 100, 1.13, 0.09, -0.02, 8, 26, 0.07),
    ),
    psu=PsuConfig(count=2, capacity_w=1100, rating=EightyPlus.PLATINUM,
                  offset_mean=0.01, offset_std=0.02),
    psu_quirk=PsuSensorQuirk.ACCURATE,
    datasheet=DatasheetInfo(typical_w=380, max_w=480,
                            max_bandwidth_gbps=3600, release_year=2018,
                            psu_options_w=(1100,)),
))

CISCO_8201_32FH = _register(RouterModelSpec(
    name="8201-32FH",
    vendor="Cisco", series="Cisco 8000",
    p_base_w=253.0,
    port_groups=(PortGroup(32, PortType.QSFP_DD),),
    interface_classes=(
        _cls(PortType.QSFP, Reach.DAC, 100, 0.94, 0.35, 0.21, 3, 13, -0.04),
        _cls(PortType.QSFP_DD, Reach.FR4, 400, 1.82, 10.0, 2.0, 3, 13, -0.04),
        _cls(PortType.QSFP_DD, Reach.DAC, 400, 1.82, 0.20, 0.30, 3, 13, -0.04),
        _cls(PortType.QSFP_DD, Reach.LR4, 400, 1.82, 10.5, 2.5, 3, 13, -0.04),
    ),
    psu=PsuConfig(count=2, capacity_w=2000, rating=EightyPlus.PLATINUM,
                  offset_mean=-0.035, offset_std=0.015),
    psu_quirk=PsuSensorQuirk.OFFSET,
    psu_report_offset_w=17.5,
    datasheet=DatasheetInfo(typical_w=288, max_w=1100,
                            max_bandwidth_gbps=12800, release_year=2021,
                            psu_options_w=(2000,)),
))

N540X_8Z16G = _register(RouterModelSpec(
    name="N540X-8Z16G-SYS-A",
    vendor="Cisco", series="NCS 540",
    p_base_w=33.0,
    port_groups=(PortGroup(16, PortType.SFP), PortGroup(8, PortType.SFP_PLUS)),
    interface_classes=(
        # E_pkt is reported as -48 nJ in the paper with a dagger: the 1G
        # port's traffic power is too small to resolve, and the fitted
        # value is noise.  The truth engine uses the fitted value verbatim
        # so the re-derivation faces the same ill-conditioning.
        _cls(PortType.SFP, Reach.T, 1, -0.0, 3.41, 0.0, 37, -48, 0.01),
        _cls(PortType.SFP, Reach.LR, 1, 0.05, 0.55, 0.10, 37, 20, 0.01),
        _cls(PortType.SFP_PLUS, Reach.LR, 10, 0.55, 0.80, 0.15, 25, 25, 0.02),
        _cls(PortType.SFP_PLUS, Reach.DAC, 10, 0.55, 0.04, 0.04, 25, 25, 0.02),
    ),
    psu=PsuConfig(count=2, capacity_w=250, rating=EightyPlus.GOLD,
                  offset_mean=-0.02, offset_std=0.03),
    psu_quirk=PsuSensorQuirk.ABSENT,
    datasheet=DatasheetInfo(typical_w=75, max_w=120,
                            max_bandwidth_gbps=96, release_year=2019,
                            psu_options_w=(400,)),
))

# --- Table 6 devices (additional models) -----------------------------------

WEDGE_100BF_32X = _register(RouterModelSpec(
    name="Wedge 100BF-32X",
    vendor="EdgeCore", series="Wedge 100",
    p_base_w=108.0,
    port_groups=(PortGroup(32, PortType.QSFP28),),
    interface_classes=(
        _cls(PortType.QSFP28, Reach.DAC, 100, 0.88, 0.0, 0.69, 1.7, 7.2, 0.0),
        _cls(PortType.QSFP28, Reach.DAC, 50, 0.21, 0.0, 0.31, 2.5, 5.6, 0.05),
        _cls(PortType.QSFP28, Reach.DAC, 25, 0.21, 0.0, 0.10, 2.7, 4.7, 0.06),
    ),
    psu=PsuConfig(count=2, capacity_w=600, rating=EightyPlus.PLATINUM,
                  offset_mean=0.0, offset_std=0.01),
    psu_quirk=PsuSensorQuirk.ACCURATE,
    datasheet=DatasheetInfo(typical_w=127, max_w=300,
                            max_bandwidth_gbps=3200, release_year=2017,
                            psu_options_w=(600,)),
))

NEXUS_93108TC_FX3P = _register(RouterModelSpec(
    name="Nexus 93108TC-FX3P",
    vendor="Cisco", series="Nexus 9300",
    p_base_w=147.0,
    port_groups=(PortGroup(48, PortType.RJ45), PortGroup(6, PortType.QSFP28)),
    interface_classes=(
        _cls(PortType.QSFP28, Reach.DAC, 100, 0.17, 0.11, 0.23, 5.4, 21.2, 0.0),
        _cls(PortType.QSFP28, Reach.DAC, 40, 0.07, 0.11, 0.16, 6.5, 17.4, 0.03),
        _cls(PortType.RJ45, Reach.T, 10, 2.06, 0.11, 0.0, 6.7, 16.9, -0.03),
        _cls(PortType.RJ45, Reach.T, 1, 0.93, 0.11, 0.0, 33.8, 18.2, -0.03),
    ),
    psu=PsuConfig(count=2, capacity_w=1100, rating=EightyPlus.PLATINUM,
                  offset_mean=0.0, offset_std=0.02),
    psu_quirk=PsuSensorQuirk.ACCURATE,
    datasheet=DatasheetInfo(typical_w=250, max_w=429,
                            max_bandwidth_gbps=1080, release_year=2020,
                            psu_options_w=(1100,)),
))

VSP_4900 = _register(RouterModelSpec(
    name="VSP-4900",
    vendor="Extreme", series="VSP 4900",
    p_base_w=8.2,
    port_groups=(PortGroup(48, PortType.SFP_PLUS),),
    interface_classes=(
        _cls(PortType.SFP_PLUS, Reach.T, 10, 0.08, 0.06, 0.0, 25.6, 26.5, 0.04),
        _cls(PortType.SFP_PLUS, Reach.LR, 10, 0.08, 0.80, 0.15, 25.6, 26.5, 0.04),
    ),
    psu=PsuConfig(count=1, capacity_w=150, rating=EightyPlus.GOLD,
                  offset_mean=0.0, offset_std=0.02),
    psu_quirk=PsuSensorQuirk.ACCURATE,
    datasheet=DatasheetInfo(typical_w=75, max_w=150,
                            max_bandwidth_gbps=480, release_year=2019,
                            psu_options_w=(150,)),
))

CATALYST_3560 = _register(RouterModelSpec(
    name="Catalyst 3560",
    vendor="Cisco", series="Catalyst 3560",
    p_base_w=40.0,
    port_groups=(PortGroup(24, PortType.RJ45),),
    interface_classes=(
        _cls(PortType.RJ45, Reach.T, 0.1, 0.21, 0.0, 0.0, 15.7, 193.1, -0.01),
    ),
    psu=PsuConfig(count=1, capacity_w=250, rating=EightyPlus.BRONZE,
                  offset_mean=-0.01, offset_std=0.02),
    psu_quirk=PsuSensorQuirk.ABSENT,
    datasheet=DatasheetInfo(typical_w=65, max_w=100,
                            max_bandwidth_gbps=2.4, release_year=2005,
                            psu_options_w=(250,)),
))

# --- Table 1 devices without lab models (fleet + datasheet comparison) -----

ASR_920_24SZ_M = _register(RouterModelSpec(
    name="ASR-920-24SZ-M",
    vendor="Cisco", series="ASR 920",
    p_base_w=62.0,
    port_groups=(PortGroup(24, PortType.SFP), PortGroup(4, PortType.SFP_PLUS)),
    interface_classes=(),
    psu=PsuConfig(count=2, capacity_w=250, rating=EightyPlus.SILVER,
                  offset_mean=0.0, offset_std=0.12),
    psu_quirk=PsuSensorQuirk.ACCURATE,
    datasheet=DatasheetInfo(typical_w=110, max_w=250,
                            max_bandwidth_gbps=64, release_year=2015,
                            psu_options_w=(250,)),
))

NCS_55A1_24Q6H_SS = _register(RouterModelSpec(
    name="NCS-55A1-24Q6H-SS",
    vendor="Cisco", series="NCS 5500",
    p_base_w=269.0,
    port_groups=(PortGroup(24, PortType.SFP28), PortGroup(6, PortType.QSFP28)),
    interface_classes=(),
    psu=PsuConfig(count=2, capacity_w=1100, rating=EightyPlus.PLATINUM,
                  offset_mean=0.02, offset_std=0.02),
    psu_quirk=PsuSensorQuirk.PSEUDO_CONSTANT,
    psu_report_quantum_w=6.0,
    datasheet=DatasheetInfo(typical_w=400, max_w=530,
                            max_bandwidth_gbps=1200, release_year=2018,
                            psu_options_w=(1100,)),
))

NCS_55A1_48Q6H = _register(RouterModelSpec(
    name="NCS-55A1-48Q6H",
    vendor="Cisco", series="NCS 5500",
    p_base_w=332.0,
    port_groups=(PortGroup(48, PortType.SFP28), PortGroup(6, PortType.QSFP28)),
    interface_classes=(),
    psu=PsuConfig(count=2, capacity_w=1100, rating=EightyPlus.PLATINUM,
                  offset_mean=0.02, offset_std=0.02),
    psu_quirk=PsuSensorQuirk.PSEUDO_CONSTANT,
    psu_report_quantum_w=6.0,
    datasheet=DatasheetInfo(typical_w=460, max_w=610,
                            max_bandwidth_gbps=1800, release_year=2018,
                            psu_options_w=(1100,)),
))

ASR_9001 = _register(RouterModelSpec(
    name="ASR-9001",
    vendor="Cisco", series="ASR 9000",
    p_base_w=334.0,
    port_groups=(PortGroup(4, PortType.SFP_PLUS), PortGroup(20, PortType.SFP)),
    interface_classes=(),
    psu=PsuConfig(count=2, capacity_w=1100, rating=EightyPlus.GOLD,
                  offset_mean=0.0, offset_std=0.04),
    psu_quirk=PsuSensorQuirk.ACCURATE,
    datasheet=DatasheetInfo(typical_w=425, max_w=750,
                            max_bandwidth_gbps=120, release_year=2012,
                            psu_options_w=(750, 2000)),
))

N540_24Z8Q2C_M = _register(RouterModelSpec(
    name="N540-24Z8Q2C-M",
    vendor="Cisco", series="NCS 540",
    p_base_w=146.0,
    port_groups=(PortGroup(24, PortType.SFP_PLUS), PortGroup(8, PortType.SFP28),
                 PortGroup(2, PortType.QSFP28)),
    interface_classes=(),
    psu=PsuConfig(count=2, capacity_w=400, rating=EightyPlus.GOLD,
                  offset_mean=0.0, offset_std=0.03),
    psu_quirk=PsuSensorQuirk.ACCURATE,
    datasheet=DatasheetInfo(typical_w=200, max_w=350,
                            max_bandwidth_gbps=640, release_year=2019,
                            psu_options_w=(750,)),
))

CISCO_8201_24H8FH = _register(RouterModelSpec(
    name="8201-24H8FH",
    vendor="Cisco", series="Cisco 8000",
    p_base_w=207.0,
    port_groups=(PortGroup(24, PortType.QSFP28), PortGroup(8, PortType.QSFP_DD)),
    interface_classes=(
        _cls(PortType.QSFP28, Reach.DAC, 100, 0.94, 0.02, 0.19, 3, 13, -0.04),
        _cls(PortType.QSFP_DD, Reach.FR4, 400, 1.82, 10.0, 2.0, 3, 13, -0.04),
    ),
    psu=PsuConfig(count=2, capacity_w=2000, rating=EightyPlus.PLATINUM,
                  offset_mean=-0.03, offset_std=0.015),
    psu_quirk=PsuSensorQuirk.OFFSET,
    psu_report_offset_w=15.0,
    datasheet=DatasheetInfo(typical_w=205, max_w=900,
                            max_bandwidth_gbps=5600, release_year=2021,
                            psu_options_w=(2000,)),
))

# --- Additional fleet models (no Table 1/2/6 role; diversify the network) --

NCS_5501_SE = _register(RouterModelSpec(
    name="NCS-5501-SE",
    vendor="Cisco", series="NCS 5500",
    p_base_w=210.0,
    port_groups=(PortGroup(40, PortType.SFP_PLUS), PortGroup(4, PortType.QSFP28)),
    interface_classes=(),
    psu=PsuConfig(count=2, capacity_w=750, rating=EightyPlus.PLATINUM,
                  offset_mean=0.01, offset_std=0.02),
    psu_quirk=PsuSensorQuirk.ACCURATE,
    datasheet=DatasheetInfo(typical_w=350, max_w=445,
                            max_bandwidth_gbps=800, release_year=2017,
                            psu_options_w=(750,)),
))

CISCO_8101_32H = _register(RouterModelSpec(
    name="8101-32H",
    vendor="Cisco", series="Cisco 8000",
    p_base_w=225.0,
    port_groups=(PortGroup(32, PortType.QSFP28),),
    interface_classes=(
        _cls(PortType.QSFP28, Reach.DAC, 100, 0.94, 0.02, 0.19, 3, 13, -0.04),
    ),
    psu=PsuConfig(count=2, capacity_w=2000, rating=EightyPlus.PLATINUM,
                  offset_mean=-0.03, offset_std=0.02),
    psu_quirk=PsuSensorQuirk.OFFSET,
    psu_report_offset_w=12.0,
    datasheet=DatasheetInfo(typical_w=320, max_w=650,
                            max_bandwidth_gbps=3200, release_year=2020,
                            psu_options_w=(2000,)),
))

ASR_9902 = _register(RouterModelSpec(
    name="ASR-9902",
    vendor="Cisco", series="ASR 9000",
    p_base_w=620.0,
    port_groups=(PortGroup(40, PortType.SFP_PLUS), PortGroup(8, PortType.QSFP28)),
    interface_classes=(),
    psu=PsuConfig(count=2, capacity_w=2700, rating=EightyPlus.PLATINUM,
                  offset_mean=0.0, offset_std=0.03),
    psu_quirk=PsuSensorQuirk.ACCURATE,
    datasheet=DatasheetInfo(typical_w=1100, max_w=1600,
                            max_bandwidth_gbps=1600, release_year=2020,
                            psu_options_w=(2700,)),
))


def router_spec(name: str) -> RouterModelSpec:
    """Look up a router model by product name.

    Raises ``KeyError`` listing known models if ``name`` is unknown.
    """
    try:
        return ROUTER_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(ROUTER_CATALOG))
        raise KeyError(f"unknown router model {name!r}; known models: {known}")


#: The eight devices the paper derives full power models for (Tables 2 & 6).
MODELLED_DEVICES: Tuple[str, ...] = (
    "NCS-55A1-24H", "Nexus9336-FX2", "8201-32FH", "N540X-8Z16G-SYS-A",
    "Wedge 100BF-32X", "Nexus 93108TC-FX3P", "VSP-4900", "Catalyst 3560",
)

#: The eight devices of Table 1 (datasheet vs measured comparison).
TABLE1_DEVICES: Tuple[str, ...] = (
    "NCS-55A1-24H", "ASR-920-24SZ-M", "NCS-55A1-24Q6H-SS", "NCS-55A1-48Q6H",
    "ASR-9001", "N540-24Z8Q2C-M", "8201-32FH", "8201-24H8FH",
)

#: Measured median power per Table 1 device, from the paper's SNMP traces.
#: Used only to calibrate the synthetic fleet and as the reference column
#: in the Table 1 bench -- never as an input to the models.
TABLE1_MEASURED_MEDIAN_W: Dict[str, float] = {
    "NCS-55A1-24H": 358.0,
    "ASR-920-24SZ-M": 73.0,
    "NCS-55A1-24Q6H-SS": 285.0,
    "NCS-55A1-48Q6H": 346.0,
    "ASR-9001": 335.0,
    "N540-24Z8Q2C-M": 159.0,
    "8201-32FH": 359.0,
    "8201-24H8FH": 296.0,
}
