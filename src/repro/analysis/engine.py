"""The rule engine behind ``netpower check``.

Dependency-free (stdlib ``ast`` + ``tokenize`` only).  Two kinds of
rules run here:

* a **file rule** is a function registered with :func:`rule` that
  inspects one parsed file -- a :class:`FileContext` -- and yields
  ``(line, col, message)`` tuples;
* a **project rule** is a function registered with
  :func:`project_rule` that inspects the *whole* checked tree at once
  -- a :class:`ProjectContext` carrying every parsed file plus the
  lazily-built module/call graph (:mod:`.graph`) and interprocedural
  taint analysis (:mod:`.dataflow`) -- and yields ``(path, line, col,
  message)`` tuples.  The NP-FLOW / NP-ASYNC / NP-MUT families live
  here: they see a wall-clock read laundered through a helper in
  another module, which no per-file rule can.

The engine parses each file once, runs every selected rule, applies
``# netpower: ignore[...]`` suppressions (:mod:`.suppress`) uniformly
to both kinds of findings, and returns everything in stable sorted
order.

Scoping follows the repository's determinism contract:

* **NP-DET** rules only fire inside the deterministic packages
  (``core/``, ``network/``, ``sweep/``, ``validation/``,
  ``monitor/``, ``serve/``, ``telemetry/``), with a wall-clock
  allowlist for the sanctioned timing paths (``obs/tracing.py``,
  ``obs/profile.py``, ``bench.py``, ``sweep/runner.py``, and the
  serve layer's latency histograms in ``serve/app.py``).
* **NP-FLOW** sinks are the packages whose *outputs* must be
  byte-identical (:attr:`CheckConfig.flow_sinks`); the taint
  propagator honors the same wall-clock allowlist at the source end.
* **NP-UNIT**, **NP-API**, **NP-SCHEMA**, and **NP-OBS** rules apply
  to every checked file, except that :mod:`repro.units` itself may
  spell out the raw powers of ten it exists to name, and the ``obs``
  implementing modules may forward span/region names as parameters.

Paths are reported relative to the ``repro`` package root (e.g.
``core/model.py``), so reports do not depend on where the tree is
checked out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List,
                    Mapping, Optional, Sequence, Tuple)

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppress import Suppression, parse_suppressions

if TYPE_CHECKING:
    from repro.analysis.dataflow import TaintAnalysis
    from repro.analysis.graph import ProjectGraph

#: What a file rule yields: ``(line, col, message)``.
RawFinding = Tuple[int, int, str]
#: What a project rule yields: ``(path, line, col, message)``.
ProjectRawFinding = Tuple[str, int, int, str]


@dataclass(frozen=True)
class CheckConfig:
    """Which rules run where.

    The defaults encode this repository's layout; tests construct
    narrower configs to point rules at fixture files.
    """

    #: Top-level package directories where the NP-DET family applies.
    det_packages: Tuple[str, ...] = (
        "core", "network", "sweep", "validation", "monitor", "serve",
        "telemetry")
    #: Package-relative files where wall-clock reads are sanctioned.
    wallclock_allow: Tuple[str, ...] = (
        "obs/tracing.py", "obs/profile.py", "bench.py", "sweep/runner.py",
        "serve/app.py")
    #: Package-relative files exempt from NP-UNIT scale-literal checks.
    unit_literal_exempt: Tuple[str, ...] = ("units.py",)
    #: Package-relative files exempt from NP-OBS literal-name checks:
    #: the observability modules whose helpers forward a ``name``
    #: parameter by design.
    obs_forwarding_exempt: Tuple[str, ...] = (
        "obs/tracing.py", "obs/profile.py")
    #: Path prefixes whose functions are NP-FLOW taint *sinks*: the
    #: code whose outputs the determinism contract covers.  A trailing
    #: ``/`` matches a package, a full file name matches one file.
    flow_sinks: Tuple[str, ...] = (
        "core/", "network/", "sweep/", "validation/", "monitor/",
        "serve/schemas.py", "serve/cache.py", "serve/batching.py")
    #: Package-relative files exempt from the NP-ASYNC shared-state
    #: rule: the batcher *is* the sanctioned cross-task drain.
    async_state_exempt: Tuple[str, ...] = ("serve/batching.py",)
    #: Package-relative files allowed to call ``predict_trace`` from
    #: loop-reachable code (the batcher evaluates the grouped matrix
    #: call inline by design; everything else must go through it).
    async_predict_allow: Tuple[str, ...] = ("serve/batching.py",)
    #: Package-relative files allowed to write ``FleetState`` column
    #: arrays: the engine's own patch/refresh kernels.
    mut_allow: Tuple[str, ...] = ("network/engine.py",)
    #: Rule ids or family prefixes to run; ``None`` runs everything.
    select: Optional[Tuple[str, ...]] = None

    def rule_enabled(self, rule_id: str) -> bool:
        """Whether ``rule_id`` is within the selected set."""
        if self.select is None:
            return True
        return any(rule_id == token or rule_id.startswith(token + "-")
                   for token in self.select)

    def fingerprint(self) -> str:
        """A stable text form of every scoping knob (cache key part)."""
        parts = [
            ",".join(self.det_packages),
            ",".join(self.wallclock_allow),
            ",".join(self.unit_literal_exempt),
            ",".join(self.obs_forwarding_exempt),
            ",".join(self.flow_sinks),
            ",".join(self.async_state_exempt),
            ",".join(self.async_predict_allow),
            ",".join(self.mut_allow),
            ",".join(self.select) if self.select is not None else "*",
        ]
        return "|".join(parts)


@dataclass
class FileContext:
    """One parsed file handed to every rule."""

    path: str  #: package-relative posix path, e.g. ``core/model.py``
    source: str
    tree: ast.Module
    config: CheckConfig

    @property
    def in_det_scope(self) -> bool:
        """Whether the NP-DET family applies to this file."""
        head = self.path.split("/", 1)[0]
        return head in self.config.det_packages

    @property
    def in_flow_sink_scope(self) -> bool:
        """Whether this file's functions are NP-FLOW taint sinks."""
        if self.path in self.config.wallclock_allow:
            return False
        for prefix in self.config.flow_sinks:
            if prefix.endswith("/"):
                if self.path.startswith(prefix):
                    return True
            elif self.path == prefix:
                return True
        return False

    @property
    def wallclock_allowed(self) -> bool:
        """Whether this file is a sanctioned wall-clock timing path."""
        return self.path in self.config.wallclock_allow

    @property
    def unit_literals_allowed(self) -> bool:
        """Whether bare scale literals are sanctioned here."""
        return self.path in self.config.unit_literal_exempt

    @property
    def obs_forwarding_allowed(self) -> bool:
        """Whether dynamic span/region names are sanctioned here."""
        return self.path in self.config.obs_forwarding_exempt


@dataclass
class ProjectContext:
    """Every parsed file of one check run, plus the analysis layers.

    The module graph and taint analysis are built once on first use
    and shared by every project rule, so a whole-tree check pays for
    symbol resolution and the taint fixed point exactly once.
    """

    files: Dict[str, FileContext]  #: path -> context, in sorted order
    config: CheckConfig
    _graph: Optional["ProjectGraph"] = field(default=None, repr=False)
    _taint: Optional["TaintAnalysis"] = field(default=None, repr=False)

    @property
    def graph(self) -> "ProjectGraph":
        """The module/symbol resolver and call graph (built lazily)."""
        if self._graph is None:
            from repro.analysis.graph import build_graph
            self._graph = build_graph(self.files)
        return self._graph

    @property
    def taint(self) -> "TaintAnalysis":
        """The interprocedural taint fixed point (built lazily)."""
        if self._taint is None:
            from repro.analysis.dataflow import analyze
            self._taint = analyze(self.graph, self.config)
        return self._taint


@dataclass(frozen=True)
class Rule:
    """A registered file rule: id, severity, summary, and its check."""

    rule_id: str
    severity: Severity
    summary: str
    check: Callable[[FileContext], Iterator[RawFinding]]
    #: An example finding message for ``--explain``.
    example: str = ""


@dataclass(frozen=True)
class ProjectRule:
    """A registered whole-program rule."""

    rule_id: str
    severity: Severity
    summary: str
    check: Callable[[ProjectContext], Iterator[ProjectRawFinding]]
    #: An example finding message for ``--explain``.
    example: str = ""


_REGISTRY: Dict[str, Rule] = {}
_PROJECT_REGISTRY: Dict[str, ProjectRule] = {}

_FileCheck = Callable[[FileContext], Iterator[RawFinding]]
_ProjectCheck = Callable[[ProjectContext], Iterator[ProjectRawFinding]]


def rule(rule_id: str, severity: Severity, summary: str,
         example: str = "") -> Callable[[_FileCheck], _FileCheck]:
    """Class-less file-rule registration decorator."""
    def register(check: _FileCheck) -> _FileCheck:
        if rule_id in _REGISTRY or rule_id in _PROJECT_REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(rule_id=rule_id, severity=severity,
                                  summary=summary, check=check,
                                  example=example)
        return check
    return register


def project_rule(rule_id: str, severity: Severity, summary: str,
                 example: str = "") -> Callable[[_ProjectCheck],
                                                _ProjectCheck]:
    """Whole-program rule registration decorator."""
    def register(check: _ProjectCheck) -> _ProjectCheck:
        if rule_id in _REGISTRY or rule_id in _PROJECT_REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _PROJECT_REGISTRY[rule_id] = ProjectRule(
            rule_id=rule_id, severity=severity, summary=summary,
            check=check, example=example)
        return check
    return register


def all_rules() -> List[Rule]:
    """Every registered file rule, sorted by id (stable listing order)."""
    _load_rule_modules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def all_project_rules() -> List[ProjectRule]:
    """Every registered project rule, sorted by id."""
    _load_rule_modules()
    return [_PROJECT_REGISTRY[rule_id]
            for rule_id in sorted(_PROJECT_REGISTRY)]


def find_rule(rule_id: str) -> Optional[object]:
    """The registered rule with this id, file or project, else None."""
    _load_rule_modules()
    if rule_id in _REGISTRY:
        return _REGISTRY[rule_id]
    return _PROJECT_REGISTRY.get(rule_id)


def ruleset_version() -> str:
    """A stable token naming the loaded rule set (cache invalidation).

    Changes whenever a rule is added, removed, or its summary text is
    revised -- bump a rule's summary when its behaviour changes so
    stale cached findings cannot survive a rule edit.
    """
    parts = [f"{r.rule_id}={r.summary}" for r in all_rules()]
    parts += [f"{r.rule_id}={r.summary}" for r in all_project_rules()]
    return ";".join(sorted(parts))


def _load_rule_modules() -> None:
    """Import the rule modules so their decorators register."""
    from repro.analysis import (rules_api, rules_async,  # noqa: F401
                                rules_det, rules_flow, rules_mut,
                                rules_obs, rules_schema, rules_unit)


@dataclass
class CheckResult:
    """The outcome of checking one or more files."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by a matching suppression, in sorted order.
    suppressed: List[Finding] = field(default_factory=list)
    #: ``(path, line, rules)`` of suppressions that matched nothing.
    unused_suppressions: List[Tuple[str, int, Tuple[str, ...]]] = \
        field(default_factory=list)
    #: ``(path, line, rules)`` of suppressions whose ``-- reason``
    #: justification is missing, empty, or whitespace.
    unjustified_suppressions: List[Tuple[str, int, Tuple[str, ...]]] = \
        field(default_factory=list)
    #: Files checked, package-relative, sorted.
    paths: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the check passed (no unsuppressed findings)."""
        return not self.findings

    @property
    def clean(self) -> bool:
        """Whether the run should exit 0: no findings and no
        stale or unjustified suppressions."""
        return (not self.findings and not self.unused_suppressions
                and not self.unjustified_suppressions)

    def merge(self, other: "CheckResult") -> None:
        """Fold another (single-file) result into this one."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.unused_suppressions.extend(other.unused_suppressions)
        self.unjustified_suppressions.extend(
            other.unjustified_suppressions)
        self.paths.extend(other.paths)

    def finalize(self) -> "CheckResult":
        """Sort everything into the stable report order."""
        self.findings.sort(key=lambda f: f.sort_key)
        self.suppressed.sort(key=lambda f: f.sort_key)
        self.unused_suppressions.sort()
        self.unjustified_suppressions.sort()
        self.paths.sort()
        return self


class SuppressionIndex:
    """One file's suppression comments, ready to match findings.

    Wraps :func:`repro.analysis.suppress.parse_suppressions` with the
    line-targeting convention: a trailing comment covers its own line,
    a comment-only line covers the next code line below it (so a
    multi-line justification block sits above the statement it
    exempts), and ``ignore-file`` covers everything.
    """

    def __init__(self, path: str, source: str,
                 config: Optional[CheckConfig] = None):
        self.path = path
        self.config = config
        self.suppressions = parse_suppressions(source)
        lines = source.splitlines()

        def effective_line(line: int) -> int:
            text = lines[line - 1].lstrip() if line - 1 < len(lines) else ""
            if not text.startswith("#"):
                return line
            for index in range(line, len(lines)):
                stripped = lines[index].strip()
                if stripped and not stripped.startswith("#"):
                    return index + 1
            return line

        self._file_level: List[Suppression] = [
            s for s in self.suppressions if s.kind == "ignore-file"]
        self._by_line: Dict[int, List[Suppression]] = {}
        for suppression in self.suppressions:
            if suppression.kind == "ignore":
                self._by_line.setdefault(
                    effective_line(suppression.line), []).append(suppression)

    def matches(self, rule_id: str, line: int) -> bool:
        """Whether a finding at ``line`` is suppressed (marks usage)."""
        silencers = [s for s in self._by_line.get(line, ())
                     if s.covers(rule_id)]
        silencers.extend(s for s in self._file_level
                         if s.covers(rule_id))
        for suppression in silencers:
            suppression.matched = True
        return bool(silencers)

    def _in_selected_scope(self, suppression: Suppression) -> bool:
        """Whether a ``--select`` run can judge this suppression.

        A suppression for a family that is not selected cannot match
        anything this run, so it is neither unused nor unjustified
        here -- the full run is the one that audits it.
        """
        config = self.config
        if config is None or config.select is None:
            return True
        for rule_name in suppression.rules:
            if rule_name == "*":
                return True
            for token in config.select:
                if rule_name == token or \
                        rule_name.startswith(token + "-") or \
                        token.startswith(rule_name + "-"):
                    return True
        return False

    def unused(self) -> List[Tuple[str, int, Tuple[str, ...]]]:
        """Suppressions that silenced nothing, in line order."""
        return [(self.path, s.line, s.rules)
                for s in self.suppressions
                if not s.matched and self._in_selected_scope(s)]

    def unjustified(self) -> List[Tuple[str, int, Tuple[str, ...]]]:
        """Suppressions with an empty or whitespace ``-- reason``."""
        return [(self.path, s.line, s.rules)
                for s in self.suppressions
                if not s.reason.strip() and self._in_selected_scope(s)]


def parse_file(source: str, path: str,
               config: CheckConfig) -> Tuple[Optional[FileContext],
                                             Optional[Finding]]:
    """Parse one file into a :class:`FileContext`, or an NP-PARSE finding."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return None, Finding(
            rule_id="NP-PARSE", severity=Severity.ERROR, path=path,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"could not parse file: {exc.msg}")
    return FileContext(path=path, source=source, tree=tree,
                       config=config), None


def run_file_rules(context: FileContext) -> List[Finding]:
    """Every enabled file rule over one file; raw (pre-suppression)."""
    findings: List[Finding] = []
    for registered in all_rules():
        if not context.config.rule_enabled(registered.rule_id):
            continue
        for line, col, message in registered.check(context):
            findings.append(Finding(
                rule_id=registered.rule_id,
                severity=registered.severity, path=context.path,
                line=line, col=col, message=message))
    findings.sort(key=lambda f: f.sort_key)
    return findings


def run_project_rules(project: ProjectContext) -> Dict[str, List[Finding]]:
    """Every enabled project rule; raw findings grouped by file path.

    Every checked path gets an entry (possibly empty), so callers can
    cache "no findings for this file" as a positive fact.
    """
    by_path: Dict[str, List[Finding]] = {path: [] for path in project.files}
    for registered in all_project_rules():
        if not project.config.rule_enabled(registered.rule_id):
            continue
        for path, line, col, message in registered.check(project):
            by_path.setdefault(path, []).append(Finding(
                rule_id=registered.rule_id,
                severity=registered.severity, path=path, line=line,
                col=col, message=message))
    for findings in by_path.values():
        findings.sort(key=lambda f: f.sort_key)
    return by_path


def apply_suppressions(path: str, source: str,
                       findings: Sequence[Finding],
                       config: Optional[CheckConfig] = None,
                       ) -> CheckResult:
    """Split one file's raw findings by its suppression comments."""
    result = CheckResult(paths=[path])
    index = SuppressionIndex(path, source, config)
    for finding in findings:
        if index.matches(finding.rule_id, finding.line):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.unused_suppressions.extend(index.unused())
    result.unjustified_suppressions.extend(index.unjustified())
    return result.finalize()


def check_sources(sources: Mapping[str, str],
                  config: Optional[CheckConfig] = None) -> CheckResult:
    """Check a set of in-memory files as one project.

    Keys are package-relative posix paths; rules use them for scoping,
    so fixture tests pick paths like ``core/snippet.py`` to opt into
    the deterministic scope.
    """
    _load_rule_modules()
    config = config if config is not None else CheckConfig()
    total = CheckResult()
    contexts: Dict[str, FileContext] = {}
    raw: Dict[str, List[Finding]] = {}
    for path in sorted(sources):
        context, parse_finding = parse_file(sources[path], path, config)
        if context is None:
            assert parse_finding is not None
            file_result = CheckResult(paths=[path],
                                      findings=[parse_finding])
            total.merge(file_result)
            continue
        contexts[path] = context
        raw[path] = run_file_rules(context)
    if contexts:
        project = ProjectContext(files=contexts, config=config)
        for path, project_findings in run_project_rules(project).items():
            raw[path].extend(project_findings)
    for path, findings in raw.items():
        total.merge(apply_suppressions(path, sources[path], findings,
                                       config))
    return total.finalize()


def check_source(source: str, path: str,
                 config: Optional[CheckConfig] = None) -> CheckResult:
    """Check one file's source text (project rules see just this file)."""
    return check_sources({path: source}, config)


def _relative_path(file_path: Path) -> str:
    """The package-relative report path for ``file_path``.

    Everything after the last ``repro`` path component, or the file
    name when the file does not live under a ``repro`` package (e.g.
    fixture files in a temp directory).
    """
    parts = file_path.as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return parts[-1]


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and directories into a sorted ``*.py`` file list."""
    files = []
    for path in paths:
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py"))
        else:
            files.append(path)
    return sorted(set(files))


def read_sources(paths: Iterable[object]) -> Dict[str, str]:
    """Read every ``*.py`` under ``paths`` into a path -> source map."""
    sources: Dict[str, str] = {}
    for file_path in discover_files([Path(str(p)) for p in paths]):
        sources[_relative_path(file_path)] = \
            file_path.read_text(encoding="utf-8")
    return sources


def check_paths(paths: Iterable[object],
                config: Optional[CheckConfig] = None) -> CheckResult:
    """Check every ``*.py`` file under ``paths`` (files or dirs)."""
    return check_sources(read_sources(paths), config)
