"""The rule engine behind ``netpower check``.

Dependency-free (stdlib ``ast`` + ``tokenize`` only).  A *rule* is a
function registered with :func:`rule` that inspects one parsed file --
a :class:`FileContext` -- and yields ``(line, col, message)`` tuples.
The engine parses each file once, runs every selected rule, applies
``# netpower: ignore[...]`` suppressions (:mod:`.suppress`), and
returns findings in stable sorted order.

Scoping follows the repository's determinism contract:

* **NP-DET** rules only fire inside the deterministic packages
  (``core/``, ``network/``, ``sweep/``, ``validation/``,
  ``monitor/``), with a wall-clock allowlist for the three sanctioned
  timing paths (``obs/tracing.py``, ``bench.py``,
  ``sweep/runner.py``).
* **NP-UNIT**, **NP-API**, **NP-SCHEMA**, and **NP-OBS** rules apply
  to every checked file, except that :mod:`repro.units` itself may
  spell out the raw powers of ten it exists to name, and the ``obs``
  implementing modules may forward span/region names as parameters.

Paths are reported relative to the ``repro`` package root (e.g.
``core/model.py``), so reports do not depend on where the tree is
checked out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppress import Suppression, parse_suppressions

#: What a rule yields: ``(line, col, message)``.
RawFinding = Tuple[int, int, str]


@dataclass(frozen=True)
class CheckConfig:
    """Which rules run where.

    The defaults encode this repository's layout; tests construct
    narrower configs to point rules at fixture files.
    """

    #: Top-level package directories where the NP-DET family applies.
    det_packages: Tuple[str, ...] = (
        "core", "network", "sweep", "validation", "monitor")
    #: Package-relative files where wall-clock reads are sanctioned.
    wallclock_allow: Tuple[str, ...] = (
        "obs/tracing.py", "bench.py", "sweep/runner.py")
    #: Package-relative files exempt from NP-UNIT scale-literal checks.
    unit_literal_exempt: Tuple[str, ...] = ("units.py",)
    #: Package-relative files exempt from NP-OBS literal-name checks:
    #: the observability modules whose helpers forward a ``name``
    #: parameter by design.
    obs_forwarding_exempt: Tuple[str, ...] = (
        "obs/tracing.py", "obs/profile.py")
    #: Rule ids or family prefixes to run; ``None`` runs everything.
    select: Optional[Tuple[str, ...]] = None

    def rule_enabled(self, rule_id: str) -> bool:
        """Whether ``rule_id`` is within the selected set."""
        if self.select is None:
            return True
        return any(rule_id == token or rule_id.startswith(token + "-")
                   for token in self.select)


@dataclass
class FileContext:
    """One parsed file handed to every rule."""

    path: str  #: package-relative posix path, e.g. ``core/model.py``
    source: str
    tree: ast.Module
    config: CheckConfig

    @property
    def in_det_scope(self) -> bool:
        """Whether the NP-DET family applies to this file."""
        head = self.path.split("/", 1)[0]
        return head in self.config.det_packages

    @property
    def wallclock_allowed(self) -> bool:
        """Whether this file is a sanctioned wall-clock timing path."""
        return self.path in self.config.wallclock_allow

    @property
    def unit_literals_allowed(self) -> bool:
        """Whether bare scale literals are sanctioned here."""
        return self.path in self.config.unit_literal_exempt

    @property
    def obs_forwarding_allowed(self) -> bool:
        """Whether dynamic span/region names are sanctioned here."""
        return self.path in self.config.obs_forwarding_exempt


@dataclass(frozen=True)
class Rule:
    """A registered rule: id, severity, summary, and its check."""

    rule_id: str
    severity: Severity
    summary: str
    check: Callable[[FileContext], Iterator[RawFinding]]


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, severity: Severity,
         summary: str) -> Callable[[Callable[[FileContext],
                                             Iterator[RawFinding]]],
                                   Callable[[FileContext],
                                            Iterator[RawFinding]]]:
    """Class-less rule registration decorator."""
    def register(check: Callable[[FileContext],
                                 Iterator[RawFinding]]
                 ) -> Callable[[FileContext], Iterator[RawFinding]]:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(rule_id=rule_id, severity=severity,
                                  summary=summary, check=check)
        return check
    return register


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (stable listing order)."""
    _load_rule_modules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _load_rule_modules() -> None:
    """Import the rule modules so their decorators register."""
    from repro.analysis import (rules_api, rules_det,  # noqa: F401
                                rules_obs, rules_schema, rules_unit)


@dataclass
class CheckResult:
    """The outcome of checking one or more files."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by a matching suppression, in sorted order.
    suppressed: List[Finding] = field(default_factory=list)
    #: ``(path, line, rules)`` of suppressions that matched nothing.
    unused_suppressions: List[Tuple[str, int, Tuple[str, ...]]] = \
        field(default_factory=list)
    #: Files checked, package-relative, sorted.
    paths: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the check passed (no unsuppressed findings)."""
        return not self.findings

    def merge(self, other: "CheckResult") -> None:
        """Fold another (single-file) result into this one."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.unused_suppressions.extend(other.unused_suppressions)
        self.paths.extend(other.paths)

    def finalize(self) -> "CheckResult":
        """Sort everything into the stable report order."""
        self.findings.sort(key=lambda f: f.sort_key)
        self.suppressed.sort(key=lambda f: f.sort_key)
        self.unused_suppressions.sort()
        self.paths.sort()
        return self


def check_source(source: str, path: str,
                 config: Optional[CheckConfig] = None) -> CheckResult:
    """Check one file's source text.

    ``path`` is the package-relative posix path; rules use it for
    scoping, so fixture tests pick paths like ``core/snippet.py`` to
    opt into the deterministic scope.
    """
    _load_rule_modules()
    config = config if config is not None else CheckConfig()
    result = CheckResult(paths=[path])
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.findings.append(Finding(
            rule_id="NP-PARSE", severity=Severity.ERROR, path=path,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"could not parse file: {exc.msg}"))
        return result.finalize()

    context = FileContext(path=path, source=source, tree=tree,
                          config=config)
    lines = source.splitlines()

    def effective_line(line: int) -> int:
        """Where a suppression applies.

        Trailing comments cover their own line; a comment-only line
        covers the next code line (so a justification block above a
        statement suppresses findings on that statement).
        """
        text = lines[line - 1].lstrip() if line - 1 < len(lines) else ""
        if not text.startswith("#"):
            return line
        for index in range(line, len(lines)):
            stripped = lines[index].strip()
            if stripped and not stripped.startswith("#"):
                return index + 1
        return line

    suppressions = parse_suppressions(source)
    file_level = [s for s in suppressions if s.kind == "ignore-file"]
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        if suppression.kind == "ignore":
            by_line.setdefault(effective_line(suppression.line),
                               []).append(suppression)

    for registered in all_rules():
        if not config.rule_enabled(registered.rule_id):
            continue
        for line, col, message in registered.check(context):
            finding = Finding(
                rule_id=registered.rule_id, severity=registered.severity,
                path=path, line=line, col=col, message=message)
            silencers = [s for s in by_line.get(line, ())
                         if s.covers(registered.rule_id)]
            silencers.extend(s for s in file_level
                             if s.covers(registered.rule_id))
            if silencers:
                for suppression in silencers:
                    suppression.matched = True
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)

    for suppression in suppressions:
        if not suppression.matched:
            result.unused_suppressions.append(
                (path, suppression.line, suppression.rules))
    return result.finalize()


def _relative_path(file_path: Path) -> str:
    """The package-relative report path for ``file_path``.

    Everything after the last ``repro`` path component, or the file
    name when the file does not live under a ``repro`` package (e.g.
    fixture files in a temp directory).
    """
    parts = file_path.as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return parts[-1]


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and directories into a sorted ``*.py`` file list."""
    files = []
    for path in paths:
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py"))
        else:
            files.append(path)
    return sorted(set(files))


def check_paths(paths: Iterable[object],
                config: Optional[CheckConfig] = None) -> CheckResult:
    """Check every ``*.py`` file under ``paths`` (files or dirs)."""
    config = config if config is not None else CheckConfig()
    total = CheckResult()
    for file_path in discover_files([Path(str(p)) for p in paths]):
        source = file_path.read_text(encoding="utf-8")
        total.merge(check_source(source, _relative_path(file_path),
                                 config))
    return total.finalize()
