"""Interprocedural taint and blocking-call analysis.

Two fixed points over the :mod:`.graph` call graph:

* **Taint** -- seeds at known nondeterminism sources (wall-clock
  reads, ambient RNG, unordered ``set`` construction) and propagates
  through assignments, returns, and calls until a tainted value
  crosses into the deterministic sink packages
  (:attr:`~repro.analysis.engine.CheckConfig.flow_sinks`).  Each
  function gets a *returns-taint* summary carrying the full witness
  chain (``time.time() -> repro.obs.x.now_ms -> ...``), so NP-FLOW
  findings can print the exact laundering path.  Sources inside the
  sanctioned wall-clock files do not seed (those are the timing paths
  the contract explicitly allows).

* **Blocking** -- seeds at calls that stall a thread (``time.sleep``,
  synchronous file/socket I/O, ``subprocess``) and propagates through
  *synchronous* project functions only.  An ``async def`` whose body
  reaches a blocking summary stalls the whole event loop; NP-ASYNC
  reports it with the call chain down to the primitive.  Calls routed
  through ``run_in_executor`` escape the loop and cut the chain.

Both analyses are flow-insensitive within a function (names only gain
taint, so each local pass terminates) and run the global fixed point
in sorted-qualname order with first-writer-wins summaries, making the
whole thing byte-deterministic -- the same property the rules exist
to defend.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.engine import CheckConfig
from repro.analysis.graph import CallSite, FunctionInfo, ProjectGraph

#: External callables whose return value is the current wall-clock /
#: monotonic time.  ``datetime.now`` covers ``from datetime import
#: datetime`` usage; the dotted form covers ``import datetime``.
WALLCLOCK_SOURCES = frozenset((
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "date.today",
))

#: External callables whose return value is ambient (unseeded) RNG.
RNG_SOURCES = frozenset((
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
))
RNG_PREFIXES: Tuple[str, ...] = ("random.", "secrets.")

#: Builtins whose result iterates in hash order.
ORDER_SOURCES = frozenset(("set", "frozenset"))

#: External callables that block the calling thread, with the display
#: name used at the end of a witness chain.
BLOCKING_EXTERNAL: Dict[str, str] = {
    "time.sleep": "time.sleep()",
    "open": "open()",
    "io.open": "open()",
    "socket.create_connection": "socket.create_connection()",
    "socket.getaddrinfo": "socket.getaddrinfo()",
    "urllib.request.urlopen": "urllib.request.urlopen()",
    "os.replace": "os.replace()",
    "os.rename": "os.rename()",
    "os.fsync": "os.fsync()",
    "tempfile.NamedTemporaryFile": "tempfile.NamedTemporaryFile()",
    "tempfile.mkstemp": "tempfile.mkstemp()",
}
BLOCKING_EXTERNAL_PREFIXES: Tuple[str, ...] = ("subprocess.", "shutil.")

#: Method names that block regardless of receiver resolution:
#: pathlib I/O and synchronous socket primitives.  Kept narrow --
#: ``read``/``write`` would false-positive on asyncio streams.
BLOCKING_TAILS = frozenset((
    "read_text", "write_text", "read_bytes", "write_bytes",
    "recv", "recvfrom", "sendall", "accept",
))


@dataclass(frozen=True)
class Taint:
    """A nondeterministic value and how it got here.

    ``chain`` starts at the source primitive (``"time.time()"``) and
    appends each function the value passed through on its way up.
    """

    kind: str  #: ``wallclock`` | ``rng`` | ``order``
    chain: Tuple[str, ...]

    @property
    def kind_label(self) -> str:
        """Human label for the taint kind, used in finding messages."""
        return {"wallclock": "wall-clock", "rng": "ambient-RNG",
                "order": "unordered-iteration"}[self.kind]


@dataclass(frozen=True)
class BlockChain:
    """Why a (synchronous) function blocks: steps below it, ending at
    the primitive display name."""

    chain: Tuple[str, ...]


@dataclass(frozen=True)
class FlowHit:
    """One NP-FLOW boundary crossing, ready to report."""

    path: str
    line: int
    col: int
    kind: str
    chain: Tuple[str, ...]  #: full source -> sink display chain

    @property
    def kind_label(self) -> str:
        """Human label for the taint kind, used in finding messages."""
        return {"wallclock": "wall-clock", "rng": "ambient-RNG",
                "order": "unordered-iteration"}[self.kind]


@dataclass
class TaintAnalysis:
    """The result bundle handed to the project rules."""

    graph: ProjectGraph
    config: CheckConfig
    #: Function qualname -> taint carried by its return value.
    returns_taint: Dict[str, Taint] = field(default_factory=dict)
    #: Sync function qualname -> why calling it blocks the thread.
    blocking: Dict[str, BlockChain] = field(default_factory=dict)
    #: NP-FLOW boundary crossings, sorted by (path, line, col).
    flow_hits: List[FlowHit] = field(default_factory=list)

    def in_sink_scope(self, path: str) -> bool:
        """Whether ``path`` is NP-FLOW sink territory (mirrors
        :attr:`FileContext.in_flow_sink_scope`)."""
        if path in self.config.wallclock_allow:
            return False
        for prefix in self.config.flow_sinks:
            if prefix.endswith("/"):
                if path.startswith(prefix):
                    return True
            elif path == prefix:
                return True
        return False


def analyze(graph: ProjectGraph, config: CheckConfig) -> TaintAnalysis:
    """Run both fixed points and precompute the NP-FLOW hits."""
    analysis = TaintAnalysis(graph=graph, config=config)
    _taint_fixed_point(analysis)
    _blocking_fixed_point(analysis)
    _collect_flow_hits(analysis)
    return analysis


# -- taint --------------------------------------------------------------------


def _taint_fixed_point(analysis: TaintAnalysis) -> None:
    order = sorted(analysis.graph.functions)
    changed = True
    while changed:
        changed = False
        for qualname in order:
            if qualname in analysis.returns_taint:
                continue
            fn = analysis.graph.functions[qualname]
            if fn.node is None:
                continue
            taint, _env = _FunctionEval(analysis, fn).run()
            if taint is not None:
                analysis.returns_taint[qualname] = Taint(
                    kind=taint.kind,
                    chain=taint.chain + (qualname,))
                changed = True


class _FunctionEval:
    """Flow-insensitive taint evaluation of one function body."""

    def __init__(self, analysis: TaintAnalysis, fn: FunctionInfo):
        self.analysis = analysis
        self.fn = fn
        self.env: Dict[str, Taint] = {}
        self.returned: Optional[Taint] = None

    def run(self) -> Tuple[Optional[Taint], Dict[str, Taint]]:
        node = self.fn.node
        assert node is not None and \
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._seed_defaults(node)
        # Iterate the body until the local environment stops growing
        # (use-before-def across statements is rare but legal in
        # loops); names only gain taint, so this terminates.
        for _round in range(8):
            before = len(self.env), self.returned is not None
            for stmt in node.body:
                self._stmt(stmt)
            if (len(self.env), self.returned is not None) == before:
                break
        return self.returned, dict(self.env)

    # -- seeding -------------------------------------------------------------

    def _seed_defaults(self, node: ast.AST) -> None:
        """``def f(t=time.time())`` launders taint into a parameter."""
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        for arg, default in zip(positional[len(positional)
                                           - len(args.defaults):],
                                args.defaults):
            taint = self.expr(default)
            if taint is not None:
                self.env.setdefault(arg.arg, taint)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is None:
                continue
            taint = self.expr(kw_default)
            if taint is not None:
                self.env.setdefault(arg.arg, taint)

    def _seed_call(self, site: CallSite) -> Optional[Taint]:
        external = site.external
        if external is None:
            return None
        if external in WALLCLOCK_SOURCES:
            if self.fn.path in self.analysis.config.wallclock_allow:
                return None
            return Taint("wallclock", (external + "()",))
        if external in RNG_SOURCES or \
                external.startswith(RNG_PREFIXES):
            return Taint("rng", (external + "()",))
        if external in ORDER_SOURCES:
            return Taint("order", (external + "()",))
        return None

    # -- statements ----------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(node, ast.Return):
            if node.value is not None and self.returned is None:
                self.returned = self.expr(node.value)
            return
        if isinstance(node, ast.Assign):
            taint = self.expr(node.value)
            if taint is not None:
                for target in node.targets:
                    self._bind(target, taint)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                taint = self.expr(node.value)
                if taint is not None:
                    self._bind(node.target, taint)
            return
        if isinstance(node, ast.AugAssign):
            taint = self.expr(node.value)
            if taint is not None:
                self._bind(node.target, taint)
            return
        if isinstance(node, ast.For):
            taint = self.expr(node.iter)
            if taint is not None:
                self._bind(node.target, taint)
            for stmt in node.body + node.orelse:
                self._stmt(stmt)
            return
        if isinstance(node, ast.With) or \
                isinstance(node, ast.AsyncWith):
            for item in node.items:
                taint = self.expr(item.context_expr)
                if taint is not None and item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            for stmt in node.body:
                self._stmt(stmt)
            return
        if isinstance(node, (ast.If, ast.While)):
            for stmt in node.body + node.orelse:
                self._stmt(stmt)
            return
        if isinstance(node, ast.Try):
            for stmt in node.body + node.orelse + node.finalbody:
                self._stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._stmt(stmt)
            return
        if isinstance(node, ast.AsyncFor):
            taint = self.expr(node.iter)
            if taint is not None:
                self._bind(node.target, taint)
            for stmt in node.body + node.orelse:
                self._stmt(stmt)
            return
        # Everything else (Expr, Raise, Assert, ...) binds nothing.

    def _bind(self, target: ast.AST, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)
        # Attribute/Subscript targets: not tracked (field-insensitive).

    # -- expressions ---------------------------------------------------------

    def expr(self, node: ast.AST) -> Optional[Taint]:
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Await):
            return self.expr(node.value)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            return self.expr(node.value)
        if isinstance(node, ast.Lambda):
            return None
        children = [child for child in ast.iter_child_nodes(node)
                    if isinstance(child, ast.expr)]
        return self._join(self.expr(child) for child in children)

    def _call(self, node: ast.Call) -> Optional[Taint]:
        site = self.fn.site_index.get((node.lineno, node.col_offset))
        if site is None:
            return None
        if site.callee is not None:
            summary = self.analysis.returns_taint.get(site.callee)
            return summary
        seeded = self._seed_call(site)
        if seeded is not None:
            return seeded
        # ``sorted`` restores a deterministic order but cannot fix
        # nondeterministic *values*; other opaque calls forward the
        # join of their receiver and arguments.
        arg_taint = self._join(
            [self.expr(arg) for arg in node.args]
            + [self.expr(kw.value) for kw in node.keywords]
            + ([self.expr(node.func.value)]
               if isinstance(node.func, ast.Attribute) else []))
        if site.external == "sorted" or site.attr_tail == "sort":
            if arg_taint is not None and arg_taint.kind == "order":
                return None
            return arg_taint
        if site.external in ("len", "isinstance", "issubclass", "id",
                            "bool", "type", "repr", "print"):
            return None
        return arg_taint

    @staticmethod
    def _join(taints: Iterable[Optional[Taint]]) -> Optional[Taint]:
        """First value-kind taint if any, else first order taint."""
        first_order: Optional[Taint] = None
        for taint in taints:
            if taint is None:
                continue
            if taint.kind in ("wallclock", "rng"):
                return taint
            if first_order is None:
                first_order = taint
        return first_order


# -- blocking -----------------------------------------------------------------


def blocking_primitive(site: CallSite) -> Optional[str]:
    """The display name of the blocking primitive a call site hits
    directly, if any."""
    external = site.external
    if external is not None:
        if external in BLOCKING_EXTERNAL:
            return BLOCKING_EXTERNAL[external]
        if external.startswith(BLOCKING_EXTERNAL_PREFIXES):
            return external + "()"
    tail = site.attr_tail
    if tail is not None and tail in BLOCKING_TAILS:
        return f".{tail}()"
    if tail == "open":
        return "open()"
    return None


def _blocking_fixed_point(analysis: TaintAnalysis) -> None:
    """First-writer-wins blocking summaries over sync functions only.

    Async callees are excluded: an ``async def`` that blocks is
    reported at its own body, not at every ``await`` of it.
    """
    order = sorted(analysis.graph.functions)
    changed = True
    while changed:
        changed = False
        for qualname in order:
            if qualname in analysis.blocking:
                continue
            fn = analysis.graph.functions[qualname]
            if fn.is_async:
                continue
            summary = _blocking_summary(analysis, fn)
            if summary is not None:
                analysis.blocking[qualname] = summary
                changed = True


def _blocking_summary(analysis: TaintAnalysis,
                      fn: FunctionInfo) -> Optional[BlockChain]:
    for site in fn.calls:
        if site.in_executor:
            continue
        primitive = blocking_primitive(site)
        if primitive is not None:
            return BlockChain(chain=(primitive,))
        if site.callee is not None and site.callee in analysis.blocking:
            callee = analysis.graph.functions.get(site.callee)
            if callee is not None and callee.is_async:
                continue
            return BlockChain(
                chain=(site.callee,)
                + analysis.blocking[site.callee].chain)
    return None


# -- NP-FLOW boundary crossings ----------------------------------------------


def _collect_flow_hits(analysis: TaintAnalysis) -> None:
    hits: List[FlowHit] = []
    for qualname in sorted(analysis.graph.functions):
        fn = analysis.graph.functions[qualname]
        if fn.node is None:
            continue
        if analysis.in_sink_scope(fn.path):
            hits.extend(_hits_inside_sink(analysis, fn))
        else:
            hits.extend(_hits_into_sink(analysis, fn))
    seen = set()
    unique: List[FlowHit] = []
    for hit in sorted(hits, key=lambda h: (h.path, h.line, h.col,
                                           h.kind, h.chain)):
        key = (hit.path, hit.line, hit.col, hit.kind)
        if key not in seen:
            seen.add(key)
            unique.append(hit)
    analysis.flow_hits = unique


def _hits_inside_sink(analysis: TaintAnalysis,
                      fn: FunctionInfo) -> List[FlowHit]:
    """Sink code calling a tainted-return helper defined outside."""
    hits = []
    for site in fn.calls:
        if site.callee is None:
            continue
        taint = analysis.returns_taint.get(site.callee)
        if taint is None:
            continue
        callee = analysis.graph.functions.get(site.callee)
        if callee is None or analysis.in_sink_scope(callee.path):
            continue  # intra-sink flow: the origin gets the finding
        hits.append(FlowHit(
            path=fn.path, line=site.line, col=site.col,
            kind=taint.kind, chain=taint.chain + (fn.qualname,)))
    return hits


def _hits_into_sink(analysis: TaintAnalysis,
                    fn: FunctionInfo) -> List[FlowHit]:
    """Outside code passing a tainted argument into a sink function."""
    node = fn.node
    assert node is not None and \
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    evaluator = _FunctionEval(analysis, fn)
    evaluator.run()
    hits = []
    for call in ast.walk(node):
        if not isinstance(call, ast.Call):
            continue
        site = fn.site_index.get((call.lineno, call.col_offset))
        if site is None or site.callee is None:
            continue
        callee = analysis.graph.functions.get(site.callee)
        if callee is None or not analysis.in_sink_scope(callee.path):
            continue
        taint = evaluator._join(
            [evaluator.expr(arg) for arg in call.args]
            + [evaluator.expr(kw.value) for kw in call.keywords])
        if taint is None:
            continue
        hits.append(FlowHit(
            path=fn.path, line=call.lineno, col=call.col_offset,
            kind=taint.kind, chain=taint.chain + (site.callee,)))
    return hits
