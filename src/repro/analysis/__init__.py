"""AST-based invariant checking for the netpower codebase.

``repro.analysis`` is the static-analysis backstop behind the
repository's load-bearing conventions (docs/STATIC_ANALYSIS.md):

* **determinism** -- seeded RNGs only, no wall-clock reads outside the
  sanctioned timing paths, no hash-ordered set iteration (NP-DET);
  plus whole-program taint tracking that catches the same entropy
  laundered through helpers in other modules (NP-FLOW);
* **event-loop safety** -- no blocking calls, dropped tasks, or
  cross-task shared-state races in the serve layer (NP-ASYNC);
* **engine integrity** -- FleetState columns are only written by the
  engine's own patch/refresh kernels (NP-MUT);
* **unit discipline** -- every scale conversion goes through a named
  :mod:`repro.units` helper and unit-suffixed values never mix
  (NP-UNIT);
* **schema discipline** -- every persisted JSON payload is versioned
  (NP-SCHEMA), and the public surface stays documented and annotated
  (NP-API).

Dependency-free (stdlib ``ast``/``tokenize``).  Surfaced as
``netpower check`` and as this importable API::

    from repro.analysis import CheckConfig, check_paths, check_source

    result = check_paths(["src/"])
    assert result.clean, result.findings

The whole-program families parse the full tree; the incremental cache
(:func:`check_paths_cached`) keeps warm runs fast by keying per-file
results on content and dependency-closure hashes.
"""

from repro.analysis.cache import (CACHE_SCHEMA, DEFAULT_CACHE_FILE,
                                  check_paths_cached)
from repro.analysis.engine import (CheckConfig, CheckResult, FileContext,
                                   ProjectContext, Rule, all_project_rules,
                                   all_rules, check_paths, check_source,
                                   check_sources)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import (REPORT_SCHEMA, render_explain,
                                      render_json, render_rule_listing,
                                      render_text)
from repro.analysis.suppress import Suppression, parse_suppressions

__all__ = [
    "CACHE_SCHEMA",
    "CheckConfig",
    "CheckResult",
    "DEFAULT_CACHE_FILE",
    "FileContext",
    "Finding",
    "ProjectContext",
    "REPORT_SCHEMA",
    "Rule",
    "Severity",
    "Suppression",
    "all_project_rules",
    "all_rules",
    "check_paths",
    "check_paths_cached",
    "check_source",
    "check_sources",
    "parse_suppressions",
    "render_explain",
    "render_json",
    "render_rule_listing",
    "render_text",
]
