"""AST-based invariant checking for the netpower codebase.

``repro.analysis`` is the static-analysis backstop behind the
repository's three load-bearing conventions (docs/STATIC_ANALYSIS.md):

* **determinism** -- seeded RNGs only, no wall-clock reads outside the
  sanctioned timing paths, no hash-ordered set iteration (NP-DET);
* **unit discipline** -- every scale conversion goes through a named
  :mod:`repro.units` helper and unit-suffixed values never mix
  (NP-UNIT);
* **schema discipline** -- every persisted JSON payload is versioned
  (NP-SCHEMA), and the public surface stays documented and annotated
  (NP-API).

Dependency-free (stdlib ``ast``/``tokenize``).  Surfaced as
``netpower check`` and as this importable API::

    from repro.analysis import CheckConfig, check_paths, check_source

    result = check_paths(["src/"])
    assert result.ok, result.findings
"""

from repro.analysis.engine import (CheckConfig, CheckResult, FileContext,
                                   Rule, all_rules, check_paths,
                                   check_source)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import (REPORT_SCHEMA, render_json,
                                      render_rule_listing, render_text)
from repro.analysis.suppress import Suppression, parse_suppressions

__all__ = [
    "CheckConfig",
    "CheckResult",
    "FileContext",
    "Finding",
    "REPORT_SCHEMA",
    "Rule",
    "Severity",
    "Suppression",
    "all_rules",
    "check_paths",
    "check_source",
    "parse_suppressions",
    "render_json",
    "render_rule_listing",
    "render_text",
]
