"""NP-FLOW: interprocedural nondeterminism taint.

NP-DET catches a wall-clock or RNG call written *inside* the
deterministic packages.  It cannot see the same entropy laundered
through a helper in another module::

    # obs/clockutil.py (hypothetical)
    def now_ms():
        return time.time() * 1e3       # fine here: not det scope

    # core/model.py
    stamp = now_ms()                   # NP-DET is blind to this

NP-FLOW runs the :mod:`.dataflow` taint fixed point over the project
call graph and reports the exact call site where a tainted value
crosses into the sink packages, in either direction:

* sink code **calling** a tainted-return helper defined outside, or
* outside code **passing** a tainted argument into a sink function.

Each finding message carries the full witness chain from the source
primitive to the sink function, so the laundering path is readable
straight from the report.  Taint that both starts and stays inside
the sink packages is not re-reported here -- the seed itself is
already an NP-DET finding.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import (ProjectContext, ProjectRawFinding,
                                   project_rule)
from repro.analysis.findings import Severity

_EXAMPLE = ("wall-clock value reaches deterministic code: "
            "time.time() -> repro.obs.clockutil.now_ms -> "
            "repro.core.model.predict_trace")


@project_rule("NP-FLOW-001", Severity.ERROR,
              "nondeterministic value flows into deterministic code",
              example=_EXAMPLE)
def check_taint_flow(project: ProjectContext) -> \
        Iterator[ProjectRawFinding]:
    """Report every taint crossing into the flow-sink packages.

    Sources are wall-clock reads (outside the sanctioned timing
    files), ambient RNG (``random.*``, ``os.urandom``,
    ``uuid.uuid1/4``, ``secrets``), and hash-ordered ``set``
    construction; ``sorted(...)`` kills order taint but not value
    taint.  The chain in the message is the witness path the value
    took, one function per hop.
    """
    for hit in project.taint.flow_hits:
        yield (hit.path, hit.line, hit.col,
               f"{hit.kind_label} value reaches deterministic code: "
               f"{' -> '.join(hit.chain)}")
