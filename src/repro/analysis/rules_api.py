"""NP-API: public-surface hygiene rules.

The Zoo and the monitoring pipeline are meant to be imported by third
parties, so the public surface of ``repro.*`` carries docstrings and
complete signature annotations, and ``__all__`` never advertises a
name the module does not define.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Union

from repro.analysis.engine import FileContext, RawFinding, rule
from repro.analysis.findings import Severity

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _public_definitions(tree: ast.Module) -> Iterator[ast.AST]:
    """Public defs at module level and one class level down.

    Nested (function-local) definitions are implementation details and
    stay exempt, as do ``_private`` names and dunders.
    """
    def walk_body(body: List[ast.stmt]) -> Iterator[ast.AST]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                yield node
                if isinstance(node, ast.ClassDef):
                    yield from walk_body(node.body)

    yield from walk_body(tree.body)


@rule("NP-API-001", Severity.WARNING,
      "public definition without a docstring")
def check_docstrings(context: FileContext) -> Iterator[RawFinding]:
    """Flag public modules, classes, and functions with no docstring."""
    tree = context.tree
    if tree.body and ast.get_docstring(tree) is None:
        yield (1, 0, "module has no docstring")
    for node in _public_definitions(tree):
        if ast.get_docstring(node) is None:  # type: ignore[arg-type]
            kind = ("class" if isinstance(node, ast.ClassDef)
                    else "function")
            name = node.name  # type: ignore[union-attr]
            yield (node.lineno, node.col_offset,
                   f"public {kind} {name!r} has no docstring")


def _unannotated_args(node: _FunctionNode,
                      is_method: bool) -> List[str]:
    """Parameter names missing annotations (``self``/``cls`` exempt)."""
    arguments = node.args
    names = []
    positional = list(arguments.posonlyargs) + list(arguments.args)
    if is_method and positional and not any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in node.decorator_list):
        positional = positional[1:]
    for arg in positional + list(arguments.kwonlyargs):
        if arg.annotation is None:
            names.append(arg.arg)
    for arg in (arguments.vararg, arguments.kwarg):
        if arg is not None and arg.annotation is None:
            names.append(arg.arg)
    return names


@rule("NP-API-002", Severity.WARNING,
      "public function with an incomplete signature annotation")
def check_annotations(context: FileContext) -> Iterator[RawFinding]:
    """Flag public functions missing parameter or return annotations."""
    tree = context.tree

    def visit(body: List[ast.stmt], in_class: bool
              ) -> Iterator[RawFinding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    yield from visit(node.body, in_class=True)
                continue
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            missing = _unannotated_args(node, is_method=in_class)
            if missing:
                yield (node.lineno, node.col_offset,
                       f"public function {node.name!r} has "
                       f"unannotated parameter(s): "
                       f"{', '.join(missing)}")
            if node.returns is None:
                yield (node.lineno, node.col_offset,
                       f"public function {node.name!r} has no return "
                       f"annotation")

    yield from visit(tree.body, in_class=False)


def _bound_names(tree: ast.Module) -> Set[str]:
    """Every name bound at module top level (defs, imports, assigns)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


@rule("NP-API-003", Severity.ERROR,
      "__all__ advertises a name the module does not define")
def check_dunder_all(context: FileContext) -> Iterator[RawFinding]:
    """Flag ``__all__`` entries without a matching top-level binding."""
    tree = context.tree
    has_star_import = any(
        isinstance(node, ast.ImportFrom)
        and any(alias.name == "*" for alias in node.names)
        for node in tree.body)
    for node in tree.body:
        if not (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)):
            continue
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            continue
        exported = [element.value for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)]
        seen: Set[str] = set()
        for name in exported:
            if name in seen:
                yield (node.lineno, node.col_offset,
                       f"__all__ lists {name!r} more than once")
            seen.add(name)
        if has_star_import:
            continue  # bindings are unknowable without imports
        bound = _bound_names(tree)
        for name in exported:
            if name not in bound:
                yield (node.lineno, node.col_offset,
                       f"__all__ exports {name!r} but the module "
                       f"defines no such name")
