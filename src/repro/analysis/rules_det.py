"""NP-DET: determinism rules.

The simulation, sweep, and monitoring packages promise byte-identical
reports for a given seed, across engines, worker counts, shards, and
resumes (docs/SWEEP.md).  These rules catch the two ways that promise
silently rots: ambient entropy (wall clocks, process-global RNGs) and
iteration over hash-ordered sets.

They fire only inside the deterministic packages
(:attr:`~repro.analysis.engine.CheckConfig.det_packages`); wall-clock
reads are additionally sanctioned in the timing-path allowlist.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import dotted_name, is_set_expression
from repro.analysis.engine import FileContext, RawFinding, rule
from repro.analysis.findings import Severity

#: Fully-dotted callables that read the wall clock.
_WALLCLOCK = frozenset((
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
))

#: Trailing attributes that read the wall clock on datetime objects.
_DATETIME_READS = frozenset(("now", "utcnow", "today"))

#: numpy.random attributes that are *not* the legacy global-state API.
_NUMPY_SEEDED_OK = frozenset((
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "MT19937", "SFC64", "BitGenerator",
))


@rule("NP-DET-001", Severity.ERROR,
      "wall-clock read outside the sanctioned timing paths")
def check_wallclock(context: FileContext) -> Iterator[RawFinding]:
    """Flag ``time.time()``-style calls in deterministic code.

    Wall-clock values leaking into reports break worker-count and
    resume invariance; timing belongs in the bench side-channel
    (``bench.py``, ``sweep/runner.py``) or the tracer.
    """
    if not context.in_det_scope or context.wallclock_allowed:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if name in _WALLCLOCK:
            yield (node.lineno, node.col_offset,
                   f"wall-clock call {name}() in deterministic code; "
                   f"route timings through the bench side-channel or "
                   f"obs.tracing")
        elif parts[-1] in _DATETIME_READS and any(
                p in ("datetime", "date") for p in parts[:-1]):
            yield (node.lineno, node.col_offset,
                   f"wall-clock call {name}() in deterministic code; "
                   f"pass timestamps in explicitly")


@rule("NP-DET-002", Severity.ERROR,
      "ambient (unseeded, process-global) randomness")
def check_ambient_rng(context: FileContext) -> Iterator[RawFinding]:
    """Flag global-state RNGs in deterministic code.

    Only explicitly seeded generators (``numpy.random.default_rng``)
    keep runs reproducible; ``random.*`` module functions, the legacy
    ``numpy.random.*`` global API, ``os.urandom``, ``uuid.uuid1/4``,
    and ``secrets`` all draw from ambient process state.
    """
    if not context.in_det_scope:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        message = None
        if name.startswith("random.") or name.startswith("secrets."):
            message = (f"{name}() draws from process-global state; use "
                       f"an explicitly seeded numpy Generator")
        elif name == "os.urandom" or name in ("uuid.uuid1", "uuid.uuid4"):
            message = (f"{name}() is non-deterministic; derive ids from "
                       f"the run's seed instead")
        elif name.startswith(("np.random.", "numpy.random.")):
            attr = name.rsplit(".", 1)[1]
            if attr not in _NUMPY_SEEDED_OK:
                message = (f"legacy global-state API {name}(); use "
                           f"numpy.random.default_rng(seed) and pass "
                           f"the Generator down")
        if message is not None:
            yield node.lineno, node.col_offset, message


def _iteration_sites(tree: ast.Module) -> Iterator[ast.expr]:
    """Every expression iterated by a ``for`` or a comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter


@rule("NP-DET-003", Severity.ERROR,
      "iteration over a set in hash order")
def check_unsorted_set_iteration(
        context: FileContext) -> Iterator[RawFinding]:
    """Flag ``for x in some_set_expression`` without ``sorted()``.

    Set iteration order depends on insertion history and (for strings)
    ``PYTHONHASHSEED``; anything derived from it -- event lists, JSON
    payloads, report rows -- loses byte-identity.  Wrap the iterable
    in ``sorted(...)``.
    """
    if not context.in_det_scope:
        return
    for iterable in _iteration_sites(context.tree):
        target = iterable
        if isinstance(target, ast.Call) and \
                isinstance(target.func, ast.Name) and \
                target.func.id == "enumerate" and target.args:
            target = target.args[0]
        if is_set_expression(target):
            yield (target.lineno, target.col_offset,
                   "iterating a set in hash order; wrap the iterable "
                   "in sorted(...) so downstream output is "
                   "deterministic")
