"""NP-ASYNC: event-loop safety for the serve layer.

The query service (PR 9) runs every operator connection as an asyncio
task on one thread.  Three hazards follow, none visible to a per-file
rule:

* **NP-ASYNC-001** -- a blocking call (``time.sleep``, synchronous
  file/socket I/O, ``subprocess``, or a direct ``predict_trace``)
  reachable from an ``async def`` body stalls *every* connection, not
  just the caller.  The blocking summary propagates through sync
  helpers, so ``await``-free laundering through another module is
  still caught; ``run_in_executor`` arguments escape the loop and are
  exempt.
* **NP-ASYNC-002** -- a coroutine called but never awaited silently
  does nothing; a bare ``create_task(...)`` whose handle is dropped
  can be garbage-collected mid-flight.
* **NP-ASYNC-003** -- the same attribute mutated from ``async``
  bodies reachable from two different task entry points interleaves
  at await points.  Cross-task state belongs behind one owner (the
  batcher's drain is the sanctioned pattern and is exempt via
  :attr:`~repro.analysis.engine.CheckConfig.async_state_exempt`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.dataflow import blocking_primitive
from repro.analysis.engine import (ProjectContext, ProjectRawFinding,
                                   project_rule)
from repro.analysis.findings import Severity
from repro.analysis.graph import FunctionInfo, ProjectGraph

_SPAWN_TAILS = frozenset(("create_task", "ensure_future"))


@project_rule("NP-ASYNC-001", Severity.ERROR,
              "blocking call reachable from an async def body",
              example=("blocking call on the event loop: "
                       "repro.serve.app.NetpowerServer._load -> "
                       "repro.ioutil.atomic_write_text -> open()"))
def check_blocking_in_coroutine(project: ProjectContext) -> \
        Iterator[ProjectRawFinding]:
    """Flag event-loop stalls, with the chain down to the primitive.

    A finding is reported in the ``async def`` that makes the call --
    once per call site -- whether the primitive is direct or buried
    under synchronous helpers in other modules.
    """
    analysis = project.taint
    graph = analysis.graph
    predict_allow = project.config.async_predict_allow
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if not fn.is_async:
            continue
        for site in fn.calls:
            if site.in_executor:
                continue
            primitive = blocking_primitive(site)
            if primitive is not None:
                yield (fn.path, site.line, site.col,
                       f"blocking call on the event loop: "
                       f"{fn.qualname} -> {primitive}")
                continue
            if site.callee is None:
                if _is_predict(site.attr_tail or site.external) and \
                        fn.path not in predict_allow:
                    yield (fn.path, site.line, site.col,
                           f"direct predict_trace on the event loop "
                           f"in {fn.qualname}; submit through the "
                           f"PredictBatcher so requests coalesce")
                continue
            callee = graph.functions.get(site.callee)
            if callee is None or callee.is_async:
                continue
            if _is_predict(site.callee) and fn.path not in predict_allow:
                yield (fn.path, site.line, site.col,
                       f"direct predict_trace on the event loop in "
                       f"{fn.qualname}; submit through the "
                       f"PredictBatcher so requests coalesce")
                continue
            chain = analysis.blocking.get(site.callee)
            if chain is not None:
                steps = " -> ".join((fn.qualname, site.callee)
                                    + chain.chain)
                yield (fn.path, site.line, site.col,
                       f"blocking call on the event loop: {steps}")


def _is_predict(name: object) -> bool:
    return isinstance(name, str) and (
        name == "predict_trace" or name.endswith(".predict_trace"))


@project_rule("NP-ASYNC-002", Severity.ERROR,
              "coroutine never awaited or task handle dropped",
              example=("coroutine repro.serve.app.NetpowerServer._load "
                       "is called but never awaited"))
def check_unawaited(project: ProjectContext) -> \
        Iterator[ProjectRawFinding]:
    """Flag fire-and-forget coroutine mistakes.

    A bare ``coro()`` statement builds a coroutine object and drops
    it; a bare ``create_task(coro())`` runs, but the task holds no
    strong reference and the event loop may garbage-collect it
    mid-flight -- keep the handle (and cancel it on shutdown).
    """
    graph = project.taint.graph
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        for site in fn.calls:
            tail = site.attr_tail or \
                (site.external or "").rsplit(".", 1)[-1]
            if site.bare and tail in _SPAWN_TAILS:
                yield (fn.path, site.line, site.col,
                       f"task handle dropped in {fn.qualname}: keep "
                       f"the {tail}(...) result so the task cannot "
                       f"be garbage-collected mid-flight")
                continue
            if site.callee is None or not site.bare or site.awaited \
                    or site.spawned or site.in_executor:
                continue
            callee = graph.functions.get(site.callee)
            if callee is not None and callee.is_async:
                yield (fn.path, site.line, site.col,
                       f"coroutine {site.callee} is called but never "
                       f"awaited")


@project_rule("NP-ASYNC-003", Severity.WARNING,
              "shared state mutated from more than one task root",
              example=("attribute NetpowerServer._ready is written "
                       "from 2 task roots (repro.serve.app.serve, "
                       "repro.serve.app.NetpowerServer._load); route "
                       "the writes through one owner"))
def check_cross_task_state(project: ProjectContext) -> \
        Iterator[ProjectRawFinding]:
    """Flag attributes written by async code under multiple roots.

    Reachability runs over the call graph from each spawned task root
    (``create_task`` / ``asyncio.run`` / ``start_server`` callbacks);
    only writes inside ``async def`` bodies count, because a fully
    synchronous call never interleaves on a single-threaded loop.
    One finding per attribute, at its first write site.
    """
    graph = project.taint.graph
    exempt = project.config.async_state_exempt
    roots = sorted({root for root, _spawner in graph.task_roots})
    if len(roots) < 2:
        return
    reachable_from: Dict[str, Set[str]] = {
        root: _reachable(graph, root) for root in roots}
    # (owner class or module, attr) -> write sites + owning roots.
    writes: Dict[Tuple[str, str],
                 List[Tuple[str, int, int, str]]] = {}
    owners: Dict[Tuple[str, str], Set[str]] = {}
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if not fn.is_async or fn.node is None or fn.path in exempt:
            continue
        fn_roots = {root for root in roots
                    if qualname in reachable_from[root]}
        if not fn_roots:
            continue
        for owner, attr, line, col in _self_writes(fn):
            key = (owner, attr)
            writes.setdefault(key, []).append(
                (fn.path, line, col, qualname))
            owners.setdefault(key, set()).update(fn_roots)
    for key in sorted(writes):
        key_roots = sorted(owners[key])
        if len(key_roots) < 2:
            continue
        path, line, col, _writer = sorted(writes[key])[0]
        owner, attr = key
        yield (path, line, col,
               f"attribute {owner.rsplit('.', 1)[-1]}.{attr} is "
               f"written from {len(key_roots)} task roots "
               f"({', '.join(key_roots)}); route the writes through "
               f"one owner")


def _reachable(graph: ProjectGraph, root: str) -> Set[str]:
    seen: Set[str] = set()
    stack = [root]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        fn = graph.functions.get(current)
        if fn is None:
            continue
        for site in fn.calls:
            if site.callee is not None and not site.in_executor:
                stack.append(site.callee)
    return seen


def _self_writes(fn: FunctionInfo) -> \
        Iterator[Tuple[str, str, int, int]]:
    """``self.attr = ...`` / ``self.attr op= ...`` sites in a body."""
    owner = fn.cls or fn.module
    node = fn.node
    assert node is not None
    for stmt in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                yield (owner, target.attr, target.lineno,
                       target.col_offset)
