"""NP-SCHEMA: report payload versioning rules.

Every persisted JSON document this repository emits -- sweep reports,
bench reports, dashboards, metrics snapshots -- carries a ``schema``
version string so consumers (and the resume/merge code paths) can
refuse payloads they do not understand.  This rule makes the pattern
mandatory: a module may only call ``json.dump``/``json.dumps`` if it
also declares, at top level, a string constant whose name marks it as
the payload's schema version.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.engine import FileContext, RawFinding, rule
from repro.analysis.findings import Severity

#: A top-level ``NAME = "string"`` whose name matches this declares
#: the module's payload version (SCHEMA, FOO_SCHEMA, BAR_VERSION ...).
_SCHEMA_NAME = re.compile(r"(^|_)(SCHEMA|VERSION)(_|$)")


def declares_schema_version(tree: ast.Module) -> bool:
    """Whether the module binds a top-level schema-version string."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            targets = [node.target]
        else:
            continue
        if not isinstance(node.value, ast.Constant) or \
                not isinstance(node.value.value, str):
            continue
        if any(_SCHEMA_NAME.search(target.id) for target in targets):
            return True
    return False


@rule("NP-SCHEMA-001", Severity.ERROR,
      "json.dump in a module with no declared schema version")
def check_schema_versions(context: FileContext) -> Iterator[RawFinding]:
    """Flag ``json.dump(s)`` calls in schema-less modules.

    The fix is to declare (and emit) a version constant like
    ``SCHEMA = "repro.sweep/v1"``; transient payloads that genuinely
    need no version (diagnostics streams, embedded metadata) document
    that with a suppression reason instead.
    """
    if declares_schema_version(context.tree):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in ("json.dump", "json.dumps"):
            yield (node.lineno, node.col_offset,
                   f"{name}() in a module that declares no schema "
                   f"version string; add a top-level "
                   f'``SCHEMA = "..."`` constant and stamp the '
                   f"payload with it")
