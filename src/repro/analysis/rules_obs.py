"""NP-OBS: observability naming rules.

Span and profiler-region names are the join keys of the observability
stack: trace diffs, profile comparisons (``netpower bench --compare``),
and the ``netpower_profile_*`` metric labels all assume the same code
path produces the same name on every run.  A dynamically built name --
an f-string over a loop variable, a ``.format()`` call -- silently
forks those keys run to run and unbounds metric cardinality (the
profiler caps distinct kernels at
:data:`repro.obs.profile.MAX_KERNELS` and dumps the rest into an
overflow bucket).

``NP-OBS-001`` therefore requires the first argument of ``span(...)``
and ``region(...)`` calls to be a string literal.  The ``obs``
implementing modules themselves are exempt -- their public helpers
forward a ``name`` parameter by design
(:attr:`~repro.analysis.engine.CheckConfig.obs_forwarding_exempt`).
Call sites whose dynamic name is provably low-cardinality (e.g. built
from a closed argparse choice set) may carry a
``# netpower: ignore[NP-OBS-001]`` suppression with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.engine import FileContext, RawFinding, rule
from repro.analysis.findings import Severity

#: Trailing callable names that open a named span or profiled region.
_NAMED_SCOPES = frozenset(("span", "region"))


def _describe(node: ast.expr) -> str:
    """A short human label for the offending name expression."""
    if isinstance(node, ast.JoinedStr):
        return "an f-string"
    if isinstance(node, (ast.Name, ast.Attribute)):
        return "a variable"
    if isinstance(node, ast.Call):
        return "a call result"
    if isinstance(node, ast.BinOp):
        return "a computed string"
    return "a dynamic expression"


@rule("NP-OBS-001", Severity.ERROR,
      "span/region name is not a string literal")
def check_literal_scope_names(
        context: FileContext) -> Iterator[RawFinding]:
    """Flag ``span(...)``/``region(...)`` calls with dynamic names.

    Matches calls whose callable is ``span`` or ``region`` (bare or as
    the trailing attribute of a dotted path, e.g. ``tracing.span`` or
    ``profile.region``) and whose first positional argument is anything
    other than a plain string constant.  Zero-argument calls are
    ignored -- they are unrelated APIs such as ``re.Match.span()``.
    """
    if context.obs_forwarding_allowed:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        name = dotted_name(node.func)
        if name is None or name.rsplit(".", 1)[-1] not in _NAMED_SCOPES:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value,
                                                          str):
            continue
        if isinstance(first, ast.Starred):
            first = first.value
        callee = name.rsplit(".", 1)[-1]
        yield (first.lineno, first.col_offset,
               f"{callee}() name is {_describe(first)}; use a string "
               f"literal so trace and profile keys stay stable across "
               f"runs (suppress with a justification if the value is "
               f"provably low-cardinality)")
