"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
import math
from typing import Dict, Optional, Tuple

#: Identifier suffix -> (dimension, scale relative to the SI base unit).
#: Longest suffix wins, so ``_gbps`` is a rate before ``_s`` is a time.
UNIT_SUFFIXES: Dict[str, Tuple[str, float]] = {
    "kwh": ("energy", 3.6e6),
    "pj": ("energy", 1e-12),
    "nj": ("energy", 1e-9),
    "uj": ("energy", 1e-6),
    "mj": ("energy", 1e-3),
    "j": ("energy", 1.0),
    "kw": ("power", 1e3),
    "w": ("power", 1.0),
    "tbps": ("rate", 1e12),
    "gbps": ("rate", 1e9),
    "mbps": ("rate", 1e6),
    "kbps": ("rate", 1e3),
    "bps": ("rate", 1.0),
    "pps": ("packet_rate", 1.0),
    "ns": ("time", 1e-9),
    "us": ("time", 1e-6),
    "ms": ("time", 1e-3),
    "s": ("time", 1.0),
}

_SUFFIXES_BY_LENGTH = sorted(UNIT_SUFFIXES, key=len, reverse=True)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def identifier_of(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a Name or Attribute, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def unit_suffix(node: ast.AST) -> Optional[str]:
    """The unit suffix an identifier carries (``total_w`` -> ``"w"``)."""
    name = identifier_of(node)
    if name is None:
        return None
    lowered = name.lower()
    for suffix in _SUFFIXES_BY_LENGTH:
        if lowered.endswith("_" + suffix):
            return suffix
    return None


def is_scale_literal(node: ast.AST, min_exponent: int = 3) -> bool:
    """Whether ``node`` is a bare power-of-ten constant like ``1e9``.

    Matches float and int constants whose value is exactly ``10**k`` or
    ``10**-k`` with ``abs(k) >= min_exponent`` -- the raw conversion
    factors :mod:`repro.units` exists to name.
    """
    if not isinstance(node, ast.Constant):
        return False
    value = node.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    if value <= 0 or value != value or math.isinf(value):
        return False
    exponent = math.log10(value)
    rounded = round(exponent)
    if abs(exponent - rounded) > 1e-9 or abs(rounded) < min_exponent:
        return False
    # netpower: ignore[NP-UNIT-001] -- this *is* the definition
    # of a scale factor; the checker needs the raw power of ten.
    return value == 10.0 ** rounded


def is_set_expression(node: ast.AST) -> bool:
    """Whether ``node`` syntactically produces a ``set``.

    Recognises set displays and comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, set-method calls (``union`` etc.), and
    binary set algebra whose operands are themselves set expressions.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and \
                node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference"):
            return is_set_expression(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
        return (is_set_expression(node.left)
                or is_set_expression(node.right))
    return False
