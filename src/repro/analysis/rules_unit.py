"""NP-UNIT: physical-unit discipline rules.

The power model mixes pJ/bit, nJ/packet, watts, and Tbps (paper §4);
at fleet scale a silent pJ-vs-W mix-up corrupts every downstream
conclusion.  The library's contract (:mod:`repro.units`) is that all
internal computation happens in SI base units and every conversion
goes through a *named* helper.  These rules enforce the contract
syntactically:

* **NP-UNIT-001** -- bare power-of-ten scale factors (``* 1e9``,
  ``/ 1e-12``) outside :mod:`repro.units`;
* **NP-UNIT-002** -- additive arithmetic or ordering comparisons
  between identifiers whose unit suffixes disagree (``_w`` vs
  ``_gbps``, ``_gbps`` vs ``_bps``);
* **NP-UNIT-003** -- exact float equality on power/energy values.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.astutil import (UNIT_SUFFIXES, is_scale_literal,
                                    unit_suffix)
from repro.analysis.engine import FileContext, RawFinding, rule
from repro.analysis.findings import Severity


@rule("NP-UNIT-001", Severity.ERROR,
      "bare power-of-ten scale factor; use a repro.units helper")
def check_scale_literals(context: FileContext) -> Iterator[RawFinding]:
    """Flag ``x * 1e9``-style conversions outside ``repro.units``.

    Only multiplication/division operands count -- tolerances such as
    ``abs(a - b) < 1e-9`` and epsilon clamps like ``max(x, 1e-6)`` are
    comparisons or call arguments and stay legal.
    """
    if context.unit_literals_allowed:
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.Mult, ast.Div)):
            for operand in (node.left, node.right):
                if is_scale_literal(operand):
                    yield (operand.lineno, operand.col_offset,
                           f"bare scale factor "
                           f"{ast.unparse(operand)} in unit "
                           f"arithmetic; use a named repro.units "
                           f"conversion or constant")
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow) \
                and isinstance(node.left, ast.Constant) \
                and node.left.value == 10:
            yield (node.lineno, node.col_offset,
                   "10**n scale factor; use a named repro.units "
                   "conversion or constant")


def _described(suffix: str) -> str:
    """Human description of a suffix: ``"w" -> "_w (power)"``."""
    dimension, _ = UNIT_SUFFIXES[suffix]
    return f"_{suffix} ({dimension})"


def _operand_units(left: ast.expr, right: ast.expr
                   ) -> Optional[Tuple[str, str]]:
    """Both operands' unit suffixes, or ``None`` if either is bare."""
    left_suffix = unit_suffix(left)
    right_suffix = unit_suffix(right)
    if left_suffix is None or right_suffix is None:
        return None
    return left_suffix, right_suffix


@rule("NP-UNIT-002", Severity.ERROR,
      "arithmetic mixing identifiers with different unit suffixes")
def check_mixed_units(context: FileContext) -> Iterator[RawFinding]:
    """Flag ``+``/``-`` and ``<``-style comparisons across units.

    Additive arithmetic and ordering only make sense between operands
    of the same dimension *and* scale; ``power_w + energy_j`` or
    ``rate_gbps < rate_bps`` must route through a ``repro.units``
    conversion first.  Multiplication and division are exempt (they
    legitimately change dimension: W x s = J).
    """
    for node in ast.walk(context.tree):
        pairs = []
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.Add, ast.Sub)):
            pairs.append((node, node.left, node.right, "arithmetic"))
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 and \
                isinstance(node.ops[0], (ast.Lt, ast.LtE, ast.Gt,
                                         ast.GtE)):
            pairs.append((node, node.left, node.comparators[0],
                          "comparison"))
        for site, left, right, kind in pairs:
            units = _operand_units(left, right)
            if units is None:
                continue
            left_suffix, right_suffix = units
            if left_suffix != right_suffix:
                yield (site.lineno, site.col_offset,
                       f"{kind} mixes {_described(left_suffix)} with "
                       f"{_described(right_suffix)}; convert through "
                       f"repro.units first")


@rule("NP-UNIT-003", Severity.WARNING,
      "exact float equality on a power/energy value")
def check_float_equality(context: FileContext) -> Iterator[RawFinding]:
    """Flag ``==`` / ``!=`` where an operand is a power/energy value.

    Fitted watts and joules are floats from regressions and unit
    conversions; exact equality is fragile.  Compare with a tolerance
    (``math.isclose``) or, where exact-zero semantics really are
    intended (a sensor that never reported), suppress with a reason.
    """
    for node in ast.walk(context.tree):
        if not (isinstance(node, ast.Compare) and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.Eq, ast.NotEq))):
            continue
        for operand in (node.left, node.comparators[0]):
            suffix = unit_suffix(operand)
            if suffix is None:
                continue
            if UNIT_SUFFIXES[suffix][0] in ("power", "energy"):
                yield (node.lineno, node.col_offset,
                       f"exact float equality on {_described(suffix)} "
                       f"value; use a tolerance (math.isclose) "
                       f"instead")
                break
