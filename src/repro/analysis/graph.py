"""Module/symbol resolver and call graph for ``netpower check``.

The per-file rules see one AST at a time; the NP-FLOW / NP-ASYNC /
NP-MUT families need to know *who calls whom across modules* -- a
wall-clock read laundered through a helper function in another module
is invisible to any syntactic, per-file check.  This module builds
that picture from the parsed trees the engine already holds:

* a :class:`ModuleInfo` per checked file, with its import aliases
  resolved (``import numpy as np``, ``from repro.ioutil import
  atomic_write_text``, relative imports);
* a :class:`FunctionInfo` per function/method (plus a ``<module>``
  pseudo-function for module-level statements), each carrying its
  :class:`CallSite` list;
* best-effort *local type inference* (constructor assignments,
  parameter/attribute annotations) so ``state.static_w[...] = ...``
  can be traced back to a :class:`~repro.network.engine.FleetState`
  and ``self.batcher.submit(...)`` to the right method.

Resolution is deliberately conservative: a call that cannot be
resolved to a project function keeps its dotted text (for primitive
matching like ``time.sleep``) or its trailing attribute name, and the
analyses treat it as opaque.  Everything is built in sorted path
order, so graph construction -- like every other stage of the checker
-- is byte-deterministic.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.engine import FileContext

#: Callables that schedule a coroutine as an independent task.
_SPAWN_TAILS = frozenset(("create_task", "ensure_future"))
#: Callables whose function-reference arguments become task roots.
_SERVER_TAILS = frozenset(("start_server",))
#: Callables that hand their function argument to a worker thread --
#: the argument escapes the event loop entirely.
_EXECUTOR_TAILS = frozenset(("run_in_executor",))

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass
class CallSite:
    """One call expression inside a function body."""

    line: int
    col: int
    #: Qualified name of the resolved project function, if any.
    callee: Optional[str] = None
    #: Resolved dotted name when the target is outside the project
    #: (``time.sleep``, ``numpy.random.default_rng``, ``open``).
    external: Optional[str] = None
    #: Trailing attribute when the receiver is opaque
    #: (``writer.drain`` -> ``drain``).
    attr_tail: Optional[str] = None
    #: Whether the call is directly awaited.
    awaited: bool = False
    #: Whether the call happens inside ``run_in_executor`` arguments
    #: (i.e. off-loop, on a worker thread).
    in_executor: bool = False
    #: Whether the call is an argument of ``create_task`` and friends.
    spawned: bool = False
    #: Whether the call is a bare expression statement.
    bare: bool = False

    @property
    def display(self) -> str:
        """The best human-readable name for the call target."""
        if self.callee is not None:
            return self.callee
        if self.external is not None:
            return self.external
        if self.attr_tail is not None:
            return f"(?).{self.attr_tail}"
        return "(?)"


@dataclass
class FunctionInfo:
    """One function, method, or module body in the call graph."""

    qualname: str  #: e.g. ``repro.serve.app.NetpowerServer._load``
    module: str
    path: str
    is_async: bool
    #: Owning class qualname for methods, else None.
    cls: Optional[str] = None
    node: Optional[ast.AST] = None  #: None for ``<module>`` bodies
    calls: List[CallSite] = field(default_factory=list)
    #: ``(line, col)`` of each call expression -> its resolved site,
    #: so the taint propagator can re-walk the AST and look up what a
    #: given ``ast.Call`` resolved to.
    site_index: Dict[Tuple[int, int], CallSite] = \
        field(default_factory=dict)
    #: Local name -> project class qualname (inference results).
    local_types: Dict[str, str] = field(default_factory=dict)
    line: int = 0

    @property
    def short(self) -> str:
        """``module:function`` form used in finding messages."""
        prefix = self.module + "."
        name = self.qualname
        if name.startswith(prefix):
            name = name[len(prefix):]
        return f"{self.module}.{name}"


@dataclass
class ClassInfo:
    """One class: its methods and the inferred types of its attributes."""

    qualname: str
    module: str
    simple: str
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` -> project class qualname.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One checked file's namespace."""

    name: str  #: dotted module name, e.g. ``repro.serve.app``
    path: str
    tree: ast.Module
    #: Local alias -> module dotted name (``np`` -> ``numpy``).
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: Local alias -> dotted symbol (``sleep`` -> ``time.sleep``).
    symbol_aliases: Dict[str, str] = field(default_factory=dict)
    #: Top-level function name -> qualname.
    functions: Dict[str, str] = field(default_factory=dict)
    #: Top-level class name -> class qualname.
    classes: Dict[str, str] = field(default_factory=dict)
    #: Project modules this module imports (dependency closure input).
    project_imports: List[str] = field(default_factory=list)


def module_name_for(path: str) -> str:
    """The dotted module name for a package-relative path.

    ``serve/app.py`` -> ``repro.serve.app``; ``__init__.py`` files
    name their package.
    """
    parts = path[:-3].split("/") if path.endswith(".py") else \
        path.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + [p for p in parts if p])


class ProjectGraph:
    """The resolved project: modules, functions, classes, call edges."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.module_by_path: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Async functions spawned as independent tasks, with the
        #: spawning function: (root qualname, spawner qualname).
        self.task_roots: List[Tuple[str, str]] = []

    # -- queries used by the rule modules -----------------------------------

    def functions_in_path(self, path: str) -> List[FunctionInfo]:
        """Every function defined in one file, in source order."""
        return sorted((f for f in self.functions.values()
                       if f.path == path),
                      key=lambda f: (f.line, f.qualname))

    def resolve_project(self, dotted: str) -> Optional[str]:
        """Map a dotted name onto a project function qualname, if any."""
        if dotted in self.functions:
            return dotted
        # Longest module prefix + remainder (function or Class.method).
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module not in self.modules:
                continue
            remainder = ".".join(parts[split:])
            candidate = f"{module}.{remainder}"
            if candidate in self.functions:
                return candidate
            if candidate in self.classes:
                init = self.classes[candidate].methods.get("__init__")
                return init
            return None
        return None

    def resolve_class(self, dotted: str) -> Optional[str]:
        """Map a dotted name onto a project class qualname, if any."""
        if dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module in self.modules:
                candidate = f"{module}.{'.'.join(parts[split:])}"
                return candidate if candidate in self.classes else None
        return None

    def import_closure(self, path: str) -> List[str]:
        """Paths of every module transitively imported by ``path``.

        Restricted to checked modules; includes ``path`` itself.  This
        is the dependency set whose contents can change the outcome of
        a graph rule for ``path`` -- the cache's invalidation key.
        """
        module = self.module_by_path.get(path)
        if module is None:
            return [path]
        seen: Set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.modules.get(current)
            if info is None:
                continue
            stack.extend(info.project_imports)
        return sorted(self.modules[m].path for m in seen
                      if m in self.modules)


def build_graph(files: Mapping[str, FileContext]) -> ProjectGraph:
    """Build the whole-project graph from already-parsed files."""
    graph = ProjectGraph()
    for path in sorted(files):
        context = files[path]
        name = module_name_for(path)
        graph.modules[name] = ModuleInfo(name=name, path=path,
                                         tree=context.tree)
        graph.module_by_path[path] = name
    for name in sorted(graph.modules):
        _collect_namespace(graph, graph.modules[name])
    for name in sorted(graph.modules):
        _collect_bodies(graph, graph.modules[name])
    graph.task_roots.sort()
    return graph


# -- pass 1: imports, top-level defs, class attribute types -------------------


def _collect_namespace(graph: ProjectGraph, module: ModuleInfo) -> None:
    for node in module.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                module.import_aliases[local] = target
                if alias.name in graph.modules:
                    module.project_imports.append(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = _import_base(module.name, node)
            if base is None:
                continue
            if base in graph.modules:
                module.project_imports.append(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                dotted = f"{base}.{alias.name}" if base else alias.name
                if dotted in graph.modules:
                    module.import_aliases[local] = dotted
                    module.project_imports.append(dotted)
                else:
                    module.symbol_aliases[local] = dotted
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{module.name}.{node.name}"
            module.functions[node.name] = qual
            _register_function(graph, module, qual, node, cls=None)
        elif isinstance(node, ast.ClassDef):
            qual = f"{module.name}.{node.name}"
            module.classes[node.name] = qual
            info = ClassInfo(qualname=qual, module=module.name,
                             simple=node.name)
            graph.classes[qual] = info
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    method_qual = f"{qual}.{item.name}"
                    info.methods[item.name] = method_qual
                    _register_function(graph, module, method_qual, item,
                                       cls=qual)
    module.project_imports = sorted(set(module.project_imports))
    # The module body itself is a pseudo-function so module-level
    # statements (constant taint, spawn sites) participate.
    graph.functions[f"{module.name}.<module>"] = FunctionInfo(
        qualname=f"{module.name}.<module>", module=module.name,
        path=module.path, is_async=False, node=None, line=0)


def _import_base(module_name: str, node: ast.ImportFrom) -> Optional[str]:
    """The absolute module a ``from X import ...`` refers to."""
    if node.level == 0:
        return node.module or ""
    # Relative import: walk up from the importing module's package.
    parts = module_name.split(".")
    # A module's package is itself for __init__ (not modelled -- the
    # resolver maps paths to full module names), so drop one level for
    # the module component plus (level - 1) packages.
    base_parts = parts[:max(0, len(parts) - node.level)]
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts) if base_parts else None


def _register_function(graph: ProjectGraph, module: ModuleInfo,
                       qualname: str, node: ast.AST,
                       cls: Optional[str]) -> None:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    graph.functions[qualname] = FunctionInfo(
        qualname=qualname, module=module.name, path=module.path,
        is_async=isinstance(node, ast.AsyncFunctionDef), cls=cls,
        node=node, line=node.lineno)


# -- pass 2: bodies (type inference + call sites) -----------------------------


def _collect_bodies(graph: ProjectGraph, module: ModuleInfo) -> None:
    # Class attribute types first, so method bodies can use them.
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            info = graph.classes[module.classes[node.name]]
            _infer_class_attrs(graph, module, node, info)
    walker = _BodyWalker(graph, module)
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walker.walk_function(module.functions[node.name], node)
        elif isinstance(node, ast.ClassDef):
            class_qual = module.classes[node.name]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    walker.walk_function(
                        graph.classes[class_qual].methods[item.name],
                        item)
    walker.walk_module_body(f"{module.name}.<module>", module.tree)


def _annotation_class(graph: ProjectGraph, module: ModuleInfo,
                      annotation: Optional[ast.AST]) -> Optional[str]:
    """The project class named inside an annotation, if exactly one."""
    if annotation is None:
        return None
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return None
    found: List[str] = []
    for token in _IDENTIFIER.findall(text):
        resolved = _resolve_class_name(graph, module, token)
        if resolved is not None and resolved not in found:
            found.append(resolved)
    return found[0] if len(found) == 1 else None


def _resolve_class_name(graph: ProjectGraph, module: ModuleInfo,
                        name: str) -> Optional[str]:
    """A bare identifier as a project class, via local defs or imports."""
    if name in module.classes:
        return module.classes[name]
    dotted = module.symbol_aliases.get(name)
    if dotted is not None:
        return graph.resolve_class(dotted)
    return None


def _infer_class_attrs(graph: ProjectGraph, module: ModuleInfo,
                       node: ast.ClassDef, info: ClassInfo) -> None:
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and \
                isinstance(item.target, ast.Name):
            cls = _annotation_class(graph, module, item.annotation)
            if cls is not None:
                info.attr_types[item.target.id] = cls
    for item in ast.walk(node):
        if not isinstance(item, ast.Assign):
            continue
        cls = _constructed_class(graph, module, item.value)
        if cls is None:
            continue
        for target in item.targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                info.attr_types.setdefault(target.attr, cls)


def _constructed_class(graph: ProjectGraph, module: ModuleInfo,
                       value: ast.AST) -> Optional[str]:
    """The project class a ``ClassName(...)`` expression constructs."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        return _resolve_class_name(graph, module, func.id)
    if isinstance(func, ast.Attribute):
        dotted = _dotted(func)
        if dotted is None:
            return None
        full = _expand_alias(module, dotted)
        return graph.resolve_class(full) if full else None
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _expand_alias(module: ModuleInfo, dotted: str) -> Optional[str]:
    """Rewrite the root of a dotted name through the import tables."""
    root, _, rest = dotted.partition(".")
    if root in module.import_aliases:
        base = module.import_aliases[root]
        return f"{base}.{rest}" if rest else base
    if root in module.symbol_aliases:
        base = module.symbol_aliases[root]
        return f"{base}.{rest}" if rest else base
    return dotted


@dataclass
class _WalkState:
    """Flags carried down the recursive body walk."""

    awaited: bool = False
    in_executor: bool = False
    spawned: bool = False
    bare: bool = False


class _BodyWalker:
    """Second-pass visitor: call sites + local type inference."""

    def __init__(self, graph: ProjectGraph, module: ModuleInfo):
        self.graph = graph
        self.module = module
        self._nested: Dict[str, ast.AST] = {}
        self._current: FunctionInfo = \
            graph.functions[f"{module.name}.<module>"]

    # -- entry points --------------------------------------------------------

    def walk_function(self, qualname: str, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        info = self.graph.functions[qualname]
        self._infer_param_types(info, node)
        nested = self._nested_defs(node)
        self._nested = nested
        self._current = info
        # Default-argument expressions run at definition time in the
        # enclosing scope, but a taint seeded there launders into the
        # parameter -- walk them as part of this function.
        args = node.args
        for default in list(args.defaults) + \
                [d for d in args.kw_defaults if d is not None]:
            self._visit(default, _WalkState())
        for stmt in node.body:
            self._visit(stmt, _WalkState())
        # Nested defs get their own FunctionInfo and walk.  The walk
        # reassigns self._nested/_current, so iterate a snapshot.
        for child_name, child_node in list(nested.items()):
            child_qual = f"{qualname}.{child_name}"
            self.graph.functions[child_qual] = FunctionInfo(
                qualname=child_qual, module=self.module.name,
                path=self.module.path,
                is_async=isinstance(child_node, ast.AsyncFunctionDef),
                cls=info.cls, node=child_node, line=child_node.lineno)
            self.walk_function(child_qual, child_node)

    def walk_module_body(self, qualname: str, tree: ast.Module) -> None:
        info = self.graph.functions[qualname]
        self._nested = {}
        self._current = info
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            self._visit(stmt, _WalkState())

    # -- inference -----------------------------------------------------------

    def _infer_param_types(self, info: FunctionInfo,
                           node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            cls = _annotation_class(self.graph, self.module,
                                    arg.annotation)
            if cls is not None:
                info.local_types[arg.arg] = cls
        if info.cls is not None:
            info.local_types.setdefault("self", info.cls)

    @staticmethod
    def _nested_defs(node: ast.AST) -> Dict[str, ast.AST]:
        """Directly nested defs only -- grandchildren belong to them."""
        nested: Dict[str, ast.AST] = {}

        def scan(parent: ast.AST) -> None:
            for child in ast.iter_child_nodes(parent):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    nested.setdefault(child.name, child)
                elif not isinstance(child, ast.Lambda):
                    scan(child)

        scan(node)
        return nested

    def expr_type(self, node: ast.AST,
                  info: Optional[FunctionInfo] = None) -> Optional[str]:
        """The project class an expression evaluates to, if inferable."""
        info = info if info is not None else self._current
        if isinstance(node, ast.Name):
            return info.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self.expr_type(node.value, info)
            if owner is not None:
                owner_info = self.graph.classes.get(owner)
                if owner_info is not None:
                    return owner_info.attr_types.get(node.attr)
            return None
        if isinstance(node, ast.Call):
            return _constructed_class(self.graph, self.module, node)
        return None

    # -- traversal -----------------------------------------------------------

    def _visit(self, node: ast.AST, state: _WalkState) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # handled as a nested function
        if isinstance(node, ast.Expr):
            inner = _WalkState(awaited=state.awaited,
                               in_executor=state.in_executor,
                               spawned=state.spawned, bare=True)
            self._visit(node.value, inner)
            return
        if isinstance(node, ast.Await):
            inner = _WalkState(awaited=True,
                               in_executor=state.in_executor,
                               spawned=state.spawned, bare=False)
            self._visit(node.value, inner)
            return
        if isinstance(node, ast.Assign):
            self._infer_assign(node)
        if isinstance(node, ast.Call):
            self._visit_call(node, state)
            return
        for child in ast.iter_child_nodes(node):
            child_state = _WalkState(in_executor=state.in_executor,
                                     spawned=state.spawned)
            self._visit(child, child_state)

    def _infer_assign(self, node: ast.Assign) -> None:
        cls = self.expr_type(node.value)
        if cls is None:
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._current.local_types[target.id] = cls

    def _visit_call(self, node: ast.Call, state: _WalkState) -> None:
        site = self._resolve_call(node, state)
        self._current.calls.append(site)
        self._current.site_index[(node.lineno, node.col_offset)] = site
        tail = site.attr_tail or (site.external or "").rsplit(".", 1)[-1]
        executor_args = tail in _EXECUTOR_TAILS
        spawning = tail in _SPAWN_TAILS or site.external == "asyncio.run"
        server_args = tail in _SERVER_TAILS
        # The function expression itself (e.g. the receiver chain).
        self._visit(node.func, _WalkState(in_executor=state.in_executor))
        for index, arg in enumerate(_all_args(node)):
            child = _WalkState(
                in_executor=state.in_executor or
                (executor_args and index >= 1),
                spawned=spawning)
            if spawning:
                self._note_spawn(arg)
            if server_args or (executor_args and index >= 1):
                self._note_reference(arg, in_executor=executor_args,
                                     as_root=server_args)
            if isinstance(arg, ast.Lambda):
                for stmt in ast.iter_child_nodes(arg):
                    self._visit(stmt, child)
            else:
                self._visit(arg, child)

    def _note_spawn(self, arg: ast.AST) -> None:
        """Register ``create_task(coro())`` arguments as task roots."""
        if not isinstance(arg, ast.Call):
            return
        resolved = self._resolve_call(arg, _WalkState())
        if resolved.callee is not None:
            callee = self.graph.functions.get(resolved.callee)
            if callee is not None and callee.is_async:
                self.graph.task_roots.append(
                    (resolved.callee, self._current.qualname))

    def _note_reference(self, arg: ast.AST, in_executor: bool,
                        as_root: bool) -> None:
        """Register bare function references passed as callbacks."""
        if not isinstance(arg, (ast.Name, ast.Attribute)):
            return
        callee = self._resolve_target(arg)
        if callee is None:
            return
        if as_root:
            self.graph.task_roots.append(
                (callee, self._current.qualname))
        if in_executor:
            self._current.calls.append(CallSite(
                line=arg.lineno, col=arg.col_offset, callee=callee,
                in_executor=True))

    # -- call target resolution ----------------------------------------------

    def _resolve_call(self, node: ast.Call,
                      state: _WalkState) -> CallSite:
        site = CallSite(line=node.lineno, col=node.col_offset,
                        awaited=state.awaited,
                        in_executor=state.in_executor,
                        spawned=state.spawned, bare=state.bare)
        target = self._resolve_target(node.func)
        if target is not None:
            site.callee = target
            return site
        func = node.func
        if isinstance(func, ast.Name):
            dotted = self.module.symbol_aliases.get(func.id, func.id)
            site.external = dotted
            return site
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted is not None:
                expanded = _expand_alias(self.module, dotted)
                root = (expanded or dotted).split(".", 1)[0]
                known_root = isinstance(func.value, ast.Name) and (
                    func.value.id in self.module.import_aliases
                    or func.value.id in self.module.symbol_aliases)
                multi = isinstance(func.value, (ast.Name, ast.Attribute))
                if expanded and (known_root or (
                        multi and root not in ("self", "cls"))):
                    site.external = expanded
                    return site
            site.attr_tail = func.attr
            return site
        site.attr_tail = getattr(func, "attr", None)
        return site

    def _resolve_target(self, func: ast.AST) -> Optional[str]:
        """A Name/Attribute expression as a project function qualname."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self._nested:
                return f"{self._current.qualname}.{name}"
            if name in self.module.functions:
                return self.module.functions[name]
            if name in self.module.classes:
                cls = self.graph.classes[self.module.classes[name]]
                return cls.methods.get("__init__",
                                       cls.qualname + ".__init__")
            dotted = self.module.symbol_aliases.get(name)
            if dotted is not None:
                resolved = self.graph.resolve_project(dotted)
                if resolved is not None:
                    return resolved
                as_class = self.graph.resolve_class(dotted)
                if as_class is not None:
                    cls = self.graph.classes[as_class]
                    return cls.methods.get(
                        "__init__", cls.qualname + ".__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        # self.method() / self.attr.method() / local.method()
        receiver_type = self.expr_type(func.value)
        if receiver_type is not None:
            cls_info = self.graph.classes.get(receiver_type)
            if cls_info is not None and func.attr in cls_info.methods:
                return cls_info.methods[func.attr]
            return None
        dotted = _dotted(func)
        if dotted is None:
            return None
        expanded = _expand_alias(self.module, dotted)
        if expanded is None:
            return None
        if dotted != expanded or dotted.split(".")[0] in \
                self.module.classes:
            # ClassName.method(...) on a local or imported class.
            head = dotted.split(".")[0]
            if head in self.module.classes and len(
                    dotted.split(".")) == 2:
                cls_info = self.graph.classes[self.module.classes[head]]
                return cls_info.methods.get(dotted.split(".")[1])
            return self.graph.resolve_project(expanded)
        return self.graph.resolve_project(expanded)


def _all_args(node: ast.Call) -> List[ast.AST]:
    """Positional then keyword argument expressions, in source order."""
    out: List[ast.AST] = list(node.args)
    out.extend(kw.value for kw in node.keywords)
    return out
