"""Incremental result cache for ``netpower check``.

Whole-program analysis made the checker slower than a linter: the
taint fixed point wants every file parsed and resolved.  This module
keeps warm runs fast by caching, per file:

* the BLAKE2b hash of its content;
* its **dependency closure** (the checked files it transitively
  imports, from :meth:`~repro.analysis.graph.ProjectGraph
  .import_closure`) and a hash over the closure's content hashes --
  the set of inputs that can change a *graph* rule's outcome for this
  file;
* its raw per-file findings (reusable whenever the content hash
  matches, regardless of the rest of the tree);
* its final post-suppression result (findings, suppressed, unused and
  unjustified suppressions).

A warm run validates every entry -- content hash, closure hash, plus
a whole-run key over the rule-set version, config fingerprint, and
the checked file *set* -- and, when everything holds, assembles the
result without parsing a single file.  Any miss falls back to a full
parse (the graph needs all ASTs anyway), reusing per-file findings
for unchanged files and re-running the project rules once.

The cache file is JSON with sorted keys, written only when its bytes
would change, so it is byte-stable across identical runs; it lives
next to the working directory and is ``.gitignore``\\ d.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.engine import (CheckConfig, CheckResult, FileContext,
                                   ProjectContext, apply_suppressions,
                                   parse_file, read_sources,
                                   run_file_rules, run_project_rules,
                                   ruleset_version)
from repro.analysis.findings import Finding, Severity

#: Cache payload schema; bump on any layout change.
CACHE_SCHEMA = "repro.analysis.cache/v1"

#: Default cache file, relative to the invocation directory.
DEFAULT_CACHE_FILE = ".netpower-check-cache.json"


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"),
                           digest_size=16).hexdigest()


def _closure_digest(closure: Iterable[str],
                    hashes: Dict[str, str]) -> Optional[str]:
    """Hash of the closure's current content hashes.

    ``None`` when a closure member is not part of the checked set --
    the entry cannot be validated and must be recomputed.
    """
    parts = []
    for path in sorted(closure):
        if path not in hashes:
            return None
        parts.append(f"{path}:{hashes[path]}")
    return _digest("\n".join(parts))


def _finding_to_dict(finding: Finding) -> Dict[str, object]:
    return finding.to_dict()


def _finding_from_dict(row: Dict[str, object]) -> Finding:
    return Finding(rule_id=str(row["rule"]),
                   severity=Severity(str(row["severity"])),
                   path=str(row["path"]), line=int(row["line"]),  # type: ignore[call-overload]
                   col=int(row["col"]),  # type: ignore[call-overload]
                   message=str(row["message"]))


def _result_to_dict(result: CheckResult) -> Dict[str, object]:
    return {
        "findings": [_finding_to_dict(f) for f in result.findings],
        "suppressed": [_finding_to_dict(f) for f in result.suppressed],
        "unused": [list(row[:2]) + [list(row[2])]
                   for row in result.unused_suppressions],
        "unjustified": [list(row[:2]) + [list(row[2])]
                        for row in result.unjustified_suppressions],
    }


def _result_from_dict(path: str,
                      row: Dict[str, object]) -> CheckResult:
    def rows(key: str) -> List[Tuple[str, int, Tuple[str, ...]]]:
        out = []
        for entry in row.get(key, []):  # type: ignore[union-attr]
            out.append((str(entry[0]), int(entry[1]),
                        tuple(str(r) for r in entry[2])))
        return out

    return CheckResult(
        findings=[_finding_from_dict(f)  # type: ignore[arg-type]
                  for f in row.get("findings", [])],
        suppressed=[_finding_from_dict(f)  # type: ignore[arg-type]
                    for f in row.get("suppressed", [])],
        unused_suppressions=rows("unused"),
        unjustified_suppressions=rows("unjustified"),
        paths=[path]).finalize()


def _run_key(config: CheckConfig, paths: Iterable[str]) -> str:
    """One hash covering everything that invalidates the whole cache."""
    return _digest(ruleset_version() + "\x1f" + config.fingerprint()
                   + "\x1f" + "\n".join(sorted(paths)))


def _load_cache(cache_path: Path) -> Optional[Dict[str, object]]:
    try:
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or \
            payload.get("schema") != CACHE_SCHEMA:
        return None
    return payload


def _assemble(sources: Dict[str, str],
              finals: Dict[str, CheckResult]) -> CheckResult:
    total = CheckResult()
    for path in sorted(sources):
        total.merge(finals[path])
    return total.finalize()


def check_paths_cached(paths: Iterable[object],
                       config: Optional[CheckConfig] = None,
                       cache_file: Optional[object] = None,
                       ) -> Tuple[CheckResult, bool]:
    """Check files with the incremental cache.

    Returns ``(result, warm)`` where ``warm`` is True when every
    entry validated and no rule ran.  The result is identical -- byte
    for byte once rendered -- to :func:`~repro.analysis.engine
    .check_paths` on the same tree.
    """
    config = config if config is not None else CheckConfig()
    cache_path = Path(str(cache_file)) if cache_file is not None \
        else Path(DEFAULT_CACHE_FILE)
    sources = read_sources(paths)
    hashes = {path: _digest(text) for path, text in sources.items()}
    run_key = _run_key(config, sources)

    payload = _load_cache(cache_path)
    entries: Dict[str, Dict[str, object]] = {}
    entries_reusable = False
    if payload is not None:
        raw_entries = payload.get("files")
        if isinstance(raw_entries, dict):
            entries = raw_entries
            # A ruleset/config change poisons stored findings; a mere
            # file-set change only poisons the graph-dependent parts.
            entries_reusable = payload.get("ruleset") == \
                _digest(ruleset_version() + "\x1f" + config.fingerprint())

    if entries_reusable and payload is not None and \
            payload.get("run_key") == run_key:
        finals = _validate_all(sources, hashes, entries)
        if finals is not None:
            return _assemble(sources, finals), True

    result, new_payload = _full_run(sources, hashes, config, run_key,
                                    entries if entries_reusable else {})
    _write_cache(cache_path, new_payload)
    return result, False


def _validate_all(sources: Dict[str, str], hashes: Dict[str, str],
                  entries: Dict[str, Dict[str, object]],
                  ) -> Optional[Dict[str, CheckResult]]:
    """Per-file results from the cache iff *every* entry validates."""
    finals: Dict[str, CheckResult] = {}
    for path in sources:
        entry = entries.get(path)
        if not isinstance(entry, dict):
            return None
        if entry.get("hash") != hashes[path]:
            return None
        closure = entry.get("closure")
        if not isinstance(closure, list):
            return None
        current = _closure_digest([str(p) for p in closure], hashes)
        if current is None or current != entry.get("closure_hash"):
            return None
        final = entry.get("final")
        if not isinstance(final, dict):
            return None
        finals[path] = _result_from_dict(path, final)
    return finals


def _full_run(sources: Dict[str, str], hashes: Dict[str, str],
              config: CheckConfig, run_key: str,
              old_entries: Dict[str, Dict[str, object]],
              ) -> Tuple[CheckResult, Dict[str, object]]:
    """Parse everything; reuse per-file findings where hashes match."""
    contexts: Dict[str, FileContext] = {}
    local: Dict[str, List[Finding]] = {}
    parse_failures: Dict[str, Finding] = {}
    for path in sorted(sources):
        context, parse_finding = parse_file(sources[path], path, config)
        if context is None:
            assert parse_finding is not None
            parse_failures[path] = parse_finding
            continue
        contexts[path] = context
        old = old_entries.get(path)
        if isinstance(old, dict) and old.get("hash") == hashes[path] \
                and isinstance(old.get("local"), list):
            local[path] = [
                _finding_from_dict(row)  # type: ignore[arg-type]
                for row in old["local"]]  # type: ignore[index]
        else:
            local[path] = run_file_rules(context)

    project_findings: Dict[str, List[Finding]] = \
        {path: [] for path in contexts}
    closures: Dict[str, List[str]] = {path: [path] for path in sources}
    if contexts:
        project = ProjectContext(files=contexts, config=config)
        project_findings = run_project_rules(project)
        for path in contexts:
            closures[path] = project.graph.import_closure(path)

    finals: Dict[str, CheckResult] = {}
    new_entries: Dict[str, Dict[str, object]] = {}
    for path in sorted(sources):
        if path in parse_failures:
            finals[path] = CheckResult(
                paths=[path],
                findings=[parse_failures[path]]).finalize()
            raw: List[Finding] = []
        else:
            raw = sorted(local[path] + project_findings.get(path, []),
                         key=lambda f: f.sort_key)
            finals[path] = apply_suppressions(path, sources[path], raw,
                                              config)
        closure_hash = _closure_digest(closures[path], hashes)
        new_entries[path] = {
            "hash": hashes[path],
            "closure": sorted(closures[path]),
            "closure_hash": closure_hash or "",
            "local": [_finding_to_dict(f)
                      for f in local.get(path, [])],
            "final": _result_to_dict(finals[path]),
        }

    payload: Dict[str, object] = {
        "schema": CACHE_SCHEMA,
        "ruleset": _digest(ruleset_version() + "\x1f"
                           + config.fingerprint()),
        "run_key": run_key,
        "files": new_entries,
    }
    return _assemble(sources, finals), payload


def _write_cache(cache_path: Path,
                 payload: Dict[str, object]) -> None:
    """Write the cache, byte-stable, only when its content changed."""
    text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
    try:
        if cache_path.exists() and \
                cache_path.read_text(encoding="utf-8") == text:
            return
        cache_path.write_text(text, encoding="utf-8")
    except OSError:
        pass  # a read-only checkout still gets correct (cold) results
