"""Finding and severity types for the ``netpower check`` analyser.

A :class:`Finding` is one rule violation at one source location.  The
engine guarantees stable ordering -- findings sort by ``(path, line,
col, rule_id)`` -- so reports are byte-identical across runs and
machines, matching the determinism discipline the analyser enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Severity(enum.Enum):
    """How serious a finding is.

    Severity does not affect the exit code -- any unsuppressed finding
    fails the check -- but reporters surface it so humans can triage.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank: lower is more severe (for summary ordering)."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable report order: by location, then rule id."""
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict:
        """JSON-able representation (the ``--format json`` row)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The human-readable one-line form."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.severity.value}] {self.message}")
