"""Suppression comments for ``netpower check``.

Two forms, both carrying an optional ``--``-separated justification
(the self-check test expects every suppression in this repository to
have one):

* ``# netpower: ignore[NP-DET-001] -- why this is sound`` suppresses
  the listed rules on one line: the comment's own line when it trails
  code, or -- when the comment stands on a line of its own -- the next
  code line below it (so a multi-line justification block can sit
  above the statement it exempts);
* ``# netpower: ignore-file[NP-API-001] -- why`` on a line of its own
  suppresses the listed rules for the whole file.

A rule token may be a full rule id (``NP-DET-001``), a family prefix
(``NP-DET``, suppressing every rule in the family), or ``*``.
Suppressions that never match a finding are reported by the engine so
stale exemptions cannot accumulate silently.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

_PATTERN = re.compile(
    r"#\s*netpower:\s*(?P<kind>ignore-file|ignore)"
    r"\[(?P<rules>[A-Za-z0-9*,\-\s]+)\]"
    r"(?:\s*--\s*(?P<reason>.*))?")


@dataclass
class Suppression:
    """One parsed suppression comment."""

    kind: str  # "ignore" (line) or "ignore-file"
    rules: Tuple[str, ...]
    line: int
    reason: str = ""
    #: Set by the engine when a finding was actually suppressed.
    matched: bool = field(default=False, compare=False)

    def covers(self, rule_id: str) -> bool:
        """Whether this suppression applies to ``rule_id``."""
        for token in self.rules:
            if token == "*" or token == rule_id:
                return True
            if rule_id.startswith(token + "-"):
                return True
        return False


def _comments(source: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line, text)`` for every comment token in ``source``."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable tail; the parser rule reports the real problem.
        return


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every suppression comment from one file's source."""
    suppressions: List[Suppression] = []
    for line, text in _comments(source):
        match = _PATTERN.search(text)
        if match is None:
            continue
        rules = tuple(sorted({token.strip()
                              for token in match.group("rules").split(",")
                              if token.strip()}))
        if not rules:
            continue
        suppressions.append(Suppression(
            kind=match.group("kind"), rules=rules, line=line,
            reason=(match.group("reason") or "").strip()))
    return suppressions
