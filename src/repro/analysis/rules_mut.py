"""NP-MUT: FleetState column writes outside the engine kernels.

The columnar engine's bitwise-equivalence contract (PR 6) holds
because every mutation of a :class:`~repro.network.engine.FleetState`
column funnels through ``patch_routers``/``refresh``: the dirty-host
bookkeeping, cache refresh, and prefix sums all assume they are the
only writers.  A stray ``state.static_w[i] = ...`` from the serve or
telemetry layer silently desynchronises the cached sums and the
object-graph twin, and nothing crashes -- the reports just stop being
bit-equal.

This rule uses the graph's local type inference (annotations plus
constructor assignments) to find writes whose receiver is a
``FleetState``, and flags any outside the allowed engine modules
(:attr:`~repro.analysis.engine.CheckConfig.mut_allow`).  Reads are
fine everywhere; so is rebinding a plain local that happens to hold a
state.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.engine import (ProjectContext, ProjectRawFinding,
                                   project_rule)
from repro.analysis.findings import Severity
from repro.analysis.graph import FunctionInfo, ProjectGraph

_STATE_CLASS = "FleetState"


@project_rule("NP-MUT-001", Severity.ERROR,
              "FleetState column written outside the engine kernels",
              example=("FleetState column 'static_w' written in "
                       "repro.serve.state.FleetService.whatif; column "
                       "mutations must go through patch_routers/"
                       "refresh in network/engine.py"))
def check_state_writes(project: ProjectContext) -> \
        Iterator[ProjectRawFinding]:
    """Flag column stores on ``FleetState`` receivers.

    Both forms count: ``state.col[idx] = v`` (an in-place element
    store) and ``state.col = arr`` (rebinding the column array).
    Methods of ``FleetState`` itself and the files in ``mut_allow``
    are the sanctioned writers.
    """
    graph = project.taint.graph
    allow = project.config.mut_allow
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.node is None or fn.path in allow:
            continue
        if fn.cls is not None and \
                fn.cls.rsplit(".", 1)[-1] == _STATE_CLASS:
            continue
        for column, line, col in _column_writes(graph, fn):
            yield (fn.path, line, col,
                   f"FleetState column '{column}' written in "
                   f"{fn.qualname}; column mutations must go through "
                   f"patch_routers/refresh in network/engine.py")


def _column_writes(graph: ProjectGraph, fn: FunctionInfo) -> \
        Iterator[Tuple[str, int, int]]:
    node = fn.node
    assert node is not None
    for stmt in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            hit = _state_column(graph, fn, target)
            if hit is not None:
                yield hit


def _state_column(graph: ProjectGraph, fn: FunctionInfo,
                  target: ast.expr) -> Optional[Tuple[str, int, int]]:
    """``(column, line, col)`` when a store target hits a FleetState."""
    # state.col[...] = v  -- unwrap the subscript to the attribute.
    if isinstance(target, ast.Subscript):
        target = target.value  # type: ignore[assignment]
    if not isinstance(target, ast.Attribute):
        return None
    receiver = _expr_class(graph, fn, target.value)
    if receiver is None or \
            receiver.rsplit(".", 1)[-1] != _STATE_CLASS:
        return None
    return target.attr, target.lineno, target.col_offset


def _expr_class(graph: ProjectGraph, fn: FunctionInfo,
                node: ast.expr) -> Optional[str]:
    """The project class an expression holds, via local inference."""
    if isinstance(node, ast.Name):
        return fn.local_types.get(node.id)
    if isinstance(node, ast.Attribute):
        owner = _expr_class(graph, fn, node.value)
        if owner is not None:
            info = graph.classes.get(owner)
            if info is not None:
                return info.attr_types.get(node.attr)
    return None
