"""Reporters for ``netpower check``: human-readable text and JSON.

Both formats are byte-stable: findings arrive pre-sorted from the
engine and the JSON document is dumped with sorted keys, so a clean
tree produces an identical report on every machine -- the same
discipline the analyser enforces on the rest of the codebase.
"""

from __future__ import annotations

import inspect
import json
from typing import List, Optional

from repro.analysis.engine import (CheckResult, all_project_rules,
                                   all_rules, find_rule)

#: Version stamp for the ``--format json`` report document.  v2 adds
#: the ``unjustified_suppressions`` block (suppressions whose
#: ``-- reason`` text is empty) and counts project-rule families.
REPORT_SCHEMA = "repro.analysis/v2"


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """The human-readable report: one line per finding + a summary."""
    lines: List[str] = [finding.render() for finding in result.findings]
    if verbose:
        lines.extend(f"{finding.render()} (suppressed)"
                     for finding in result.suppressed)
    for path, line, rules in result.unused_suppressions:
        lines.append(f"{path}:{line}:0: NP-SUPPRESS [warning] "
                     f"suppression {list(rules)} matched no finding; "
                     f"remove it")
    for path, line, rules in result.unjustified_suppressions:
        lines.append(f"{path}:{line}:0: NP-SUPPRESS [warning] "
                     f"suppression {list(rules)} has no '-- reason' "
                     f"justification; say why it is safe")
    lines.append(
        f"checked {len(result.paths)} file(s): "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.unused_suppressions)} unused suppression(s), "
        f"{len(result.unjustified_suppressions)} unjustified "
        f"suppression(s)")
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """The machine-readable report (``--format json``)."""
    document = {
        "schema": REPORT_SCHEMA,
        "files": len(result.paths),
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict()
                       for finding in result.suppressed],
        "unused_suppressions": [
            {"path": path, "line": line, "rules": list(rules)}
            for path, line, rules in result.unused_suppressions],
        "unjustified_suppressions": [
            {"path": path, "line": line, "rules": list(rules)}
            for path, line, rules in result.unjustified_suppressions],
        "counts": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "unused_suppressions": len(result.unused_suppressions),
            "unjustified_suppressions":
                len(result.unjustified_suppressions),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_listing() -> str:
    """The ``--list-rules`` table: id, severity, summary."""
    rows = [f"{rule.rule_id:14s} {rule.severity.value:8s} {rule.summary}"
            for rule in all_rules()]
    rows += [f"{rule.rule_id:14s} {rule.severity.value:8s} "
             f"{rule.summary} (whole-program)"
             for rule in all_project_rules()]
    return "\n".join(rows)


def render_explain(rule_id: str) -> Optional[str]:
    """The ``--explain RULE`` text: summary, doc, example finding.

    Returns ``None`` for unknown rule ids so the CLI can report the
    error with the listing hint.
    """
    registered = find_rule(rule_id)
    if registered is None:
        return None
    summary = getattr(registered, "summary", "")
    severity = getattr(registered, "severity", None)
    check = getattr(registered, "check", None)
    example = getattr(registered, "example", "")
    lines = [f"{rule_id} [{severity.value if severity else '?'}]: "
             f"{summary}"]
    doc = inspect.getdoc(check) if check is not None else None
    if doc:
        lines.append("")
        lines.append(doc)
    if example:
        lines.append("")
        lines.append("Example finding:")
        lines.append(f"  {example}")
    return "\n".join(lines)
