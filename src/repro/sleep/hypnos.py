"""Hypnos: utilisation-aware link sleeping (§8).

The algorithm evaluated by the paper turns off internal links that are not
needed to carry the current traffic, subject to two safety constraints:

* the internal topology must stay **connected** (no router isolated);
* after rerouting the displaced demands, **no remaining link may exceed a
  maximum utilisation** threshold.

Only *internal* links are candidates: an ISP cannot unilaterally shut a
customer or peering interface -- the paper's point that 51 % of Switch's
interfaces (and 52 % of transceiver power) are out of reach for sleeping.

The planner is greedy from the least-utilised candidate up, recomputing
routes incrementally after each commitment, and can be run per time window
so the sleeping set follows the diurnal traffic curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from repro import units
from repro.network.topology import ISPNetwork
from repro.network.traffic import DiurnalProfile, TrafficMatrix


@dataclass(frozen=True)
class HypnosConfig:
    """Planner parameters.

    ``max_utilisation`` is the post-rerouting cap on any internal link;
    ``protected_links`` are never turned off (e.g. the core-core bundle's
    last member is protected implicitly by connectivity, but operators may
    pin more).
    """

    max_utilisation: float = 0.5
    protected_links: frozenset = frozenset()
    #: Upper bound on how many links one window may sleep; None = no cap.
    max_sleeping: Optional[int] = None
    #: Keep the surviving topology 2-edge-connected, not merely connected,
    #: so a single link failure never partitions the network.  This is the
    #: operationally realistic setting and yields the paper's ~1/3
    #: sleepable share; ``False`` sleeps more aggressively.
    require_redundancy: bool = True


@dataclass
class WindowPlan:
    """The sleeping decision for one time window."""

    t_start_s: float
    t_end_s: float
    demand_multiplier: float
    sleeping: Set[int]

    @property
    def duration_s(self) -> float:
        """Window length."""
        return self.t_end_s - self.t_start_s


@dataclass
class SleepPlan:
    """A full multi-window sleeping schedule."""

    windows: List[WindowPlan] = field(default_factory=list)

    @property
    def total_duration_s(self) -> float:
        """Total planned time."""
        return sum(w.duration_s for w in self.windows)

    def sleep_fraction(self, link_id: int) -> float:
        """Fraction of planned time a link spends asleep."""
        total = self.total_duration_s
        if total == 0:
            return 0.0
        asleep = sum(w.duration_s for w in self.windows
                     if link_id in w.sleeping)
        return asleep / total

    def ever_sleeping(self) -> Set[int]:
        """Links asleep in at least one window."""
        out: Set[int] = set()
        for window in self.windows:
            out |= window.sleeping
        return out


class Hypnos:
    """The greedy link-sleeping planner."""

    def __init__(self, network: ISPNetwork, matrix: TrafficMatrix,
                 config: Optional[HypnosConfig] = None):
        self.network = network
        self.matrix = matrix
        self.config = config if config is not None else HypnosConfig()
        self._links = {l.link_id: l for l in network.internal_links()}

    # -- helpers ----------------------------------------------------------------

    def _stays_connected(self, removed: Set[int]) -> bool:
        multigraph = self.network.internal_graph(exclude=removed)
        if not nx.is_connected(nx.Graph(multigraph)):
            return False
        if self.config.require_redundancy:
            # 2-edge-connectivity on the multigraph: parallel links count
            # as redundancy, so bridges are edges whose node pair has
            # exactly one surviving link.
            collapsed = nx.Graph()
            collapsed.add_nodes_from(multigraph.nodes)
            for a, b in multigraph.edges():
                if collapsed.has_edge(a, b):
                    collapsed[a][b]["multi"] = True
                else:
                    collapsed.add_edge(a, b, multi=False)
            for a, b in nx.bridges(collapsed):
                if not collapsed[a][b]["multi"]:
                    return False
        return True

    def _max_utilisation(self, matrix: TrafficMatrix,
                         removed: Set[int],
                         demand_multiplier: float) -> float:
        loads = matrix.base_link_loads()
        worst = 0.0
        for link_id, load in loads.items():
            if link_id in removed:
                continue
            capacity = units.gbps_to_bps(self._links[link_id].speed_gbps)
            worst = max(worst, load * demand_multiplier / capacity)
        return worst

    # -- planning ---------------------------------------------------------------------

    def plan_window(self, demand_multiplier: float = 1.0) -> Set[int]:
        """Choose the sleeping set for one window's demand level.

        Greedy: candidates in ascending-utilisation order; a candidate is
        committed iff the network stays connected, every displaced demand
        reroutes, and no surviving link exceeds the utilisation cap.
        """
        if demand_multiplier < 0:
            raise ValueError(
                f"demand multiplier must be >= 0, got {demand_multiplier}")
        current = self.matrix
        removed: Set[int] = set()
        utils = current.utilisations()
        candidates = sorted(
            (lid for lid in self._links
             if lid not in self.config.protected_links),
            key=lambda lid: utils.get(lid, 0.0))
        for link_id in candidates:
            if (self.config.max_sleeping is not None
                    and len(removed) >= self.config.max_sleeping):
                break
            trial = removed | {link_id}
            if not self._stays_connected(trial):
                continue
            try:
                rerouted = current.reroute_without(trial)
            except ValueError:
                continue  # some demand would be stranded
            worst = self._max_utilisation(rerouted, trial, demand_multiplier)
            if worst > self.config.max_utilisation:
                continue
            removed = trial
            current = rerouted
        return removed

    def plan(self, start_s: float, duration_s: float,
             window_s: float = units.SECONDS_PER_HOUR,
             profile: Optional[DiurnalProfile] = None) -> SleepPlan:
        """Plan a schedule over consecutive windows of a diurnal period.

        Windows with the same (quantised) demand level share a sleeping
        decision, so a month-long plan costs only as many greedy runs as
        there are distinct demand levels.
        """
        if profile is None:
            profile = DiurnalProfile()
        plan = SleepPlan()
        cache: Dict[float, Set[int]] = {}
        n_windows = int(round(duration_s / window_s))
        for i in range(n_windows):
            t0 = start_s + i * window_s
            mult = profile.multiplier(t0 + window_s / 2.0)
            level = round(mult, 1)  # quantise to reuse decisions
            if level not in cache:
                cache[level] = self.plan_window(level)
            plan.windows.append(WindowPlan(
                t_start_s=t0, t_end_s=t0 + window_s,
                demand_multiplier=level, sleeping=set(cache[level])))
        return plan
