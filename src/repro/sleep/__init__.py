"""Link sleeping (§8): the Hypnos planner and its savings accounting."""

from repro.sleep.hypnos import (
    Hypnos,
    HypnosConfig,
    SleepPlan,
    WindowPlan,
)
from repro.sleep.rate_adaptation import (
    RateDecision,
    RatePlan,
    SPEED_LADDER,
    apply_rate_plan,
    plan_rate_adaptation,
)
from repro.sleep.savings import (
    SavingsEstimate,
    external_power_share,
    naive_saving_w,
    plan_savings,
    port_saving_range_w,
)

__all__ = [
    "RateDecision",
    "RatePlan",
    "SPEED_LADDER",
    "apply_rate_plan",
    "plan_rate_adaptation",
    "Hypnos",
    "HypnosConfig",
    "SleepPlan",
    "WindowPlan",
    "SavingsEstimate",
    "external_power_share",
    "naive_saving_w",
    "plan_savings",
    "port_saving_range_w",
]
