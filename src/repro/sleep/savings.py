"""Power savings of a sleeping schedule (§8's headline numbers).

Turning an interface off saves ``P_port + P_trx,up`` on each side of the
link -- **not** ``P_port + P_trx``: the plug-in share ``P_trx,in`` keeps
flowing as long as the module stays seated ("down" does not mean "off",
§7).  Because the Switch analysis lacks per-transceiver power models, the
paper can only bound the up-share by the module's datasheet power:
``P_trx,up ∈ [0, P_trx]``, which makes the savings a *range*.  ``P_port``
comes from per-port-type averages of the fitted models (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional

from repro.hardware.catalog import DEFAULT_P_PORT_W
from repro.hardware.transceiver import PortType
from repro.network.topology import ISPNetwork
from repro.obs import metrics
from repro.sleep.hypnos import SleepPlan

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.model import PowerModel

M_SLEEP_LOWER = metrics.gauge(
    "netpower_sleep_savings_lower_watts",
    "Lower bound (P_trx,up = 0) of the last sleeping-plan estimate")
M_SLEEP_UPPER = metrics.gauge(
    "netpower_sleep_savings_upper_watts",
    "Upper bound (full datasheet P_trx) of the last sleeping-plan estimate")
M_SLEEP_LINKS = metrics.gauge(
    "netpower_sleep_links_ever_sleeping",
    "Links that sleep at least once in the last evaluated plan")


@dataclass(frozen=True)
class SavingsEstimate:
    """A power-savings range with its reference total."""

    lower_w: float
    upper_w: float
    reference_power_w: float

    @property
    def lower_fraction(self) -> float:
        """Lower bound as a fraction of the reference total."""
        return self.lower_w / self.reference_power_w

    @property
    def upper_fraction(self) -> float:
        """Upper bound as a fraction of the reference total."""
        return self.upper_w / self.reference_power_w

    def __str__(self) -> str:
        return (f"{self.lower_w:.0f}-{self.upper_w:.0f} W "
                f"({100 * self.lower_fraction:.1f}-"
                f"{100 * self.upper_fraction:.1f} % of "
                f"{self.reference_power_w:.0f} W)")


def table5_from_models(models: Iterable["PowerModel"],
                       ) -> Dict[PortType, float]:
    """Per-port-type ``P_port`` averages from fitted models (Table 5).

    ``models`` is an iterable of fitted :class:`~repro.core.model.PowerModel`
    objects; the paper builds exactly this table ("we get those values by
    averaging all the power models we have per port type") to feed the
    sleeping evaluation when no per-device model exists.
    """
    per_type: Dict[PortType, list] = {}
    for model in models:
        for key, iface in model.interfaces.items():
            try:
                port_type = PortType(key.port_type)
            except ValueError:
                continue  # a port type the hardware layer doesn't know
            per_type.setdefault(port_type, []).append(iface.p_port_w.value)
    return {port_type: sum(values) / len(values)
            for port_type, values in per_type.items()}


def port_saving_range_w(network: ISPNetwork, link_id: int,
                        p_port_by_type: Optional[Mapping[PortType, float]]
                        = None) -> tuple:
    """(lower, upper) watts saved by sleeping one link (both ends).

    Lower assumes ``P_trx,up = 0`` (all transceiver power is plug-in
    cost); upper assumes the full datasheet transceiver power disappears.
    """
    if p_port_by_type is None:
        p_port_by_type = DEFAULT_P_PORT_W
    link = next(l for l in network.internal_links() if l.link_id == link_id)
    lower = 0.0
    upper = 0.0
    for end in (link.a, link.b):
        port = network.port_of(end)
        p_port = p_port_by_type.get(port.port_type, 0.5)
        lower += p_port
        upper += p_port
        if port.transceiver is not None:
            upper += port.transceiver.model.datasheet_power_w
    return lower, upper


def naive_saving_w(network: ISPNetwork, link_id: int,
                   p_port_by_type: Optional[Mapping[PortType, float]]
                   = None) -> float:
    """What prior work expected to save: ``P_port + P_trx`` per side.

    This is the literature's assumption the paper corrects; comparing it
    to :func:`port_saving_range_w` quantifies the over-estimate.
    """
    _, upper = port_saving_range_w(network, link_id, p_port_by_type)
    return upper


def plan_savings(network: ISPNetwork, plan: SleepPlan,
                 reference_power_w: float,
                 p_port_by_type: Optional[Mapping[PortType, float]] = None,
                 ) -> SavingsEstimate:
    """Time-weighted savings range of a full sleeping schedule."""
    if reference_power_w <= 0:
        raise ValueError(
            f"reference power must be positive, got {reference_power_w}")
    lower = 0.0
    upper = 0.0
    sleeping = plan.ever_sleeping()
    for link_id in sleeping:
        fraction = plan.sleep_fraction(link_id)
        link_lower, link_upper = port_saving_range_w(
            network, link_id, p_port_by_type)
        lower += fraction * link_lower
        upper += fraction * link_upper
    M_SLEEP_LOWER.set(lower)
    M_SLEEP_UPPER.set(upper)
    M_SLEEP_LINKS.set(len(sleeping))
    return SavingsEstimate(lower_w=lower, upper_w=upper,
                           reference_power_w=reference_power_w)


def external_power_share(network: ISPNetwork) -> Dict[str, float]:
    """Transceiver power split between internal and external interfaces.

    Quantifies §8's discussion point: in the Switch data, 51 % of
    interfaces are external and carry 52 % of the transceiver power --
    all of it out of reach for intra-domain sleeping.
    """
    internal = 0.0
    external = 0.0
    for link in network.links:
        ends = [link.a] + ([link.b] if link.b is not None else [])
        for end in ends:
            port = network.port_of(end)
            truth = port.class_truth()
            if truth is None:
                continue
            if link.is_internal:
                internal += truth.p_trx_total_w
            else:
                external += truth.p_trx_total_w
    total = internal + external
    return {
        "internal_trx_w": internal,
        "external_trx_w": external,
        "external_share": external / total if total else 0.0,
    }
