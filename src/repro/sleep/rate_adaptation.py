"""Rate adaptation: the other half of the classic savings proposal.

Nedevschi et al. (the paper's [27]) proposed *sleeping and
rate-adaptation*; the paper evaluates sleeping (§8).  This module adds
the rate half on top of the same fitted-model data: instead of turning a
link off, clock it down to the slowest speed that still carries its peak
load with headroom.  The per-speed interface classes of Table 2 (a) --
100G/50G/25G rows for the same port and module -- supply exactly the
power deltas this needs, and unlike sleeping, rate adaptation keeps the
topology intact (no rerouting, no lost redundancy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import units
from repro.hardware.transceiver import PortType
from repro.network.topology import ISPNetwork, Link
from repro.network.traffic import TrafficMatrix
from repro.obs import metrics

M_RATE_SAVINGS = metrics.gauge(
    "netpower_rate_adaptation_savings_watts",
    "Total savings of the last rate-adaptation plan")
M_RATE_DOWNGRADED = metrics.gauge(
    "netpower_rate_adaptation_links_downgraded",
    "Links changing speed in the last rate-adaptation plan")

#: Speed ladders per port type (Gbps), descending.
SPEED_LADDER: Dict[PortType, Tuple[float, ...]] = {
    PortType.QSFP_DD: (400, 100),
    PortType.QSFP28: (100, 50, 25, 10),
    PortType.QSFP: (100, 40),
    PortType.SFP28: (25, 10, 1),
    PortType.SFP_PLUS: (10, 1),
    PortType.SFP: (1,),
    PortType.RJ45: (10, 1, 0.1),
}


@dataclass(frozen=True)
class RateDecision:
    """One link's adaptation decision."""

    link_id: int
    old_speed_gbps: float
    new_speed_gbps: float
    saving_w: float

    @property
    def downgraded(self) -> bool:
        """Whether the link actually changes speed."""
        return self.new_speed_gbps < self.old_speed_gbps


@dataclass
class RatePlan:
    """A full adaptation plan plus its totals."""

    decisions: List[RateDecision] = field(default_factory=list)

    @property
    def total_saving_w(self) -> float:
        """Sum of per-link savings."""
        return sum(d.saving_w for d in self.decisions)

    def downgraded(self) -> List[RateDecision]:
        """Only the links that change speed."""
        return [d for d in self.decisions if d.downgraded]


def _port_power_at(network: ISPNetwork, link: Link,
                   speed: float) -> float:
    """Per-link (both ends) static power at a target speed.

    Uses each end's interface-class table at that speed -- the operator
    would use their fitted per-speed models (Table 2 a's 100/50/25G
    rows); the class truth plays that role here, and the benches verify
    fitted == truth.  All three static terms are evaluated: on
    lab-characterised classes ``P_trx,in`` is speed-invariant (same
    module) and cancels in the delta; on fallback classes small module
    differences surface, matching what the hardware reports.
    """
    total = 0.0
    for end in (link.a, link.b):
        if end is None:
            continue
        port = network.port_of(end)
        if port.transceiver is None:
            continue
        truth = network.router(end.hostname).spec.find_class(
            port.port_type, port.transceiver.model.reach, speed)
        total += truth.p_port_w + truth.p_trx_up_w + truth.p_trx_in_w
    return total


def plan_rate_adaptation(network: ISPNetwork, matrix: TrafficMatrix,
                         headroom: float = 4.0,
                         internal_only: bool = True) -> RatePlan:
    """Pick the slowest viable speed per link and tally the savings.

    A link's peak demand is its routed base load; the chosen speed is the
    smallest ladder entry with ``speed >= headroom * load``.  Savings are
    the drop in speed-dependent power (``P_port + P_trx,up``) on both
    ends; ``P_trx,in`` is untouched, exactly like sleeping (§7).
    """
    if headroom < 1.0:
        raise ValueError(f"headroom must be >= 1, got {headroom}")
    loads = matrix.base_link_loads()
    plan = RatePlan()
    links = (network.internal_links() if internal_only else network.links)
    for link in links:
        port = network.port_of(link.a)
        ladder = SPEED_LADDER.get(port.port_type, (link.speed_gbps,))
        load_gbps = units.bps_to_gbps(loads.get(link.link_id, 0.0))
        viable = [s for s in ladder
                  if s <= link.speed_gbps and s >= headroom * load_gbps]
        new_speed = min(viable) if viable else link.speed_gbps
        if new_speed >= link.speed_gbps:
            plan.decisions.append(RateDecision(
                link_id=link.link_id, old_speed_gbps=link.speed_gbps,
                new_speed_gbps=link.speed_gbps, saving_w=0.0))
            continue
        saving = (_port_power_at(network, link, link.speed_gbps)
                  - _port_power_at(network, link, new_speed))
        plan.decisions.append(RateDecision(
            link_id=link.link_id, old_speed_gbps=link.speed_gbps,
            new_speed_gbps=new_speed, saving_w=max(0.0, saving)))
    M_RATE_SAVINGS.set(plan.total_saving_w)
    M_RATE_DOWNGRADED.set(len(plan.downgraded()))
    return plan


def apply_rate_plan(network: ISPNetwork, plan: RatePlan) -> int:
    """Actually clock the links down on the virtual hardware.

    Returns the number of links changed.  The truth engine then reflects
    the savings (its per-speed classes), which lets tests verify the
    plan's arithmetic against measured wall power.
    """
    changed = 0
    links = {l.link_id: l for l in network.links}
    for decision in plan.downgraded():
        link = links[decision.link_id]
        for end in (link.a, link.b):
            if end is None:
                continue
            network.port_of(end).set_speed(decision.new_speed_gbps)
        link.speed_gbps = decision.new_speed_gbps
        changed += 1
    return changed
