"""NetPowerBench: the lab half of the paper's tooling (§5).

Everything needed to derive a router power model from scratch: a simulated
MCP39F511N power meter, a traffic generator with the paper's tool
behaviours, RFC 8239 snake cabling, and the orchestrator that runs the
Base / Idle / Port / Trx / Snake experiment protocol.
"""

from repro.lab.power_meter import (
    MCP39F511N_ACCURACY,
    MeterChannel,
    PowerMeter,
    PowerSample,
    PowerSummary,
    summarize,
)
from repro.lab.traffic_gen import Flow, TrafficGenerator
from repro.lab.snake import (
    EndHostPort,
    SnakeLayout,
    apply_snake_traffic,
    cable_pairs,
    cable_snake,
    clear_traffic,
    teardown,
)
from repro.lab.modular import (
    LinecardDerivationReport,
    ModularOrchestrator,
)
from repro.lab.orchestrator import (
    EXPERIMENTS,
    ExperimentPlan,
    ExperimentSuite,
    MeasurementFrame,
    Orchestrator,
)

__all__ = [
    "LinecardDerivationReport",
    "ModularOrchestrator",
    "MCP39F511N_ACCURACY",
    "MeterChannel",
    "PowerMeter",
    "PowerSample",
    "PowerSummary",
    "summarize",
    "Flow",
    "TrafficGenerator",
    "EndHostPort",
    "SnakeLayout",
    "apply_snake_traffic",
    "cable_pairs",
    "cable_snake",
    "clear_traffic",
    "teardown",
    "EXPERIMENTS",
    "ExperimentPlan",
    "ExperimentSuite",
    "MeasurementFrame",
    "Orchestrator",
]
