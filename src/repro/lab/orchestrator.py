"""NetPowerBench: orchestration of the §5 model-derivation experiments.

The orchestrator owns the lab: the DUT (a :class:`VirtualRouter`), the
power meter on the DUT's feed, and the traffic generator.  It executes the
five experiment classes of §5.2 --

======  ====================================================================
Base    DUT on, no transceivers, no configuration
Idle    transceivers plugged (pairs cabled), all ports admin-down
Port    one port per pair admin-up; links stay down
Trx     both ports of each pair admin-up; links come up
Snake   traffic forwarded through every interface at swept (rate, size)
======  ====================================================================

-- and returns an :class:`ExperimentSuite` of measurement frames that
:mod:`repro.core.derivation` turns into a fitted power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.router import Port, VirtualRouter
from repro.hardware.transceiver import PortType, TRANSCEIVER_CATALOG
from repro.lab.power_meter import PowerMeter, PowerSample, PowerSummary, summarize
from repro.lab.snake import (
    apply_snake_traffic,
    cable_pairs,
    cable_snake,
    clear_traffic,
    teardown,
)
from repro.lab.traffic_gen import Flow, TrafficGenerator
from repro.obs import metrics, tracing
from repro.obs.logging import get_logger

#: Experiment class names, matching §5.2.
EXPERIMENTS = ("base", "idle", "port", "trx", "snake")

_log = get_logger("lab.orchestrator")

M_FRAMES = metrics.counter(
    "netpower_lab_frames_total",
    "Measurement frames collected, by experiment class",
    labels=("experiment",))
M_SUITES = metrics.counter(
    "netpower_lab_suites_total", "Completed §5.2 experiment suites")
M_METER_SAMPLES = metrics.counter(
    "netpower_lab_meter_samples_total",
    "Power-meter samples taken on the lab bench")


@dataclass(frozen=True)
class MeasurementFrame:
    """One experiment run: a configuration and its measured power summary."""

    experiment: str
    n_pairs: int
    trx_name: Optional[str]
    speed_gbps: Optional[float]
    summary: PowerSummary
    flow: Optional[Flow] = None

    def __post_init__(self):
        if self.experiment not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {self.experiment!r}; expected one of "
                f"{EXPERIMENTS}")


@dataclass
class ExperimentSuite:
    """All frames collected for one (DUT, transceiver, speed) combination."""

    dut_model: str
    port_type: PortType
    trx_name: str
    speed_gbps: float
    frames: List[MeasurementFrame] = field(default_factory=list)

    def of(self, experiment: str) -> List[MeasurementFrame]:
        """Frames of one experiment class, in collection order."""
        return [f for f in self.frames if f.experiment == experiment]

    @property
    def base_power_w(self) -> float:
        """Mean measured power across all Base frames."""
        frames = self.of("base")
        if not frames:
            raise ValueError("suite contains no Base experiment")
        return float(np.mean([f.summary.mean_w for f in frames]))

    def snake_by_packet_size(self) -> Dict[float, List[MeasurementFrame]]:
        """Snake frames grouped by payload size (for the Eq. 17 regression)."""
        grouped: Dict[float, List[MeasurementFrame]] = {}
        for frame in self.of("snake"):
            grouped.setdefault(frame.flow.packet_bytes, []).append(frame)
        return grouped


@dataclass(frozen=True)
class ExperimentPlan:
    """Sweep parameters for a full §5.2 suite.

    Defaults follow the paper's setup: pair counts swept for the static
    regressions, ib_send_bw rates from 2.5 to the line rate, and payload
    sizes spanning 64-1500 B.
    """

    trx_name: str
    speed_gbps: Optional[float] = None
    n_pairs_values: Tuple[int, ...] = (1, 2, 3, 4, 6, 8)
    rates_gbps: Tuple[float, ...] = (2.5, 5, 10, 25, 50, 75, 100)
    packet_sizes: Tuple[float, ...] = (64, 256, 512, 1024, 1500)
    snake_n_pairs: int = 4
    sample_period_s: float = 1.0
    measure_duration_s: float = 60.0
    settle_time_s: float = 10.0


class Orchestrator:
    """Drives a DUT through the §5 experiments and collects measurements."""

    def __init__(self, dut: VirtualRouter,
                 meter: Optional[PowerMeter] = None,
                 generator: Optional[TrafficGenerator] = None,
                 rng: Optional[np.random.Generator] = None):
        self.rng = rng if rng is not None else np.random.default_rng()
        self.dut = dut
        self.meter = meter if meter is not None else PowerMeter(rng=self.rng)
        self.generator = (generator if generator is not None
                          else TrafficGenerator(rng=self.rng))
        self.meter.attach(dut.wall_power_w, channel=0)
        self._clock_s = 0.0

    # -- low-level measurement -------------------------------------------------

    def measure(self, duration_s: float, period_s: float = 1.0,
                settle_s: float = 0.0) -> List[PowerSample]:
        """Advance simulated time and sample the meter at a fixed period."""
        if duration_s <= 0 or period_s <= 0:
            raise ValueError("duration and period must be positive")
        if settle_s > 0:
            self.dut.advance(settle_s)
            self._clock_s += settle_s
        samples = []
        for _ in range(max(2, int(round(duration_s / period_s)))):
            self.dut.advance(period_s)
            self._clock_s += period_s
            samples.append(self.meter.read(self._clock_s, channel=0))
        M_METER_SAMPLES.inc(len(samples))
        return samples

    def _frame(self, experiment: str, n_pairs: int, plan: ExperimentPlan,
               speed: Optional[float], flow: Optional[Flow] = None,
               ) -> MeasurementFrame:
        samples = self.measure(plan.measure_duration_s,
                               plan.sample_period_s,
                               settle_s=plan.settle_time_s)
        M_FRAMES.labels(experiment=experiment).inc()
        return MeasurementFrame(
            experiment=experiment, n_pairs=n_pairs,
            trx_name=plan.trx_name if experiment != "base" else None,
            speed_gbps=speed if experiment != "base" else None,
            summary=summarize(samples), flow=flow)

    # -- experiment setup -------------------------------------------------------

    def _eligible_ports(self, trx_name: str) -> List[Port]:
        model = TRANSCEIVER_CATALOG[trx_name]
        ports = [p for p in self.dut.ports
                 if p.port_type == model.form_factor]
        if not ports:
            # Fall back to compatibility (QSFP modules in QSFP28 cages etc.).
            from repro.hardware.transceiver import compatible
            ports = [p for p in self.dut.ports
                     if compatible(p.port_type, model)]
        if not ports:
            raise ValueError(
                f"{self.dut.model_name} has no port accepting {trx_name}")
        return ports

    def _reset(self) -> None:
        teardown(self.dut.ports)

    def _setup_pairs(self, trx_name: str, n_pairs: int,
                     speed: Optional[float]) -> List[Port]:
        self._reset()
        ports = self._eligible_ports(trx_name)[: 2 * n_pairs]
        if len(ports) < 2 * n_pairs:
            raise ValueError(
                f"{self.dut.model_name} has only {len(ports)} eligible ports; "
                f"cannot form {n_pairs} pairs of {trx_name}")
        for port in ports:
            port.plug(trx_name)
            if speed is not None:
                port.set_speed(speed)
        cable_pairs(ports)
        return ports

    # -- the five experiments ----------------------------------------------------

    def run_base(self, plan: ExperimentPlan) -> MeasurementFrame:
        """Base: no transceivers, no configuration (Eq. 7)."""
        self._reset()
        return self._frame("base", 0, plan, None)

    def run_idle(self, plan: ExperimentPlan, n_pairs: int) -> MeasurementFrame:
        """Idle: transceivers plugged, everything admin-down (Eq. 8)."""
        self._setup_pairs(plan.trx_name, n_pairs, plan.speed_gbps)
        return self._frame("idle", n_pairs, plan, plan.speed_gbps)

    def run_port(self, plan: ExperimentPlan, n_pairs: int) -> MeasurementFrame:
        """Port: one port per pair admin-up; links stay down (Eq. 9)."""
        ports = self._setup_pairs(plan.trx_name, n_pairs, plan.speed_gbps)
        for port in ports[::2]:
            port.set_admin(True)
        return self._frame("port", n_pairs, plan, plan.speed_gbps)

    def run_trx(self, plan: ExperimentPlan, n_pairs: int) -> MeasurementFrame:
        """Trx: both ports of each pair up; interfaces come up (Eq. 10)."""
        ports = self._setup_pairs(plan.trx_name, n_pairs, plan.speed_gbps)
        for port in ports:
            port.set_admin(True)
        return self._frame("trx", n_pairs, plan, plan.speed_gbps)

    def run_snake(self, plan: ExperimentPlan, n_pairs: int,
                  rate_gbps: float, packet_bytes: float) -> MeasurementFrame:
        """Snake: traffic through every interface at one (rate, size) point."""
        self._reset()
        ports = self._eligible_ports(plan.trx_name)[: 2 * n_pairs]
        for port in ports:
            port.plug(plan.trx_name)
            if plan.speed_gbps is not None:
                port.set_speed(plan.speed_gbps)
            port.set_admin(True)
        layout = cable_snake(ports)
        flow = self.generator.start_flow(rate_gbps, packet_bytes)
        apply_snake_traffic(layout, flow)
        frame = self._frame("snake", n_pairs, plan, plan.speed_gbps, flow=flow)
        clear_traffic(ports)
        return frame

    # -- full suite ----------------------------------------------------------------

    def run_suite(self, plan: ExperimentPlan) -> ExperimentSuite:
        """Execute the complete §5.2 protocol for one interface class."""
        trx_model = TRANSCEIVER_CATALOG.get(plan.trx_name)
        if trx_model is None:
            known = ", ".join(sorted(TRANSCEIVER_CATALOG))
            raise KeyError(f"unknown transceiver {plan.trx_name!r}; "
                           f"known products: {known}")
        speed = (plan.speed_gbps if plan.speed_gbps is not None
                 else trx_model.speed_gbps)
        plan = ExperimentPlan(
            trx_name=plan.trx_name, speed_gbps=speed,
            n_pairs_values=plan.n_pairs_values,
            rates_gbps=plan.rates_gbps, packet_sizes=plan.packet_sizes,
            snake_n_pairs=plan.snake_n_pairs,
            sample_period_s=plan.sample_period_s,
            measure_duration_s=plan.measure_duration_s,
            settle_time_s=plan.settle_time_s)
        eligible = self._eligible_ports(plan.trx_name)
        max_pairs = len(eligible) // 2
        n_values = [n for n in plan.n_pairs_values if n <= max_pairs]
        if len(n_values) < 2:
            raise ValueError(
                f"need at least two feasible pair counts on "
                f"{self.dut.model_name} for the static regressions; "
                f"got {n_values} from {plan.n_pairs_values} "
                f"(max {max_pairs} pairs)")
        snake_pairs = min(plan.snake_n_pairs, max_pairs)
        rates = [r for r in plan.rates_gbps if r <= speed]
        if not rates:
            raise ValueError(
                f"no requested rate fits a {speed} Gbps interface")

        suite = ExperimentSuite(
            dut_model=self.dut.model_name,
            port_type=eligible[0].port_type,
            trx_name=plan.trx_name, speed_gbps=speed)
        sim_clock = lambda: self._clock_s  # noqa: E731 -- span clock hook
        with tracing.span("lab.suite", sim_clock=sim_clock,
                          dut=self.dut.model_name, trx=plan.trx_name,
                          speed_gbps=speed):
            with tracing.span("lab.base", sim_clock=sim_clock):
                suite.frames.append(self.run_base(plan))
            with tracing.span("lab.idle", sim_clock=sim_clock):
                for n in n_values:
                    suite.frames.append(self.run_idle(plan, n))
            with tracing.span("lab.port", sim_clock=sim_clock):
                for n in n_values:
                    suite.frames.append(self.run_port(plan, n))
            with tracing.span("lab.trx", sim_clock=sim_clock):
                for n in n_values:
                    suite.frames.append(self.run_trx(plan, n))
            with tracing.span("lab.snake", sim_clock=sim_clock,
                              rates=len(rates),
                              sizes=len(plan.packet_sizes)):
                for packet_bytes in plan.packet_sizes:
                    for rate in rates:
                        suite.frames.append(self.run_snake(
                            plan, snake_pairs, rate, packet_bytes))
            self._reset()
        M_SUITES.inc()
        _log.info("experiment suite complete",
                  extra={"dut": self.dut.model_name, "trx": plan.trx_name,
                         "frames": len(suite.frames)})
        return suite
