"""Cabling layouts for the §5 experiments, including the RFC 8239 snake.

Two layouts are used by the methodology:

* **pair cabling** for Idle / Port / Trx: DUT ports connected in pairs
  (port 0 <-> port 1, port 2 <-> port 3, ...), so bringing both ends of a
  pair admin-up takes the link up without any external device;
* **snake cabling** for the Snake traffic experiments: the orchestrator
  injects traffic into the first port, it loops through every interface of
  the DUT via loopback cables, and returns to the orchestrator (RFC 8239
  layer-2 snake test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hardware.router import Cable, Port, connect, disconnect
from repro.lab.traffic_gen import Flow


@dataclass
class EndHostPort:
    """A NIC port on the orchestrator, duck-typed as a cable endpoint.

    Only the attributes the DUT's link-state logic inspects are provided:
    a host NIC is always "plugged" and "admin up".
    """

    name: str
    plugged: bool = True
    admin_up: bool = True
    cable: object = None


@dataclass
class SnakeLayout:
    """The result of snake cabling: the ordered DUT port chain."""

    ports: List[Port]
    host_tx: EndHostPort
    host_rx: EndHostPort

    @property
    def n_pairs(self) -> int:
        """Number of DUT port pairs in the chain."""
        return len(self.ports) // 2


def cable_pairs(ports: Sequence[Port]) -> List[Cable]:
    """Connect an even number of ports in adjacent pairs (Idle/Port/Trx)."""
    if len(ports) % 2 != 0:
        raise ValueError(f"pair cabling needs an even port count, got {len(ports)}")
    return [connect(ports[i], ports[i + 1]) for i in range(0, len(ports), 2)]


def cable_snake(ports: Sequence[Port]) -> SnakeLayout:
    """Wire a snake: host -> port[0], port[1] <-> port[2], ... -> host.

    Traffic entering ``ports[0]`` is forwarded out ``ports[1]``, loops back
    in ``ports[2]``, and so on, leaving the DUT at ``ports[-1]``.
    """
    if len(ports) % 2 != 0:
        raise ValueError(f"snake cabling needs an even port count, got {len(ports)}")
    if not ports:
        raise ValueError("snake cabling needs at least one port pair")
    host_tx = EndHostPort(name="orchestrator-tx")
    host_rx = EndHostPort(name="orchestrator-rx")
    connect(ports[0], host_tx)
    for i in range(1, len(ports) - 1, 2):
        connect(ports[i], ports[i + 1])
    connect(ports[-1], host_rx)
    return SnakeLayout(ports=list(ports), host_tx=host_tx, host_rx=host_rx)


def apply_snake_traffic(layout: SnakeLayout, flow: Flow) -> None:
    """Offer a flow through the snake: every interface carries it once.

    Even-indexed ports receive the flow, odd-indexed ports transmit it, so
    each interface's two-direction total equals the flow rate -- the
    ``r_i`` of the paper's Eq. (6).
    """
    for i, port in enumerate(layout.ports):
        if i % 2 == 0:
            port.offer_traffic(rx_bps=flow.bit_rate_bps, tx_bps=0.0,
                               packet_bytes=flow.packet_bytes)
        else:
            port.offer_traffic(rx_bps=0.0, tx_bps=flow.bit_rate_bps,
                               packet_bytes=flow.packet_bytes)


def clear_traffic(ports: Sequence[Port]) -> None:
    """Stop all offered traffic on the given ports."""
    for port in ports:
        port.offer_traffic(rx_bps=0.0, tx_bps=0.0)


def teardown(ports: Sequence[Port]) -> None:
    """Return ports to the pristine state: no cables, down, unplugged."""
    for port in ports:
        disconnect(port)
        port.set_admin(False)
        port.set_speed(None)
        port.offer_traffic(0.0, 0.0)
        port.unplug()
