"""Simulated external power meter (Microchip MCP39F511N).

The paper's lab and Autopower deployments both use this two-channel meter:
±0.5 % specified accuracy, C13 plugs, streaming over USB.  The simulation
reproduces the error model that matters for the downstream regressions:

* a per-device *gain* error (calibration), constant over a session, drawn
  within the accuracy spec -- this is what makes two meters disagree by a
  constant factor;
* additive white noise per sample (ADC + line noise);
* quantisation of the reported value.

Channel 0 is conventionally the DUT/router; channel 1 powers the
measurement unit itself in Autopower deployments (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

#: Datasheet accuracy of the MCP39F511N: ±0.5 % of reading.
MCP39F511N_ACCURACY = 0.005

#: Resolution of the reported active power in watts.
MCP39F511N_QUANTUM_W = 0.01


@dataclass(frozen=True)
class PowerSample:
    """One timestamped active-power reading from a meter channel."""

    timestamp_s: float
    power_w: float
    channel: int = 0


class MeterChannel:
    """One measurement channel: a source of true watts plus the error model.

    ``source`` is any zero-argument callable returning the true wall power
    at the moment of sampling -- typically ``router.wall_power_w``.
    """

    def __init__(self, channel: int, rng: np.random.Generator,
                 gain_error_limit: float = MCP39F511N_ACCURACY,
                 noise_std_w: float = 0.05,
                 quantum_w: float = MCP39F511N_QUANTUM_W):
        self.channel = channel
        self._rng = rng
        # Per-device calibration error, fixed for the channel's lifetime.
        # Uniform within ±limit: the spec is a bound, not a distribution.
        self.gain = 1.0 + float(rng.uniform(-gain_error_limit,
                                            gain_error_limit))
        self.noise_std_w = noise_std_w
        self.quantum_w = quantum_w
        self.source: Optional[Callable[[], float]] = None

    def attach(self, source: Callable[[], float]) -> None:
        """Plug a device into this channel."""
        self.source = source

    def detach(self) -> None:
        """Unplug whatever is connected."""
        self.source = None

    def read(self, timestamp_s: float) -> PowerSample:
        """Take one sample; an unplugged channel reads 0 W."""
        if self.source is None:
            true = 0.0
        else:
            true = self.source()
        measured = true * self.gain + float(self._rng.normal(0.0, self.noise_std_w))
        if self.quantum_w > 0:
            measured = round(measured / self.quantum_w) * self.quantum_w
        return PowerSample(timestamp_s=timestamp_s,
                           power_w=max(0.0, measured),
                           channel=self.channel)


class PowerMeter:
    """A two-channel MCP39F511N-style meter."""

    N_CHANNELS = 2

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 gain_error_limit: float = MCP39F511N_ACCURACY,
                 noise_std_w: float = 0.05):
        rng = rng if rng is not None else np.random.default_rng()
        self.channels = [
            MeterChannel(i, rng, gain_error_limit=gain_error_limit,
                         noise_std_w=noise_std_w)
            for i in range(self.N_CHANNELS)
        ]

    def attach(self, source: Callable[[], float], channel: int = 0) -> None:
        """Connect a power source (e.g. ``router.wall_power_w``) to a channel."""
        self.channels[channel].attach(source)

    def detach(self, channel: int = 0) -> None:
        """Disconnect a channel."""
        self.channels[channel].detach()

    def read(self, timestamp_s: float, channel: int = 0) -> PowerSample:
        """One sample from a channel."""
        return self.channels[channel].read(timestamp_s)


def summarize(samples: Sequence[PowerSample]) -> "PowerSummary":
    """Aggregate a sample series into the statistics the derivation uses."""
    if not samples:
        raise ValueError("cannot summarise an empty sample series")
    values = np.array([s.power_w for s in samples], dtype=float)
    return PowerSummary(
        mean_w=float(values.mean()),
        std_w=float(values.std(ddof=1)) if len(values) > 1 else 0.0,
        median_w=float(np.median(values)),
        n_samples=len(values),
        duration_s=samples[-1].timestamp_s - samples[0].timestamp_s,
    )


@dataclass(frozen=True)
class PowerSummary:
    """Summary statistics of one measurement window."""

    mean_w: float
    std_w: float
    median_w: float
    n_samples: int
    duration_s: float

    @property
    def sem_w(self) -> float:
        """Standard error of the mean."""
        if self.n_samples <= 1:
            return 0.0
        return self.std_w / float(np.sqrt(self.n_samples))
