"""Simulated lab traffic generation.

The paper's orchestrator is an Intel NUC with a Mellanox ConnectX-6,
generating up to 100 Gbps unidirectional with ``ib_send_bw`` (2.5-100 Gbps)
and ``iperf3 -u`` for smaller rates.  We reproduce the *interface* of those
tools -- request a rate and a packet size, get back what was actually
achieved -- because the derivation regressions must use achieved rates, not
requested ones (real generators undershoot slightly and have granular rate
control).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import units

#: ib_send_bw operating range on the paper's setup (Gbps).
IB_SEND_BW_MIN_GBPS = 2.5
IB_SEND_BW_MAX_GBPS = 100.0


@dataclass(frozen=True)
class Flow:
    """A unidirectional test flow as actually achieved by the generator.

    ``bit_rate_bps`` is the physical-layer rate (what the DUT's interface
    carries, and what the power model's ``r`` means); ``packet_bytes`` is
    the payload size ``L``.
    """

    bit_rate_bps: float
    packet_bytes: float
    tool: str

    @property
    def packet_rate_pps(self) -> float:
        """Packets per second of the flow."""
        return units.packet_rate(self.bit_rate_bps, self.packet_bytes)

    @property
    def bit_rate_gbps(self) -> float:
        """Convenience accessor in Gbps."""
        return units.bps_to_gbps(self.bit_rate_bps)


class TrafficGenerator:
    """The orchestrator's traffic-generation capability.

    Parameters
    ----------
    rng:
        Randomness source for the per-run rate jitter.
    max_rate_gbps:
        NIC line rate (100 G for the ConnectX-6 used in the paper).
    rate_jitter:
        Relative shortfall scale of achieved vs requested rate.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 max_rate_gbps: float = 100.0,
                 rate_jitter: float = 0.002):
        self.rng = rng if rng is not None else np.random.default_rng()
        self.max_rate_gbps = max_rate_gbps
        self.rate_jitter = rate_jitter

    def _achieved(self, requested_bps: float) -> float:
        # Generators undershoot: achieved = requested * (1 - |jitter|).
        shortfall = abs(float(self.rng.normal(0.0, self.rate_jitter)))
        return requested_bps * (1.0 - shortfall)

    def start_flow(self, rate_gbps: float,
                   packet_bytes: float = units.MAX_PACKET_BYTES) -> Flow:
        """Start a test flow, choosing the tool like the paper's scripts.

        ``ib_send_bw`` covers 2.5-100 Gbps; anything smaller falls back to
        ``iperf3`` in UDP mode.
        """
        if rate_gbps <= 0:
            raise ValueError(f"rate must be positive, got {rate_gbps}")
        if rate_gbps > self.max_rate_gbps:
            raise ValueError(
                f"requested {rate_gbps} Gbps exceeds the generator NIC's "
                f"{self.max_rate_gbps} Gbps line rate")
        if not (units.MIN_PACKET_BYTES <= packet_bytes
                <= units.MAX_PACKET_BYTES * 6):
            raise ValueError(
                f"packet size {packet_bytes} B outside the generator's "
                f"{units.MIN_PACKET_BYTES}-{units.MAX_PACKET_BYTES * 6} B range")
        tool = ("ib_send_bw" if rate_gbps >= IB_SEND_BW_MIN_GBPS else "iperf3-udp")
        achieved = self._achieved(units.gbps_to_bps(rate_gbps))
        return Flow(bit_rate_bps=achieved, packet_bytes=packet_bytes, tool=tool)

    def sweep_rates(self, rates_gbps: Sequence[float],
                    packet_bytes: float) -> List[Flow]:
        """Start one flow per requested rate (a §5.2 rate sweep)."""
        return [self.start_flow(r, packet_bytes) for r in rates_gbps]
