"""Deriving the §4.3 ``P_linecard`` term in the lab.

The paper: "it should be possible to extend the model by introducing a
``P_linecard`` term that could be measured similarly as ``P_trx``" -- i.e.
by varying how many cards are inserted and regressing power over the
count, exactly like the Idle experiment varies plugged transceivers.

The protocol implemented here:

1. **Chassis** -- the empty chassis is measured (gives ``P_base``);
2. **Card(k)** -- ``k`` identical cards are inserted (no transceivers,
   no configuration) and power is measured for several ``k``;
3. ``P_linecard`` is the slope of the regression over ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import FittedValue, PowerModel
from repro.core.regression import LinearFit, linear_fit
from repro.hardware.modular import ModularRouter, linecard_spec
from repro.lab.power_meter import PowerMeter, summarize


@dataclass
class LinecardDerivationReport:
    """Diagnostics of one ``P_linecard`` derivation."""

    card_name: str
    counts: Tuple[int, ...]
    fit: LinearFit
    chassis_power_w: FittedValue

    @property
    def p_card(self) -> FittedValue:
        """The fitted per-card power term."""
        return FittedValue(value=self.fit.slope,
                           stderr=self.fit.slope_stderr)


class ModularOrchestrator:
    """Runs the linecard experiments against a modular DUT."""

    def __init__(self, dut: ModularRouter,
                 meter: Optional[PowerMeter] = None,
                 rng: Optional[np.random.Generator] = None):
        self.rng = rng if rng is not None else np.random.default_rng()
        self.dut = dut
        self.meter = meter if meter is not None else PowerMeter(rng=self.rng)
        self.meter.attach(dut.wall_power_w, channel=0)
        self._clock_s = 0.0

    def _measure_mean(self, duration_s: float, period_s: float,
                      settle_s: float) -> FittedValue:
        if settle_s > 0:
            self.dut.advance(settle_s)
            self._clock_s += settle_s
        samples = []
        for _ in range(max(2, int(round(duration_s / period_s)))):
            self.dut.advance(period_s)
            self._clock_s += period_s
            samples.append(self.meter.read(self._clock_s))
        summary = summarize(samples)
        return FittedValue(value=summary.mean_w, stderr=summary.sem_w)

    def _empty_chassis(self) -> None:
        for slot in range(self.dut.n_slots):
            self.dut.remove_linecard(slot)

    def measure_chassis(self, duration_s: float = 30.0,
                        period_s: float = 1.0,
                        settle_s: float = 5.0) -> FittedValue:
        """The Chassis experiment: no cards inserted."""
        self._empty_chassis()
        return self._measure_mean(duration_s, period_s, settle_s)

    def derive_linecard(self, card_name: str,
                        counts: Sequence[int] = (1, 2, 3, 4),
                        duration_s: float = 30.0, period_s: float = 1.0,
                        settle_s: float = 5.0) -> LinecardDerivationReport:
        """Fit ``P_linecard`` for one card product by varying the count."""
        card = linecard_spec(card_name)
        counts = tuple(sorted(set(counts)))
        if len(counts) < 2:
            raise ValueError(
                f"need at least two distinct card counts, got {counts}")
        if counts[-1] > self.dut.n_slots:
            raise ValueError(
                f"{self.dut.chassis.name} has {self.dut.n_slots} slots; "
                f"cannot insert {counts[-1]} x {card_name}")
        chassis_power = self.measure_chassis(duration_s, period_s, settle_s)
        points: List[Tuple[int, float]] = []
        for k in counts:
            self._empty_chassis()
            for slot in range(k):
                self.dut.insert_linecard(slot, card)
            measured = self._measure_mean(duration_s, period_s, settle_s)
            points.append((k, measured.value))
        self._empty_chassis()
        fit = linear_fit([p[0] for p in points], [p[1] for p in points])
        return LinecardDerivationReport(
            card_name=card_name, counts=counts, fit=fit,
            chassis_power_w=chassis_power)

    def derive_model(self, card_names: Sequence[str],
                     counts: Sequence[int] = (1, 2, 3, 4),
                     **measure_kwargs: object) -> Tuple[PowerModel,
                                                Dict[str,
                                                     LinecardDerivationReport]]:
        """A modular power model: chassis base + one P_linecard per card.

        Interface classes are *not* derived here -- run the standard
        fixed-chassis suites against a populated chassis for those; this
        keeps the two derivations orthogonal, as the paper suggests.
        """
        reports = {name: self.derive_linecard(name, counts, **measure_kwargs)
                   for name in card_names}
        chassis = self.measure_chassis(
            **{k: v for k, v in measure_kwargs.items()
               if k in ("duration_s", "period_s", "settle_s")})
        model = PowerModel(router_model=self.dut.chassis.name,
                           p_base_w=chassis)
        for name, report in reports.items():
            model.add_linecard_model(name, report.p_card)
        return model, reports
