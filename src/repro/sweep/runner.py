"""Sharded, multiprocess execution of scenario sweeps.

The runner expands a :class:`~repro.sweep.matrix.ScenarioMatrix` into
independent jobs and executes them across ``N`` worker processes, with
three hard guarantees (docs/SWEEP.md):

* **Worker-count invariance.**  Every job builds its fleet, traffic,
  and simulation from RNGs seeded by ``hash(root_seed, job_key)`` alone,
  and the report orders jobs by key -- so ``--workers 4`` produces a
  report bytewise identical to ``--workers 1``.
* **Resumability.**  The report is rewritten (atomically) after every
  completed job; a rerun with ``resume=True`` skips the jobs already
  present and converges on the same bytes as an uninterrupted run.
* **Observability without interference.**  Each job runs under its own
  :class:`~repro.obs.metrics.MetricsRegistry`; workers ship the state
  home and the parent merges in sorted-key order, so ``--metrics-out``
  sees fleet-wide totals while the simulation itself stays bit-exact.

Wall-clock timings never enter the deterministic report: per-job timing
rows go to a sibling ``*.bench.json`` file whose layout follows the
:mod:`repro.bench` schema v6 case entries (one engine key
per row; the other stays absent).

When tracing is active (``--trace-out``), every job runs under its own
:class:`~repro.obs.tracing.Tracer`; workers ship the per-job span tree
home over the result queue and the parent stitches the documents into
its tracer as ``subtraces`` in sorted job-key order -- one
``repro.obs.trace/v2`` document whose Chrome export renders each job as
its own pid row, byte-identical across worker counts modulo the
wall-clock readings inside.  Kernel profiles (``--profile-out``) ship
the same way: each job runs under its own
:class:`~repro.obs.profile.Profiler` and the parent merges them in
sorted-key order, so sweep-wide kernel totals are complete at any
worker count.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro import bench
from repro.hardware.psu import SharingPolicy
from repro.ioutil import atomic_write_text
from repro.monitor.aggregate import AggregatingObserver
from repro.network import (
    FleetTrafficModel,
    NetworkSimulation,
    SetAdminState,
    supports_vectorized,
)
from repro.obs import metrics, profile, tracing
from repro.obs.logging import get_logger
from repro.sleep import Hypnos, HypnosConfig, plan_savings
from repro.sweep.matrix import (
    JobSpec,
    SLEEP_PRESETS,
    ScenarioMatrix,
    TRAFFIC_PRESETS,
    build_topology,
)

#: Report schema identifier for sweep reports.
SCHEMA = "repro.sweep/v1"

_log = get_logger("sweep.runner")

M_JOBS = metrics.counter(
    "netpower_sweep_jobs_total",
    "Sweep jobs by outcome (ok / error / skipped-by-resume)",
    labels=("status",))
M_WORKERS = metrics.gauge(
    "netpower_sweep_workers",
    "Worker processes used by the last sweep run")
M_JOB_SECONDS = metrics.histogram(
    "netpower_sweep_job_seconds",
    "Wall-clock duration of one sweep job (build + plan + run)",
    buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0))


def _sleep_events(network, plan) -> List[SetAdminState]:
    """Turn a Hypnos :class:`SleepPlan` into admin-state toggle events.

    Both ends of a sleeping internal link are shut at the window start
    and unshut when a later window wakes the link; consecutive windows
    with the same sleeping set emit nothing.  Link ids are walked in
    sorted order so the event list (and thus the event-boundary column
    refreshes) is deterministic.
    """
    by_id = {link.link_id: link for link in network.internal_links()}
    events: List[SetAdminState] = []
    asleep: set = set()
    for window in plan.windows:
        target = set(window.sleeping)
        for link_id in sorted(target - asleep):
            link = by_id[link_id]
            for end in (link.a, link.b):
                events.append(SetAdminState(
                    at_s=window.t_start_s, hostname=end.hostname,
                    port_index=end.port_index, up=False))
        for link_id in sorted(asleep - target):
            link = by_id[link_id]
            for end in (link.a, link.b):
                events.append(SetAdminState(
                    at_s=window.t_start_s, hostname=end.hostname,
                    port_index=end.port_index, up=True))
        asleep = target
    return events


def run_job(spec: JobSpec, root_seed: int, engine: str = "auto",
            attribution: bool = False) -> Tuple[Dict, Dict]:
    """Execute one scenario; returns ``(report_entry, bench_row)``.

    The report entry contains only values that are deterministic in
    ``(spec, root_seed, engine)``; everything wall-clock lives in the
    bench row (a :mod:`repro.bench` schema-v6-shaped case entry).
    With ``attribution`` on, the entry gains an ``"attribution"`` key
    (the run's energy-ledger rollup); off adds no keys at all, keeping
    pre-attribution reports byte-identical.
    """
    t0 = time.perf_counter()
    seed = spec.seed(root_seed)
    with tracing.span("sweep.job", key=spec.key, seed=seed):
        network = build_topology(spec.topology,
                                 rng=np.random.default_rng(seed))
        policy = SharingPolicy(spec.psu)
        for router in network.routers.values():
            router.set_sharing_policy(policy)
        traffic = FleetTrafficModel(
            network, rng=np.random.default_rng(seed + 1),
            **TRAFFIC_PRESETS[spec.traffic])

        events: List[SetAdminState] = []
        sleep_section: Optional[Dict] = None
        sleep_config = SLEEP_PRESETS[spec.sleep]
        if sleep_config is not None:
            hypnos = Hypnos(network, traffic.matrix,
                            HypnosConfig(**sleep_config))
            plan = hypnos.plan(0.0, spec.duration_s)
            events = _sleep_events(network, plan)
            reference_w = network.total_wall_power_w()
            estimate = plan_savings(network, plan, reference_w)
            sleeping = plan.ever_sleeping()
            internal = network.internal_links()
            sleep_section = {
                "internal_links": len(internal),
                "ever_asleep": len(sleeping),
                "mean_sleep_fraction": round(
                    sum(plan.sleep_fraction(link.link_id)
                        for link in internal) / len(internal)
                    if internal else 0.0, 6),
                "saving_lower_w": round(estimate.lower_w, 6),
                "saving_upper_w": round(estimate.upper_w, 6),
                "saving_lower_fraction": round(estimate.lower_fraction, 8),
                "saving_upper_fraction": round(estimate.upper_fraction, 8),
            }

        if engine == "auto":
            engine = ("vector" if supports_vectorized(network)
                      else "object")
        sim = NetworkSimulation(network, traffic,
                                rng=np.random.default_rng(seed + 2))
        aggregate = sim.add_observer(AggregatingObserver())
        result = sim.run(duration_s=spec.duration_s, step_s=spec.step_s,
                         events=events, detailed_hosts=(), engine=engine,
                         attribution=attribution)

    fleet_shape = {
        "routers": len(network.routers),
        "ports": sum(len(r.ports) for r in network.routers.values()),
        "links": len(network.links),
    }
    n_steps = int(round(spec.duration_s / spec.step_s))
    entry = {
        "key": spec.key,
        "seed": seed,
        "scenario": {"topology": spec.topology, "traffic": spec.traffic,
                     "sleep": spec.sleep, "psu": spec.psu},
        "fleet": fleet_shape,
        "run": {"engine": engine, "n_steps": n_steps,
                "step_s": spec.step_s, "duration_s": spec.duration_s,
                "events": len(events)},
        "aggregates": aggregate.to_dict(),
        "power_median_w": round(result.network_median_power_w(), 6),
        "sleep": sleep_section,
    }
    if result.ledger is not None:
        entry["attribution"] = result.ledger.to_dict()
    wall_s = time.perf_counter() - t0
    M_JOB_SECONDS.observe(wall_s)
    bench_row = {
        "name": spec.key,
        **fleet_shape,
        "seed": seed,
        "n_steps": n_steps,
        "step_s": spec.step_s,
        engine: {
            "wall_s": round(wall_s, 4),
            "ms_per_step": round(units.s_to_ms(wall_s) / max(n_steps, 1), 4),
        },
    }
    return entry, bench_row


def _execute_job(spec: JobSpec, root_seed: int, engine: str,
                 collect_metrics: bool, attribution: bool,
                 capture_trace: bool = False,
                 trace_id: Optional[str] = None,
                 capture_profile: bool = False,
                 ) -> Tuple[str, str, object, object, Optional[Dict],
                            Optional[Dict],
                            Optional[profile.Profiler]]:
    """One job, optionally under a private registry; never raises.

    With ``capture_trace``, the job runs under a fresh per-job
    :class:`~repro.obs.tracing.Tracer` labelled with the job key and
    worker OS pid, and the exported span tree rides home as the sixth
    tuple slot -- the same code path inline and in a worker process, so
    the stitched document's *shape* does not depend on worker count.
    With ``capture_profile``, it likewise runs under a fresh per-job
    :class:`~repro.obs.profile.Profiler` that rides home as the seventh
    slot for the parent to merge, so ``--profile-out`` sees sweep-wide
    kernel totals at any worker count.
    """
    try:
        tracer: Optional[tracing.Tracer] = None
        scope = _KEEP_TRACER
        if capture_trace:
            tracer = tracing.Tracer(
                trace_id=trace_id,
                process={"job": spec.key, "os_pid": os.getpid()})
            scope = tracing.use_tracer(tracer)
        prof = profile.Profiler() if capture_profile else None
        prof_scope = (profile.use_profiler(prof) if capture_profile
                      else _KEEP_TRACER)
        with scope:
            with prof_scope:
                if collect_metrics:
                    with metrics.use_registry(
                            metrics.MetricsRegistry()) as registry:
                        entry, bench_row = run_job(spec, root_seed,
                                                   engine, attribution)
                    state = registry.snapshot_state()
                else:
                    entry, bench_row = run_job(spec, root_seed, engine,
                                               attribution)
                    state = None
        trace_doc = tracer.to_dict() if tracer is not None else None
        return ("ok", spec.key, entry, bench_row, state, trace_doc,
                prof)
    except Exception:
        return ("error", spec.key, traceback.format_exc(), None, None,
                None, None)


class _KeepTracerContext:
    """No-op stand-in for ``use_tracer`` when not capturing traces."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_KEEP_TRACER = _KeepTracerContext()


def _worker_main(task_queue, result_queue, root_seed: int, engine: str,
                 collect_metrics: bool, attribution: bool,
                 capture_trace: bool = False,
                 trace_id: Optional[str] = None,
                 capture_profile: bool = False) -> None:
    """Worker process loop: pull specs until the ``None`` sentinel."""
    while True:
        spec = task_queue.get()
        if spec is None:
            return
        result_queue.put(
            _execute_job(spec, root_seed, engine, collect_metrics,
                         attribution, capture_trace, trace_id,
                         capture_profile))


def _atomic_write(path: Path, text: str) -> None:
    """Crash-safe file replace (the resume state must never be torn)."""
    atomic_write_text(path, text)


def _report_document(matrix: ScenarioMatrix, root_seed: int, engine: str,
                     completed: Dict[str, Dict],
                     attribution: bool = False) -> Dict:
    document = {
        "schema": SCHEMA,
        "generated_by": "netpower sweep",
        "root_seed": root_seed,
        "engine": engine,
        "matrix": matrix.to_dict(),
        "n_jobs": matrix.n_jobs,
        "jobs": [completed[key] for key in sorted(completed)],
    }
    # Only stamped when on: attribution-off reports keep the exact
    # pre-attribution byte layout.
    if attribution:
        document["attribution"] = True
    return document


def _write_report(output: Path, document: Dict) -> None:
    _atomic_write(output, json.dumps(document, indent=2) + "\n")


def load_previous_jobs(output: Path, matrix: ScenarioMatrix,
                       root_seed: int, engine: str,
                       attribution: bool = False) -> Dict[str, Dict]:
    """Completed job entries from an existing report (resume support).

    Missing or unreadable reports mean a fresh start; a *readable*
    report whose matrix, seed, or engine differ raises -- silently
    grafting jobs from a different sweep onto this one would corrupt
    the determinism guarantee resume exists to preserve.
    """
    if not output.exists():
        return {}
    try:
        previous = json.loads(output.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if not isinstance(previous, dict) or previous.get("schema") != SCHEMA:
        return {}
    for field, expected in (("root_seed", root_seed), ("engine", engine),
                            ("matrix", matrix.to_dict())):
        if previous.get(field) != expected:
            raise ValueError(
                f"cannot resume into {output}: its {field} "
                f"({previous.get(field)!r}) differs from this run's "
                f"({expected!r}); use a fresh output path")
    if bool(previous.get("attribution", False)) != attribution:
        raise ValueError(
            f"cannot resume into {output}: it was written with "
            f"attribution={bool(previous.get('attribution', False))}, "
            f"this run has attribution={attribution}; use a fresh "
            f"output path")
    jobs = previous.get("jobs")
    if not isinstance(jobs, list):
        return {}
    return {job["key"]: job for job in jobs
            if isinstance(job, dict) and isinstance(job.get("key"), str)}


def _write_bench_rows(bench_output: Path, root_seed: int,
                      step_s: float, rows: Dict[str, Dict]) -> None:
    """Per-job timing rows as a :mod:`repro.bench` schema v6 report.

    Re-run jobs replace their previous rows, kept rows survive (the
    same merge contract as ``repro.bench.run_benchmarks``), and the
    wall-clock numbers stay out of the deterministic sweep report.
    """
    merged = bench.previous_cases(bench_output)
    merged.update(rows)
    document = {
        "schema": bench.SCHEMA,
        "generated_by": "netpower sweep",
        "seed": root_seed,
        "step_s": step_s,
        "cases": [merged[name] for name in sorted(merged)],
    }
    _atomic_write(bench_output, json.dumps(document, indent=2) + "\n")


def default_bench_output(output: Path) -> Path:
    """Where a sweep's timing rows land: ``<report stem>.bench.json``."""
    return output.with_name(output.stem + ".bench.json")


def run_sweep(matrix: ScenarioMatrix,
              root_seed: int = 7,
              workers: int = 1,
              jobs: Optional[Sequence[JobSpec]] = None,
              resume: bool = False,
              output: Optional[Path] = None,
              bench_output: Optional[Path] = None,
              engine: str = "auto",
              attribution: bool = False,
              progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run (part of) a scenario matrix and return the report document.

    Parameters
    ----------
    matrix:
        The declarative scenario matrix.
    root_seed:
        Root of every per-job seed derivation.
    workers:
        Worker processes; ``1`` runs jobs inline (same code path, same
        bytes).  Capped at the number of jobs to run.
    jobs:
        Explicit job subset (e.g. one shard from
        :func:`repro.sweep.matrix.shard_jobs`); defaults to the full
        expansion of ``matrix``.
    resume:
        Skip jobs whose keys already sit in the report at ``output``.
    output:
        Report path.  Rewritten atomically after every completed job;
        required when ``resume`` is set.
    bench_output:
        Timing-row path (default: next to ``output``; timings are
        dropped entirely when both are ``None``).
    engine:
        Simulation engine for every job (``auto`` resolves per fleet).
    attribution:
        Attach the energy attribution ledger to every job and include
        its per-job rollup in the report.  The report gains a top-level
        ``"attribution": true`` stamp; resume refuses to mix reports
        written with a different setting.
    progress:
        Callback for one-line progress messages (completion order, so
        only the report -- not the callback stream -- is deterministic).
    """
    from repro.sweep.matrix import expand

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if resume and output is None:
        raise ValueError("resume requires an output path to resume from")
    say = progress if progress is not None else (lambda message: None)
    job_list = list(jobs) if jobs is not None else expand(matrix)
    output = Path(output) if output is not None else None

    completed: Dict[str, Dict] = {}
    if resume and output is not None:
        completed = load_previous_jobs(output, matrix, root_seed, engine,
                                       attribution)
        kept = [job.key for job in job_list if job.key in completed]
        if kept:
            M_JOBS.labels(status="skipped").inc(len(kept))
            say(f"resume: {len(kept)} of {len(job_list)} job(s) already "
                f"in {output}")
    to_run = [job for job in job_list if job.key not in completed]
    n_workers = max(1, min(workers, len(to_run)))
    collect_metrics = metrics.enabled()
    # Captured parent-side: forked workers inherit a *copy* of the
    # parent tracer, so span trees must ship home explicitly.
    capture_trace = tracing.enabled()
    trace_id = f"sweep-{root_seed}" if capture_trace else None
    capture_profile = profile.enabled()

    bench_rows: Dict[str, Dict] = {}
    metric_states: Dict[str, Dict] = {}
    job_traces: Dict[str, Dict] = {}
    job_profiles: Dict[str, profile.Profiler] = {}
    failures: Dict[str, str] = {}

    def absorb(status: str, key: str, payload, bench_row, state,
               trace_doc, job_prof) -> None:
        if status != "ok":
            failures[key] = payload
            M_JOBS.labels(status="error").inc()
            say(f"job {key} FAILED")
            return
        completed[key] = payload
        bench_rows[key] = bench_row
        if state is not None:
            metric_states[key] = state
        if trace_doc is not None:
            job_traces[key] = trace_doc
        if job_prof is not None:
            job_profiles[key] = job_prof
        M_JOBS.labels(status="ok").inc()
        if output is not None:
            _write_report(output, _report_document(
                matrix, root_seed, engine, completed, attribution))
        aggregates = payload["aggregates"]
        say(f"job {key}: mean {aggregates['mean_power_w']:,.0f} W over "
            f"{aggregates['steps']} steps "
            f"[{len(completed)}/{len(job_list)}]")

    # Worker count stays out of the span attributes on purpose: it is
    # already the netpower_sweep_workers gauge, and omitting it keeps
    # the stitched trace byte-identical across --workers settings
    # (modulo the wall-clock readings).
    with tracing.span("sweep.run", n_jobs=len(job_list),
                      to_run=len(to_run), root_seed=root_seed):
        if n_workers == 1 or len(to_run) <= 1:
            for spec in to_run:
                absorb(*_execute_job(spec, root_seed, engine,
                                     collect_metrics, attribution,
                                     capture_trace, trace_id,
                                     capture_profile))
        else:
            context = multiprocessing.get_context()
            task_queue = context.Queue()
            result_queue = context.Queue()
            for spec in to_run:
                task_queue.put(spec)
            for _ in range(n_workers):
                task_queue.put(None)
            procs = [
                context.Process(
                    target=_worker_main,
                    args=(task_queue, result_queue, root_seed, engine,
                          collect_metrics, attribution, capture_trace,
                          trace_id, capture_profile),
                    daemon=True)
                for _ in range(n_workers)
            ]
            for proc in procs:
                proc.start()
            try:
                for _ in range(len(to_run)):
                    absorb(*result_queue.get())
            finally:
                for proc in procs:
                    proc.join(timeout=30.0)
                    if proc.is_alive():
                        proc.terminate()

        # Merge worker metrics in sorted-key order: counters and
        # histograms are order-free, gauges become deterministic.
        registry = metrics.get_registry()
        if registry is not None:
            for key in sorted(metric_states):
                registry.merge_state(metric_states[key])
        # After the merge: worker snapshots carry every declared gauge
        # (including this one, at zero) and gauges merge last-writer-wins.
        M_WORKERS.set(n_workers)
        # Stitch per-job span trees into the parent tracer in sorted
        # job-key order -- the document's structure is then a function
        # of the jobs alone, not of worker count or completion order.
        tracer = tracing.get_tracer()
        if tracer is not None and job_traces:
            tracer.trace_id = trace_id
            tracer.subtraces.extend(
                job_traces[key] for key in sorted(job_traces))
        # Merge per-job kernel profiles the same way, so --profile-out
        # reports sweep-wide totals regardless of worker count.
        session_prof = profile.get_profiler()
        if session_prof is not None:
            for key in sorted(job_profiles):
                session_prof.merge(job_profiles[key])

    if bench_rows and (bench_output is not None or output is not None):
        bench_path = (Path(bench_output) if bench_output is not None
                      else default_bench_output(output))
        _write_bench_rows(bench_path, root_seed, matrix.step_s, bench_rows)

    document = _report_document(matrix, root_seed, engine, completed,
                                attribution)
    if output is not None:
        _write_report(output, document)
    _log.info("sweep complete",
              extra={"jobs": len(job_list), "ran": len(to_run),
                     "failed": len(failures), "workers": n_workers})
    if failures:
        details = "\n\n".join(
            f"[{key}]\n{trace}" for key, trace in sorted(failures.items()))
        raise RuntimeError(
            f"{len(failures)} sweep job(s) failed "
            f"({len(completed)} completed and saved):\n{details}")
    return document
