"""Sharded, multiprocess scenario sweeps over the fleet simulation.

* :mod:`repro.sweep.matrix` -- the declarative scenario matrix (topology
  x traffic x sleep policy x PSU sharing) and its deterministic per-job
  seeding;
* :mod:`repro.sweep.runner` -- job execution across worker processes,
  resume-able report assembly, and cross-process metrics merging.

The headline guarantee: a sweep report is a pure function of
``(matrix, root_seed, engine)`` -- worker count, sharding, resume
boundaries, and completion order never change a byte (docs/SWEEP.md).
"""

from repro.sweep.matrix import (
    AXES,
    JobSpec,
    MATRIX_PRESETS,
    PSU_PRESETS,
    ScenarioMatrix,
    SLEEP_PRESETS,
    TOPOLOGY_PRESETS,
    TRAFFIC_PRESETS,
    build_topology,
    expand,
    parse_shard,
    shard_jobs,
    topology_config,
    topology_preset_names,
)
from repro.sweep.runner import (
    SCHEMA,
    default_bench_output,
    load_previous_jobs,
    run_job,
    run_sweep,
)

__all__ = [
    "AXES",
    "JobSpec",
    "MATRIX_PRESETS",
    "PSU_PRESETS",
    "ScenarioMatrix",
    "SLEEP_PRESETS",
    "TOPOLOGY_PRESETS",
    "TRAFFIC_PRESETS",
    "build_topology",
    "expand",
    "parse_shard",
    "shard_jobs",
    "topology_config",
    "topology_preset_names",
    "SCHEMA",
    "default_bench_output",
    "load_previous_jobs",
    "run_job",
    "run_sweep",
]
