"""Declarative scenario matrices for fleet-simulation sweeps.

A :class:`ScenarioMatrix` names one preset per axis value -- topology
size x traffic profile x sleep policy x PSU sharing configuration --
plus the simulated duration and step.  :func:`expand` takes the cross
product and yields one :class:`JobSpec` per combination, each carrying a
stable ``key`` and a deterministic per-job seed derived as
``hash(root_seed, key)`` (a keyed BLAKE2 digest, *not* Python's salted
``hash``), so every job's RNG streams are independent of which worker
process runs it, in which order, and alongside which other jobs.  That
seed derivation is what makes a sharded run bitwise-identical to a
serial one (docs/SWEEP.md).

Presets are plain dictionaries of constructor keyword arguments so a
matrix serialises losslessly to JSON (``to_dict``/``from_dict``) and a
:class:`JobSpec` crosses process boundaries as a few short strings.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.network.synth import SYNTH_PRESETS
from repro.network.topology import FleetConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.network.topology import ISPNetwork

#: Fleet compositions, smallest first.  ``tiny`` mirrors the CLI monitor
#: scenario (5 routers), ``small`` the bench harness's small case, and
#: ``full`` is the paper's 107-router Switch-like fleet.  Generated
#: multi-tier fleets (``synth-*``, docs/TOPOLOGY.md) are valid topology
#: preset names too; :func:`build_topology` dispatches between the two
#: generators.
TOPOLOGY_PRESETS: Dict[str, Dict] = {
    "tiny": dict(
        model_counts=(("8201-32FH", 1), ("NCS-55A1-24H", 2),
                      ("ASR-920-24SZ-M", 2)),
        n_regional_pops=1, core_core_links=1),
    "small": dict(
        model_counts=(("8201-32FH", 2), ("NCS-55A1-24H", 2),
                      ("NCS-55A1-24Q6H-SS", 2), ("ASR-920-24SZ-M", 4),
                      ("N540-24Z8Q2C-M", 2)),
        n_regional_pops=2, core_core_links=2),
    "full": dict(),
}

#: Traffic regimes (``FleetTrafficModel`` keyword arguments).  ``quiet``
#: is the paper's ~1.3 % mean external utilisation; ``busy`` pushes both
#: external demand and the internal matrix toward a loaded network.
TRAFFIC_PRESETS: Dict[str, Dict] = {
    "quiet": dict(mean_external_utilisation=0.013, n_demands=200),
    "busy": dict(mean_external_utilisation=0.05, n_demands=400,
                 internal_utilisation_scale=4.0),
    "peaky": dict(mean_external_utilisation=0.03, n_demands=300,
                  internal_utilisation_scale=2.0),
}

#: Link-sleeping policies (§8).  ``None`` disables sleeping; otherwise
#: the dict feeds :class:`repro.sleep.HypnosConfig` and the plan's
#: window boundaries become ``SetAdminState`` events in the run.
SLEEP_PRESETS: Dict[str, Optional[Dict]] = {
    "none": None,
    "hypnos-50": dict(max_utilisation=0.5, require_redundancy=True),
    "hypnos-30": dict(max_utilisation=0.3, require_redundancy=True),
    "hypnos-aggressive": dict(max_utilisation=0.5,
                              require_redundancy=False),
}

#: PSU sharing configurations (§9.3.4), values of
#: :class:`repro.hardware.psu.SharingPolicy` applied fleet-wide.
PSU_PRESETS: Tuple[str, ...] = ("balanced", "single", "hot-standby")

#: Axis order used for job keys and the expansion product.
AXES = ("topology", "traffic", "sleep", "psu")


def topology_config(name: str) -> FleetConfig:
    """The :class:`FleetConfig` behind a topology preset name."""
    return FleetConfig(**TOPOLOGY_PRESETS[name])


def topology_preset_names() -> Tuple[str, ...]:
    """Every valid topology preset: Switch-like plus synth fleets."""
    return tuple(sorted(TOPOLOGY_PRESETS)) + tuple(sorted(SYNTH_PRESETS))


def build_topology(name: str,
                   rng: "np.random.Generator") -> "ISPNetwork":
    """Build the fleet behind a topology preset name.

    Switch-like presets go through :func:`build_switch_like_network`,
    ``synth-*`` presets through :func:`generate_synth_network`; both are
    deterministic in ``rng``.
    """
    from repro.network.synth import generate_synth_network, synth_config
    from repro.network.topology import build_switch_like_network

    if name in TOPOLOGY_PRESETS:
        return build_switch_like_network(topology_config(name), rng=rng)
    if name in SYNTH_PRESETS:
        return generate_synth_network(synth_config(name), rng=rng)
    raise ValueError(f"unknown topology preset {name!r}; "
                     f"choose from {sorted(topology_preset_names())}")


@dataclass(frozen=True)
class JobSpec:
    """One fully specified scenario: a point of the matrix cross product.

    Only preset *names* and scalars live here, so a spec pickles cheaply
    to worker processes and its key is a stable, human-readable job
    identity (also the resume key in sweep reports).
    """

    topology: str
    traffic: str
    sleep: str
    psu: str
    duration_s: float
    step_s: float

    @property
    def key(self) -> str:
        """Stable identity, e.g. ``tiny/quiet/none/balanced``."""
        return "/".join((self.topology, self.traffic, self.sleep, self.psu))

    def seed(self, root_seed: int) -> int:
        """Deterministic per-job seed: ``hash(root_seed, key)``.

        A keyed BLAKE2b digest of the job key -- stable across processes,
        platforms, and Python versions (unlike the builtin salted
        ``hash``), and independent of the job's position in the matrix,
        so adding scenarios never reseeds existing ones.
        """
        digest = hashlib.blake2b(
            self.key.encode("utf-8"),
            key=str(int(root_seed)).encode("utf-8"),
            digest_size=8).digest()
        return int.from_bytes(digest, "big") >> 1   # fit a non-negative i64


@dataclass(frozen=True)
class ScenarioMatrix:
    """The declarative sweep description: preset names per axis.

    The cross product of the four axes defines the job list; duration
    and step apply to every job.  See docs/SWEEP.md for the JSON form.
    """

    topologies: Tuple[str, ...] = ("tiny",)
    traffics: Tuple[str, ...] = ("quiet",)
    sleeps: Tuple[str, ...] = ("none",)
    psus: Tuple[str, ...] = ("balanced",)
    duration_s: float = 6 * 3600.0
    step_s: float = 900.0

    def __post_init__(self):
        all_topologies = dict.fromkeys(TOPOLOGY_PRESETS)
        all_topologies.update(dict.fromkeys(SYNTH_PRESETS))
        for axis, names, known in (
                ("topologies", self.topologies, all_topologies),
                ("traffics", self.traffics, TRAFFIC_PRESETS),
                ("sleeps", self.sleeps, SLEEP_PRESETS),
                ("psus", self.psus, dict.fromkeys(PSU_PRESETS))):
            if not names:
                raise ValueError(f"matrix axis {axis} must not be empty")
            unknown = [n for n in names if n not in known]
            if unknown:
                raise ValueError(
                    f"unknown {axis} preset(s) {unknown}; "
                    f"choose from {sorted(known)}")
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate names on axis {axis}: {names}")
        if self.duration_s <= 0 or self.step_s <= 0:
            raise ValueError("duration_s and step_s must be positive")

    @property
    def n_jobs(self) -> int:
        """Number of jobs in the full cartesian product."""
        return (len(self.topologies) * len(self.traffics)
                * len(self.sleeps) * len(self.psus))

    def to_dict(self) -> Dict:
        """The JSON-able declarative form (docs/SWEEP.md)."""
        return {
            "topologies": list(self.topologies),
            "traffics": list(self.traffics),
            "sleeps": list(self.sleeps),
            "psus": list(self.psus),
            "duration_s": self.duration_s,
            "step_s": self.step_s,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioMatrix":
        """Parse the JSON form; unknown keys are rejected loudly."""
        if not isinstance(data, dict):
            raise ValueError(f"matrix document must be an object, "
                             f"got {type(data).__name__}")
        known = {"topologies", "traffics", "sleeps", "psus",
                 "duration_s", "step_s"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown matrix key(s) {sorted(unknown)}; "
                             f"expected a subset of {sorted(known)}")
        kwargs = dict(data)
        for axis in ("topologies", "traffics", "sleeps", "psus"):
            if axis in kwargs:
                kwargs[axis] = tuple(kwargs[axis])
        return cls(**kwargs)


def expand(matrix: ScenarioMatrix) -> List[JobSpec]:
    """The matrix cross product as an ordered job list.

    Order follows the declared axis order (topology outermost, PSU
    innermost); it determines shard assignment but never results --
    each job's seed depends only on its key.
    """
    return [
        JobSpec(topology=topo, traffic=traffic, sleep=sleep, psu=psu,
                duration_s=matrix.duration_s, step_s=matrix.step_s)
        for topo, traffic, sleep, psu in itertools.product(
            matrix.topologies, matrix.traffics, matrix.sleeps, matrix.psus)
    ]


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``"I/M"`` (e.g. ``0/4``) into a (index, count) pair."""
    try:
        index_s, count_s = text.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise ValueError(
            f"shard must look like I/M (e.g. 0/4), got {text!r}") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must satisfy 0 <= I < M, got {text!r}")
    return index, count


def shard_jobs(jobs: Sequence[JobSpec], index: int,
               count: int) -> List[JobSpec]:
    """The ``index``-th of ``count`` round-robin shards of the job list.

    Every job lands in exactly one shard; running all shards (in any
    order, e.g. via ``--resume`` into one report) covers the matrix.
    """
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"invalid shard {index}/{count}")
    return [job for i, job in enumerate(jobs) if i % count == index]


#: Ready-made matrices for the CLI (``netpower sweep --preset``).
#: ``demo`` is the four-job smoke matrix CI compares across worker
#: counts; ``sleep-policy`` is the §8 policy sweep of
#: ``examples/sleep_policy_sweep.py``; ``psu`` sweeps §9.3.4 sharing
#: configurations over two fleet sizes.
MATRIX_PRESETS: Dict[str, ScenarioMatrix] = {
    "demo": ScenarioMatrix(
        topologies=("tiny",), traffics=("quiet", "busy"),
        sleeps=("none", "hypnos-50"), psus=("balanced",),
        duration_s=6 * 3600.0, step_s=900.0),
    "sleep-policy": ScenarioMatrix(
        topologies=("tiny", "small"), traffics=("quiet",),
        sleeps=("none", "hypnos-50", "hypnos-30", "hypnos-aggressive"),
        psus=("balanced",),
        duration_s=24 * 3600.0, step_s=900.0),
    "psu": ScenarioMatrix(
        topologies=("tiny", "small"), traffics=("quiet", "busy"),
        sleeps=("none",), psus=("balanced", "single", "hot-standby"),
        duration_s=12 * 3600.0, step_s=900.0),
    # A generated >=1k-router fleet through the whole sweep pipeline:
    # exercises the synth generator and the incremental engine at scale.
    "topo-xl": ScenarioMatrix(
        topologies=("synth-1k",), traffics=("quiet",),
        sleeps=("none",), psus=("balanced",),
        duration_s=3 * 3600.0, step_s=900.0),
}
