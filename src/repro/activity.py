"""The shared idle/active boundary predicates.

Two distinct notions of "this port is doing something" exist in the
codebase, and both used to be spelled inline wherever an active-port
set was built:

* **Prediction-side** (:func:`prediction_active`): an interface counts
  as *active* when its observed SNMP packet rate exceeds a small
  threshold.  The threshold absorbs counter noise -- a truly idle
  interface still shows the odd keepalive packet -- and is the paper's
  §6.2 idle/unplugged heuristic.  ``predict_trace``, the serve
  prediction cache, and any batched matrix evaluation must all sit on
  the *same* side of this boundary for the same input, or the cached
  tier diverges from the full tier at exactly ``pps == threshold``.
* **Truth-side** (:func:`carrying_traffic` /
  :func:`carrying_traffic_mask`): a simulated port draws dynamic power
  when it carries any traffic at all.  The object engine and the
  columnar vector engine must agree bit-for-bit, so both call the
  predicates defined here instead of re-deriving ``!= 0`` masks.

Keeping both comparisons in one leaf module (importable before the
rest of the package, like :mod:`repro.units`) means the boundary can
never silently fork between layers.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "ACTIVE_PPS_THRESHOLD",
    "prediction_active",
    "carrying_traffic",
    "carrying_traffic_mask",
]

#: Packet rate (packets/s, both directions) above which a deployed
#: interface counts as *active* for prediction purposes.  Exactly at
#: the threshold is idle: the comparison is strict.
ACTIVE_PPS_THRESHOLD: float = 1e-3

#: Scalar or numpy array of packet rates.
PpsLike = Union[float, np.ndarray]


def prediction_active(pps: PpsLike,
                      threshold: float = ACTIVE_PPS_THRESHOLD
                      ) -> Union[bool, np.ndarray]:
    """Whether an observed packet rate counts as active (strict ``>``).

    Works elementwise on arrays and on scalars; every prediction path
    (trace, instant, serve cache, batched matrix) must route through
    this single comparison.
    """
    return pps > threshold


def carrying_traffic(rx_bps: float, tx_bps: float) -> bool:
    """Truth-side predicate: does a simulated port carry any traffic?

    A port with a non-zero rate in either direction draws dynamic
    power.  The scalar twin of :func:`carrying_traffic_mask`; the
    object engine uses this one, the vector engine the mask, and both
    compile to the same IEEE comparison.
    """
    return rx_bps != 0.0 or tx_bps != 0.0


def carrying_traffic_mask(rx_bps: np.ndarray,
                          tx_bps: np.ndarray) -> np.ndarray:
    """Columnar twin of :func:`carrying_traffic` for the vector engine."""
    return (rx_bps != 0.0) | (tx_bps != 0.0)
