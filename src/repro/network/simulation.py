"""Time-stepped simulation of the ISP fleet under monitoring.

This is the stand-in for "running the Switch network for weeks while the
collectors watch": at every step the traffic model assigns loads to every
interface, routers advance (counters accumulate, ambient noise drifts),
due operational events fire, and the SNMP collector and any deployed
Autopower units take their samples.

The result object carries everything the §6-§9 analyses need: per-router
SNMP power traces, interface counter traces for the detailed routers,
Autopower ground truth, the one-time PSU sensor export, and the
network-wide power/traffic series of Fig. 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

import numpy as np

from repro import units
from repro.network.events import FleetEvent
from repro.network.topology import ISPNetwork, Link
from repro.network.traffic import FleetTrafficModel
from repro.obs import metrics, profile, tracing
from repro.obs.logging import get_logger
from repro.telemetry.autopower import (AutopowerClient, AutopowerServer,
                                       Transport, deploy_unit)
from repro.telemetry.snmp import PsuSensorExport, RouterTrace, SnmpCollector
from repro.telemetry.traces import TimeSeries

if TYPE_CHECKING:
    from repro.network.engine import VectorizedEngine
    from repro.obs.ledger import LedgerAccumulator

#: Average payload size assigned to fleet traffic (IMIX-flavoured).
FLEET_PACKET_BYTES = 700.0

_log = get_logger("network.sim")

#: Step latencies span ~50 us (vector) to ~10 ms (object, big fleets).
STEP_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 1.0)

M_ENGINE_RUNS = metrics.counter(
    "netpower_sim_engine_runs_total",
    "Simulation runs started, by engine actually used", labels=("engine",))
M_ENGINE_FALLBACK = metrics.counter(
    "netpower_sim_engine_fallback_total",
    "engine='auto' selections that fell back to the object loop")
M_STEPS = metrics.counter(
    "netpower_sim_steps_total",
    "Simulation steps executed, by engine", labels=("engine",))
M_EVENTS = metrics.counter(
    "netpower_sim_events_fired_total",
    "Operational fleet events fired, by event type", labels=("type",))
M_SNMP_POLLS = metrics.counter(
    "netpower_sim_snmp_polls_total",
    "SNMP collector poll rounds taken during simulation")
M_STEP_SECONDS = metrics.histogram(
    "netpower_sim_step_seconds",
    "Wall-clock latency of one simulation step", labels=("engine",),
    buckets=STEP_LATENCY_BUCKETS)
M_FLEET_POWER = metrics.gauge(
    "netpower_sim_fleet_power_watts",
    "Network-wide wall power at the last simulated step")
M_FLEET_TRAFFIC = metrics.gauge(
    "netpower_sim_fleet_traffic_bps",
    "Total external ingress traffic at the last simulated step")


@dataclass(frozen=True)
class StepSnapshot:
    """What a :class:`StepObserver` sees after each simulation step.

    Values are read-only copies of the step's fresh state; observers must
    never mutate routers or draw from simulation RNG streams (the same
    contract as the obs instruments: byte-identical results with or
    without observers attached).
    """

    #: Step index (0-based) and the sample timestamp (end of the step).
    step: int
    t_s: float
    step_s: float
    total_power_w: float
    total_traffic_bps: float
    #: Per-router wall power, in fleet iteration order.
    power_by_host: Dict[str, float]
    #: Whether the SNMP collector polled on this step.
    snmp_polled: bool
    #: Fleet-level watts per attribution component, keyed by
    #: :data:`repro.obs.ledger.COMPONENTS` name -- ``None`` unless the
    #: run's energy ledger is active.
    attribution: Optional[Dict[str, float]] = None


class StepObserver:
    """Hook invoked identically by both simulation engines.

    Subclass and override what you need; every method is a no-op by
    default.  Observers attach via :meth:`NetworkSimulation.add_observer`
    and receive one :class:`StepSnapshot` per step, *after* the step's
    SNMP poll and Autopower ticks -- so collector state and meter buffers
    are current when ``on_step`` runs.
    """

    def view_hosts(self) -> Sequence[str]:
        """Hostnames whose Port/router objects must stay fresh per step.

        The vectorized engine keeps only these routers' objects in sync
        with the columnar state during the run (the same mechanism that
        serves Autopower meters); list every router the observer reads
        object state from (``wall_power_w``, ``device_power_w``, port
        traffic).
        """
        return ()

    def on_run_start(self, sim: "NetworkSimulation", engine: str,
                     collector: SnmpCollector, step_s: float,
                     n_steps: int) -> None:
        """Called once before the first step of a run."""

    def on_step(self, snapshot: StepSnapshot) -> None:
        """Called after every step with that step's fresh state."""

    def on_run_end(self, result: "SimulationResult") -> None:
        """Called once after the run's result object is assembled."""


@dataclass
class SimulationResult:
    """Everything recorded during one fleet simulation run."""

    #: Network-wide totals on the simulation step grid (Fig. 1).
    total_power: TimeSeries
    total_traffic_bps: TimeSeries
    #: Finalised SNMP traces per router.
    snmp: Dict[str, RouterTrace]
    #: External (Autopower) power series per instrumented router.
    autopower: Dict[str, TimeSeries]
    #: One-time PSU sensor export taken at the end of the run (§9.2).
    sensor_exports: List[PsuSensorExport]
    #: Per-router, per-component energy ledger (``None`` unless the run
    #: was started with ``attribution=True``).
    ledger: Optional["LedgerAccumulator"] = None

    def network_median_power_w(self) -> float:
        """Median of the total network power over the run."""
        return self.total_power.median()


class NetworkSimulation:
    """Drives an :class:`ISPNetwork` through simulated wall-clock time."""

    def __init__(self, network: ISPNetwork, traffic: FleetTrafficModel,
                 rng: Optional[np.random.Generator] = None,
                 start_s: float = 0.0):
        self.network = network
        self.traffic = traffic
        self.rng = rng if rng is not None else np.random.default_rng()
        self.clock_s = start_s
        self.autopower_server = AutopowerServer()
        self.autopower_clients: Dict[str, AutopowerClient] = {}
        self.observers: List[StepObserver] = []
        self._new_external_link_ids: Set[int] = set()
        #: Engine retained from the last ``engine="vector"`` run so
        #: callers (the bench ladder) can read its memory footprint.
        self.last_vector_engine: Optional[VectorizedEngine] = None

    # -- observers ------------------------------------------------------------------

    def add_observer(self, observer: StepObserver) -> StepObserver:
        """Attach a step observer (e.g. the fleet monitor) to this sim."""
        self.observers.append(observer)
        return observer

    def _view_hosts(self) -> tuple:
        """Routers whose objects the vector engine must keep synced:
        Autopower'd hosts plus everything the observers ask for."""
        hosts = dict.fromkeys(self.autopower_clients)
        for observer in self.observers:
            for host in observer.view_hosts():
                if host in self.network.routers:
                    hosts.setdefault(host)
        return tuple(hosts)

    # -- hooks used by events ------------------------------------------------------

    def deploy_autopower(self, hostname: str,
                         transport: Optional[Transport] = None,
                         ) -> AutopowerClient:
        """Install an Autopower unit on a router (power-cycles it).

        ``transport`` lets callers inject uplink outages on the unit.
        """
        router = self.network.router(hostname)
        client = deploy_unit(router, self.autopower_server,
                             rng=np.random.default_rng(
                                 self.rng.integers(2 ** 63)),
                             transport=transport)
        self.autopower_clients[hostname] = client
        return client

    def on_topology_change(self, new_external: Optional[Link] = None) -> None:
        """Notify the traffic model that links were added or removed."""
        if new_external is not None:
            self._new_external_link_ids.add(new_external.link_id)

    # -- traffic application ----------------------------------------------------------

    def _apply_traffic(self, t_s: float) -> float:
        """Set offered traffic on every port; returns total ingress bps."""
        external_rates = self.traffic.external_rates_at(t_s)
        internal_rates = self.traffic.internal_rates_at(t_s)
        total_ingress = 0.0
        for link in self.network.links:
            port_a = self.network.port_of(link.a)
            if link.is_internal:
                rate = internal_rates.get(link.link_id, 0.0)
                rate = min(rate, 0.95 * units.gbps_to_bps(link.speed_gbps))
                port_b = self.network.port_of(link.b)
                port_a.offer_traffic(rx_bps=rate, tx_bps=rate,
                                     packet_bytes=FLEET_PACKET_BYTES)
                port_b.offer_traffic(rx_bps=rate, tx_bps=rate,
                                     packet_bytes=FLEET_PACKET_BYTES)
            else:
                rate = external_rates.get(link.link_id, 0.0)
                if rate == 0.0 and link.link_id in self._new_external_link_ids:
                    # Links added mid-run get a modest default demand.
                    rate = 0.02 * units.gbps_to_bps(link.speed_gbps)
                if not port_a.link_up:
                    rate = 0.0
                port_a.offer_traffic(rx_bps=rate, tx_bps=rate,
                                     packet_bytes=FLEET_PACKET_BYTES)
                total_ingress += rate
        return total_ingress

    # -- the main loop -------------------------------------------------------------------

    def run(self, duration_s: float, step_s: float = 300.0,
            events: Sequence[FleetEvent] = (),
            snmp_period_s: float = units.SNMP_POLL_PERIOD_S,
            detailed_hosts: Optional[Sequence[str]] = None,
            engine: str = "auto",
            attribution: bool = False) -> SimulationResult:
        """Simulate ``duration_s`` seconds of fleet operation.

        Parameters
        ----------
        duration_s, step_s:
            Total simulated time and the stepping resolution.  Traffic,
            counters, and Autopower samples are updated once per step;
            SNMP polls happen every ``snmp_period_s`` (at least once per
            step).
        events:
            Operational events; each fires once when the clock passes its
            ``at_s``.
        detailed_hosts:
            Routers whose interface counters are recorded (all routers'
            power is always recorded).  Defaults to the Autopower'd hosts
            plus any event targets; pass explicitly for full control.
        engine:
            ``"auto"`` (default) uses the vectorized fast path when the
            fleet supports it, ``"vector"`` forces it (raising if the
            fleet does not support it), ``"object"`` forces the original
            per-object loop.  See :mod:`repro.network.engine`; results
            agree within float tolerance (docs/PERFORMANCE.md).
        attribution:
            When ``True``, run an energy attribution ledger alongside the
            simulation: every step each router's wall power is split into
            the named :data:`repro.obs.ledger.COMPONENTS` and checked
            against a hard conservation invariant.  The ledger rides the
            result as ``result.ledger``; attribution never touches
            simulation state or RNG streams, so results are byte-identical
            either way.
        """
        if step_s <= 0 or duration_s <= 0:
            raise ValueError("duration and step must be positive")
        if engine not in ("auto", "vector", "object"):
            raise ValueError(
                f"engine must be 'auto', 'vector' or 'object', got {engine!r}")
        from repro.network.engine import VectorizedEngine, supports_vectorized
        requested = engine
        if engine == "auto":
            engine = ("vector" if supports_vectorized(self.network)
                      else "object")
            if engine == "object":
                M_ENGINE_FALLBACK.inc()
                _log.info("fleet not vectorizable; falling back to the "
                          "object engine")
        elif engine == "vector" and not supports_vectorized(self.network):
            raise ValueError(
                "fleet has PSU configurations the vectorized engine cannot "
                "evaluate; use engine='auto' or engine='object'")
        pending = sorted(events, key=lambda e: e.at_s)
        if detailed_hosts is None:
            detailed = {getattr(e, "hostname", "") for e in pending}
            detailed.discard("")
            detailed |= set(self.autopower_clients)
            detailed_hosts = sorted(h for h in detailed
                                    if h in self.network.routers)
        collector = SnmpCollector(
            list(self.network.routers.values()),
            detailed_hosts=detailed_hosts)
        ledger: Optional["LedgerAccumulator"] = None
        if attribution:
            from repro.obs.ledger import LedgerAccumulator
            ledger = LedgerAccumulator(list(self.network.routers),
                                       track_series=tracing.enabled())

        n_steps = int(round(duration_s / step_s))
        grid = np.empty(n_steps)
        total_power = np.empty(n_steps)
        total_traffic = np.empty(n_steps)

        M_ENGINE_RUNS.labels(engine=engine).inc()
        with tracing.span("sim.run", sim_clock=lambda: self.clock_s,
                          engine=engine, requested=requested,
                          n_steps=n_steps,
                          routers=len(self.network.routers)):
            for observer in self.observers:
                observer.on_run_start(self, engine, collector, step_s,
                                      n_steps)
            with tracing.span("sim.steps", sim_clock=lambda: self.clock_s):
                if engine == "vector":
                    vec = VectorizedEngine(self)
                    self.last_vector_engine = vec
                    vec.run_steps(
                        n_steps, step_s, pending, collector, snmp_period_s,
                        detailed_hosts, grid, total_power, total_traffic,
                        ledger=ledger)
                else:
                    self._run_steps_object(
                        n_steps, step_s, pending, collector, snmp_period_s,
                        grid, total_power, total_traffic, ledger=ledger)

            with tracing.span("sim.finalize",
                              sim_clock=lambda: self.clock_s):
                for client in self.autopower_clients.values():
                    client.try_upload(self.clock_s)
                autopower = {
                    host: self.autopower_server.download(client.unit_id)
                    for host, client in self.autopower_clients.items()
                }
                if ledger is not None:
                    ledger.finalize()
                    if tracing.enabled():
                        ledger.attach_counter_tracks(tracing.get_tracer())
                result = SimulationResult(
                    total_power=TimeSeries(grid, total_power),
                    total_traffic_bps=TimeSeries(grid, total_traffic),
                    snmp=collector.finalize(),
                    autopower=autopower,
                    sensor_exports=collector.sensor_exports(),
                    ledger=ledger,
                )
                for observer in self.observers:
                    observer.on_run_end(result)
        M_STEPS.labels(engine=engine).inc(n_steps)
        if n_steps:
            M_FLEET_POWER.set(float(total_power[-1]))
            M_FLEET_TRAFFIC.set(float(total_traffic[-1]))
        _log.info("simulation run complete",
                  extra={"engine": engine, "n_steps": n_steps,
                         "routers": len(self.network.routers),
                         "mean_power_w": round(float(total_power.mean()), 3)
                         if n_steps else 0.0})
        return result

    def _run_steps_object(self, n_steps: int, step_s: float, pending,
                          collector: SnmpCollector, snmp_period_s: float,
                          grid: np.ndarray, total_power: np.ndarray,
                          total_traffic: np.ndarray,
                          ledger: Optional["LedgerAccumulator"] = None,
                          ) -> None:
        """The original per-object step loop (reference implementation)."""
        if ledger is not None:
            from repro.network.attribution import router_breakdown
            from repro.obs.ledger import COMPONENTS
        next_poll_s = self.clock_s
        event_idx = 0
        # Kernel regions resolve to a shared no-op context while
        # profiling is disabled (see repro.obs.profile).
        region = profile.region
        observing = metrics.enabled()
        observers = self.observers
        step_durations: List[float] = []
        for step in range(n_steps):
            if observing:
                # netpower: ignore[NP-DET-001] -- wall-clock here only
                # feeds the step-latency histogram (an observability
                # side-channel); simulation results never read it.
                step_t0 = time.perf_counter()
            t = self.clock_s
            while event_idx < len(pending) and pending[event_idx].at_s <= t:
                M_EVENTS.labels(type=type(pending[event_idx]).__name__).inc()
                pending[event_idx].apply(self)
                event_idx += 1
            with region("kernel.apply_traffic"):
                ingress = self._apply_traffic(t)
            with region("kernel.advance_counters"):
                for router in self.network.routers.values():
                    router.advance(step_s)
            self.clock_s += step_s
            t_sample = self.clock_s
            grid[step] = t_sample
            fleet_attr = None
            if ledger is not None:
                # router_breakdown returns the same wall power as
                # wall_power_w(); summed in the same sequential order as
                # total_wall_power_w(), so totals stay byte-identical
                # with attribution on.
                buf = ledger.power_buf
                power_by_host = {}
                total = 0.0
                with region("kernel.wall_power"):
                    for i, (host, router) in enumerate(
                            self.network.routers.items()):
                        wall = router_breakdown(router, buf[i])
                        power_by_host[host] = wall
                        total += wall
                total_power[step] = total
                fleet_attr = ledger.record(
                    t_sample, step_s, buf,
                    np.array(list(power_by_host.values())))
            elif observers:
                # One wall-power read per router, summed in the same
                # sequential order as total_wall_power_w() so the total
                # stays byte-identical with observers attached.
                with region("kernel.wall_power"):
                    power_by_host = {host: router.wall_power_w()
                                     for host, router
                                     in self.network.routers.items()}
                    total = 0.0
                    for value in power_by_host.values():
                        total += value
                total_power[step] = total
            else:
                with region("kernel.wall_power"):
                    total_power[step] = self.network.total_wall_power_w()
            total_traffic[step] = ingress
            polled = t_sample >= next_poll_s
            if polled:
                M_SNMP_POLLS.inc()
                collector.record(t_sample)
                next_poll_s += max(snmp_period_s, step_s)
            for client in self.autopower_clients.values():
                client.tick(t_sample)
            if observers:
                with region("kernel.observers"):
                    snapshot = StepSnapshot(
                        step=step, t_s=t_sample, step_s=step_s,
                        total_power_w=float(total_power[step]),
                        total_traffic_bps=float(ingress),
                        power_by_host=power_by_host, snmp_polled=polled,
                        attribution=(None if fleet_attr is None else
                                     {name: float(fleet_attr[k])
                                      for k, name in enumerate(COMPONENTS)}))
                    for observer in observers:
                        observer.on_step(snapshot)
            if observing:
                # netpower: ignore[NP-DET-001] -- same side-channel as
                # above: latency only, never simulation state.
                step_durations.append(time.perf_counter() - step_t0)
        if step_durations:
            M_STEP_SECONDS.labels(engine="object").observe_many(
                step_durations)
