"""Traffic for the synthetic ISP: diurnal demands and shortest-path routing.

Two traffic populations drive the fleet, mirroring what the paper's SNMP
counters show for Switch:

* **external** (customer/peer) interfaces each carry an independent demand
  process: a base utilisation drawn per link, modulated by a shared
  diurnal/weekly profile plus per-link noise.  Average utilisation is low
  (≈1.3 %, Fig. 1) with day/night swings of roughly 2x;
* **internal** links carry a routed traffic matrix: symmetric demands
  between router pairs (gravity-weighted), placed on hop-count shortest
  paths.  The resulting per-link loads are what the Hypnos sleeping
  analysis (§8) consumes -- removing a link must reroute its demands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro import units
from repro.network.topology import ISPNetwork, Link


@dataclass(frozen=True)
class DiurnalProfile:
    """A daily/weekly load shape shared by all demands.

    ``multiplier(t)`` is ~1 on average: nights bottom out near
    ``night_floor``, weekday afternoons peak near ``day_peak``; weekends
    are scaled down (an NREN's traffic follows campus working hours).
    """

    night_floor: float = 0.45
    day_peak: float = 1.75
    weekend_factor: float = 0.6
    peak_hour: float = 15.0

    def multiplier(self, t_s: float) -> float:
        """Deterministic load multiplier at absolute time ``t_s``."""
        day = (t_s % units.SECONDS_PER_WEEK) / units.SECONDS_PER_DAY
        hour = (t_s % units.SECONDS_PER_DAY) / units.SECONDS_PER_HOUR
        # Cosine bump centred on the peak hour.
        phase = (hour - self.peak_hour) / 24.0 * 2.0 * math.pi
        shape = 0.5 * (1.0 + math.cos(phase))
        value = self.night_floor + (self.day_peak - self.night_floor) * shape
        if day >= 5.0:  # Saturday & Sunday
            value *= self.weekend_factor
        return value

    def multipliers(self, t_s: np.ndarray,
                    weekend: Optional[bool] = None) -> np.ndarray:
        """Vectorised :meth:`multiplier`.

        ``weekend`` short-circuits the day-of-week classification when
        the caller can prove every element falls on the same side of
        the weekday/weekend split (a scalar base time plus bounded
        phase offsets).  Both branches return exactly the floats the
        element-wise ``np.where`` would have selected, so the fast path
        is bit-identical -- it just skips a second modulo pass over the
        array.
        """
        t_s = np.asarray(t_s, dtype=float)
        hour = (t_s % units.SECONDS_PER_DAY) / units.SECONDS_PER_HOUR
        phase = (hour - self.peak_hour) / 24.0 * 2.0 * np.pi
        shape = 0.5 * (1.0 + np.cos(phase))
        value = self.night_floor + (self.day_peak - self.night_floor) * shape
        if weekend is None:
            day = (t_s % units.SECONDS_PER_WEEK) / units.SECONDS_PER_DAY
            return np.where(day >= 5.0, value * self.weekend_factor, value)
        if weekend:
            return value * self.weekend_factor
        return value


@dataclass
class Demand:
    """A symmetric traffic demand between two routers."""

    src: str
    dst: str
    base_bps: float
    packet_bytes: float = 700.0  # typical IMIX-ish average

    def __post_init__(self):
        if self.base_bps < 0:
            raise ValueError(f"demand rate must be >= 0, got {self.base_bps}")


class TrafficMatrix:
    """Internal demands plus their current shortest-path routing."""

    def __init__(self, network: ISPNetwork, demands: Sequence[Demand]):
        self.network = network
        self.demands = list(demands)
        self._links_by_id: Dict[int, Link] = {
            l.link_id: l for l in network.internal_links()}
        self.graph = network.internal_graph()
        #: demand index -> list of link ids (None when unroutable).
        self.paths: List[Optional[List[int]]] = []
        self._route_all()

    # -- routing ------------------------------------------------------------------

    def _edge_for_hop(self, graph: nx.MultiGraph, a: str, b: str,
                      loads: Optional[Dict[int, float]] = None) -> int:
        """Pick the least-loaded parallel link between two adjacent nodes."""
        keys = list(graph[a][b])
        if loads is None:
            return min(keys)
        return min(keys, key=lambda k: loads.get(k, 0.0))

    def _route_demand(self, graph: nx.MultiGraph, demand: Demand,
                      loads: Optional[Dict[int, float]] = None,
                      ) -> Optional[List[int]]:
        try:
            nodes = nx.shortest_path(graph, demand.src, demand.dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
        return [self._edge_for_hop(graph, a, b, loads)
                for a, b in zip(nodes, nodes[1:])]

    def _route_all(self) -> None:
        loads: Dict[int, float] = {}
        self.paths = []
        for demand in self.demands:
            path = self._route_demand(self.graph, demand, loads)
            self.paths.append(path)
            if path:
                for link_id in path:
                    loads[link_id] = loads.get(link_id, 0.0) + demand.base_bps

    def base_link_loads(self) -> Dict[int, float]:
        """Per-direction link load (bps) at base demand rates."""
        loads = {link_id: 0.0 for link_id in self._links_by_id}
        for demand, path in zip(self.demands, self.paths):
            if not path:
                continue
            for link_id in path:
                loads[link_id] += demand.base_bps
        return loads

    def reroute_without(self, removed: set) -> "TrafficMatrix":
        """A new matrix routed on the topology minus ``removed`` link ids.

        Raises ``ValueError`` if any demand becomes unroutable -- the
        sleeping algorithm must never disconnect traffic.
        """
        survivor = TrafficMatrix.__new__(TrafficMatrix)
        survivor.network = self.network
        survivor.demands = self.demands
        survivor._links_by_id = {
            k: v for k, v in self._links_by_id.items() if k not in removed}
        survivor.graph = self.network.internal_graph(exclude=removed)
        survivor.paths = []
        loads: Dict[int, float] = {}
        for demand, old_path in zip(self.demands, self.paths):
            if old_path is not None and not (set(old_path) & removed):
                path = old_path  # untouched demands keep their route
            else:
                path = survivor._route_demand(survivor.graph, demand, loads)
                if path is None:
                    raise ValueError(
                        f"demand {demand.src}->{demand.dst} unroutable "
                        f"without links {sorted(removed)}")
            survivor.paths.append(path)
            for link_id in path:
                loads[link_id] = loads.get(link_id, 0.0) + demand.base_bps
        return survivor

    def utilisations(self, loads: Optional[Dict[int, float]] = None,
                     ) -> Dict[int, float]:
        """Per-link utilisation (load over capacity, one direction)."""
        if loads is None:
            loads = self.base_link_loads()
        return {
            link_id: loads.get(link_id, 0.0)
            / units.gbps_to_bps(self._links_by_id[link_id].speed_gbps)
            for link_id in self._links_by_id
        }


@dataclass
class ExternalDemand:
    """The demand process of one external (customer/peer) link."""

    link_id: int
    base_utilisation: float
    noise_scale: float = 0.15
    #: Per-link phase shift so customer peaks do not all align.
    phase_shift_h: float = 0.0


class FleetTrafficModel:
    """Everything needed to assign traffic to every port at any time."""

    def __init__(self, network: ISPNetwork,
                 rng: Optional[np.random.Generator] = None,
                 mean_external_utilisation: float = 0.013,
                 n_demands: int = 1200,
                 internal_utilisation_scale: float = 1.0,
                 profile: Optional[DiurnalProfile] = None):
        self.network = network
        self.rng = rng if rng is not None else np.random.default_rng()
        self.profile = profile if profile is not None else DiurnalProfile()
        self.externals = self._build_externals(mean_external_utilisation)
        self.matrix = self._build_matrix(n_demands,
                                         internal_utilisation_scale)
        self._base_internal_loads = self.matrix.base_link_loads()
        self._external_columns: Optional[Tuple[np.ndarray, ...]] = None
        self._phase_span_s = 0.0

    # -- construction ---------------------------------------------------------------

    def _build_externals(self, mean_util: float) -> List[ExternalDemand]:
        externals = []
        for link in self.network.external_links():
            # Lognormal around the target mean: most links quiet, a few hot.
            util = float(min(0.35, self.rng.lognormal(
                mean=np.log(mean_util), sigma=0.9)))
            externals.append(ExternalDemand(
                link_id=link.link_id,
                base_utilisation=util,
                phase_shift_h=float(self.rng.uniform(-2.0, 2.0))))
        return externals

    def _build_matrix(self, n_demands: int, scale: float) -> TrafficMatrix:
        hosts = sorted(self.network.routers)
        # Gravity weights: a router's pull is its external capacity share.
        weight = {h: 1.0 for h in hosts}
        for link in self.network.external_links():
            weight[link.a.hostname] += link.speed_gbps
        w = np.array([weight[h] for h in hosts], dtype=float)
        w /= w.sum()
        demands = []
        total_capacity = sum(
            units.gbps_to_bps(l.speed_gbps)
            for l in self.network.internal_links())
        # Aim internal traffic volume at the same low utilisation regime.
        total_demand = 0.008 * scale * total_capacity / 4.0
        for _ in range(n_demands):
            i, j = self.rng.choice(len(hosts), size=2, replace=False, p=w)
            rate = float(self.rng.lognormal(
                mean=np.log(total_demand / n_demands), sigma=1.0))
            demands.append(Demand(src=hosts[int(i)], dst=hosts[int(j)],
                                  base_bps=rate))
        return TrafficMatrix(self.network, demands)

    # -- evaluation ---------------------------------------------------------------------

    def external_rates_at(self, t_s: float) -> Dict[int, float]:
        """Per-external-link offered rate (bps, each direction) at ``t_s``."""
        links = {l.link_id: l for l in self.network.external_links()}
        rates = {}
        for demand in self.externals:
            link = links[demand.link_id]
            mult = self.profile.multiplier(
                t_s + demand.phase_shift_h * units.SECONDS_PER_HOUR)
            noise = float(self.rng.lognormal(0.0, demand.noise_scale))
            rate = (demand.base_utilisation * mult * noise
                    * units.gbps_to_bps(link.speed_gbps))
            rates[demand.link_id] = min(
                rate, 0.95 * units.gbps_to_bps(link.speed_gbps))
        return rates

    def internal_rates_at(self, t_s: float) -> Dict[int, float]:
        """Per-internal-link load (bps, each direction) at ``t_s``."""
        mult = self.profile.multiplier(t_s)
        noise = float(self.rng.lognormal(0.0, 0.08))
        return {link_id: load * mult * noise
                for link_id, load in self._base_internal_loads.items()}

    def external_rates_vector(self, t_s: float) -> Tuple[np.ndarray,
                                                         np.ndarray]:
        """Vectorised :meth:`external_rates_at`: ``(link_ids, rates)``.

        Rows align with ``self.externals``.  Consumes the RNG stream
        exactly like the scalar method (one lognormal per demand, in
        list order), so scalar and vectorised simulations see identical
        noise; only the diurnal multiplier is evaluated with ``np.cos``
        instead of ``math.cos`` (sub-ulp difference).
        """
        if self._external_columns is None:
            speed = {l.link_id: l.speed_gbps
                     for l in self.network.external_links()}
            cap_bps = np.array([units.gbps_to_bps(speed[d.link_id])
                                for d in self.externals])
            phase_h = np.array([d.phase_shift_h for d in self.externals])
            # Per-demand constants folded once: the phase offset in
            # seconds and the 95 % rate cap are the same floats the
            # scalar path computes per call.
            phase_s = phase_h * units.SECONDS_PER_HOUR
            self._external_columns = (
                np.array([d.link_id for d in self.externals],
                         dtype=np.int64),
                np.array([d.base_utilisation for d in self.externals]),
                np.array([d.noise_scale for d in self.externals]),
                phase_s,
                cap_bps,
                0.95 * cap_bps,
            )
            self._phase_span_s = (
                float(np.abs(phase_s).max()) if len(phase_s) else 0.0)
        link_ids, base_util, noise_scale, phase_s, cap_bps, cap95 = \
            self._external_columns
        if len(link_ids) == 0:
            return link_ids, np.zeros(0)
        mult = self.profile.multipliers(
            t_s + phase_s, weekend=self._uniform_weekend(t_s))
        noise = self.rng.lognormal(0.0, noise_scale)
        rate = base_util * mult * noise * cap_bps
        return link_ids, np.minimum(rate, cap95)

    def _uniform_weekend(self, t_s: float) -> Optional[bool]:
        """Shared weekday/weekend flag of all demands at ``t_s``, if any.

        Demand times are ``t_s`` plus per-demand phase shifts bounded by
        ``_phase_span_s``, so when the whole ``t_s +- span`` window sits
        strictly inside one weekday or weekend stretch every demand
        classifies identically and :meth:`DiurnalProfile.multipliers`
        can skip its element-wise week modulo.  Near a boundary (or if
        the window wraps the week), returns None for the exact path.
        ``%`` is exact on non-negative floats and rounding is monotone,
        so no element can land outside the [lo, hi] window this checks.
        """
        span = self._phase_span_s
        lo = (t_s - span) % units.SECONDS_PER_WEEK
        hi = (t_s + span) % units.SECONDS_PER_WEEK
        if lo > hi:          # window wraps the Monday-00:00 boundary
            return None
        saturday = 5.0 * units.SECONDS_PER_DAY
        if lo < saturday <= hi:   # window straddles the Saturday boundary
            return None
        return lo >= saturday

    def internal_rate_factors(self, t_s: float) -> Tuple[float, float]:
        """The ``(multiplier, noise)`` pair of :meth:`internal_rates_at`.

        Lets callers holding their own per-link load arrays compute
        ``load * mult * noise`` without building the dict; draws the same
        single lognormal as the scalar method.
        """
        mult = self.profile.multiplier(t_s)
        noise = float(self.rng.lognormal(0.0, 0.08))
        return mult, noise

    def refresh_internal_loads(self) -> None:
        """Recompute base internal loads (after topology-affecting events)."""
        self._base_internal_loads = self.matrix.base_link_loads()
