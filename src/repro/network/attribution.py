"""Object-path energy attribution and the ``netpower explain`` document.

The columnar engine writes its attribution split straight out of its
component columns (:meth:`repro.network.engine.FleetState.wall_power`);
this module is the object engine's counterpart plus the shared
drill-down assembly: :func:`router_breakdown` decomposes one
:class:`~repro.hardware.router.VirtualRouter`'s wall power into the
:data:`~repro.obs.ledger.COMPONENTS` vector using exactly the method
calls ``wall_power_w()`` performs (so attribution on/off cannot change
a single simulated byte), and :func:`build_explain_document` rolls a
finished run's ledger up into the versioned fleet -> region -> router
-> port report the CLI renders.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.hardware.router import VirtualRouter
from repro.obs.ledger import (COMPONENTS, J_PER_KWH, N_CONSERVED,
                              RESIDUAL_TOLERANCE_W, LedgerAccumulator)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.topology import ISPNetwork

#: Version stamp on every ``netpower explain`` document.
EXPLAIN_SCHEMA = "repro.explain/v1"


def router_breakdown(router: VirtualRouter, out: np.ndarray) -> float:
    """Fill ``out`` with one router's component watts; return wall power.

    The returned wall power is byte-identical to
    ``router.wall_power_w()``: the chain of method calls (wall-referred
    sum, DC inversion, noise clip, PSU curves) is the same, so the
    object engine can build its per-host power map from the breakdown
    without perturbing attribution-off results.  Component column order
    matches :data:`repro.obs.ledger.COMPONENTS`; the per-port sums
    accumulate in port order, the same chain of additions as the
    columnar engine's ``np.bincount`` segments.
    """
    if not router.powered:
        out[:] = 0.0
        return 0.0
    base = ((router.spec.p_base_w + router.fan_bump_w)
            + router.thermal_power_w())
    trx_in = 0.0
    port_static = 0.0
    trx_up = 0.0
    sleep = 0.0
    offset = 0.0
    bit = 0.0
    pkt = 0.0
    for port in router.ports:
        s_in, s_port, s_up = port.static_components()
        trx_in += s_in
        port_static += s_port
        trx_up += s_up
        sleep += port.sleep_savings_w()
        traffic = port.traffic
        if ((traffic.rx_bps or traffic.tx_bps) and port.link_up
                and traffic.total_bps > 0):
            truth = port.class_truth()
            if truth is not None:
                offset += truth.p_offset_w
                bit += truth.e_bit_j * traffic.total_bps
                pkt += truth.e_pkt_j * traffic.total_pps
    wall_ref = router.wall_referred_power_w()
    dc = router._dc_from_wall_referred(wall_ref)
    device = router.device_power_w()
    wall = router.psu_group.wall_power(device)
    out[0] = base
    out[1] = trx_in
    out[2] = port_static
    out[3] = trx_up
    out[4] = offset
    out[5] = bit
    out[6] = pkt
    out[7] = dc - wall_ref
    out[8] = device - dc
    out[9] = wall - device
    out[10] = sleep
    return wall


def port_breakdown_rows(router: VirtualRouter) -> List[Dict]:
    """Per-port drill-down rows from a router's current object state.

    One row per port with the static split, the instantaneous dynamic
    terms for the currently offered traffic, and the sleep
    counterfactual -- the port level of ``netpower explain --host``.
    Rows reflect the state at the moment of the call (after a run, the
    final step's state).
    """
    rows: List[Dict] = []
    for port in router.ports:
        s_in, s_port, s_up = port.static_components()
        truth = port.class_truth()
        traffic = port.traffic
        dynamic = ((traffic.rx_bps or traffic.tx_bps) and port.link_up
                   and traffic.total_bps > 0 and truth is not None)
        rows.append({
            "name": port.name,
            "plugged": port.plugged,
            "admin_up": port.admin_up,
            "link_up": port.link_up,
            "p_trx_in_w": round(s_in, 6),
            "p_port_w": round(s_port, 6),
            "p_trx_up_w": round(s_up, 6),
            "p_offset_w": round(truth.p_offset_w if dynamic else 0.0, 6),
            "e_bit_traffic_w": round(
                truth.e_bit_j * traffic.total_bps if dynamic else 0.0, 6),
            "e_pkt_traffic_w": round(
                truth.e_pkt_j * traffic.total_pps if dynamic else 0.0, 6),
            "sleep_savings_w": round(port.sleep_savings_w(), 6),
        })
    return rows


def _group_block(ledger: LedgerAccumulator, hostnames: List[str],
                 duration_s: float) -> Dict:
    """Energy/mean-power rollup for one hostname group."""
    energy = ledger.group_energy_j(hostnames)
    mean = energy / duration_s if duration_s > 0 else np.zeros_like(energy)
    return {
        "hosts": len(hostnames),
        "energy_kwh": ledger.component_dict(energy / J_PER_KWH),
        "mean_power_w": ledger.component_dict(mean),
    }


def build_explain_document(ledger: LedgerAccumulator,
                           network: "ISPNetwork", *, engine: str,
                           scenario: Dict,
                           host: Optional[str] = None,
                           top: int = 10) -> Dict:
    """Assemble the ``repro.explain/v1`` drill-down document.

    ``scenario`` carries run metadata (preset, seed, steps) verbatim;
    ``top`` bounds the per-router section to the N largest energy
    consumers (the region and fleet sections always cover everything);
    ``host`` adds a single router's port-level drill-down.
    """
    duration = ledger.duration_s
    regions = {}
    for pop in sorted(network.pops):
        hosts = [h for h in network.pops[pop] if h in network.routers]
        if hosts:
            regions[pop] = _group_block(ledger, hosts, duration)
    conserved = ledger.energy_j[:, :N_CONSERVED].sum(axis=1)
    ranked = sorted(ledger.hostnames,
                    key=lambda h: (-conserved[ledger.index_of(h)], h))
    routers = {}
    for hostname in ranked[:max(0, top)]:
        energy = ledger.router_energy_j(hostname)
        mean = (energy / duration if duration > 0
                else np.zeros_like(energy))
        routers[hostname] = {
            "model": network.routers[hostname].model_name,
            "energy_kwh": ledger.component_dict(energy / J_PER_KWH),
            "mean_power_w": ledger.component_dict(mean),
        }
    document = {
        "schema": EXPLAIN_SCHEMA,
        "engine": engine,
        "scenario": scenario,
        "components": list(COMPONENTS),
        "conservation": {
            "max_residual_w": ledger.max_residual_w,
            "tolerance_w": RESIDUAL_TOLERANCE_W,
            "ok": ledger.conserved(),
            "n_steps": ledger.n_steps,
        },
        "fleet": _group_block(ledger, list(ledger.hostnames), duration),
        "regions": regions,
        "routers": routers,
        "top": top,
    }
    if host is not None:
        if host not in network.routers:
            raise ValueError(f"unknown router {host!r}")
        energy = ledger.router_energy_j(host)
        document["router"] = {
            "hostname": host,
            "model": network.routers[host].model_name,
            "energy_kwh": ledger.component_dict(energy / J_PER_KWH),
            "last_power_w": ledger.component_dict(
                ledger.router_last_power_w(host)),
            "ports": port_breakdown_rows(network.routers[host]),
        }
    return document


def explain_to_json(document: Dict) -> str:
    """Serialize an explain document deterministically (sorted keys)."""
    return json.dumps(document, indent=2, sort_keys=True)


def _component_table(energies: Dict[str, float], means: Dict[str, float],
                     indent: str = "  ",
                     power_label: str = "mean W") -> List[str]:
    """Rows of one group's per-component energy/power table."""
    conserved_kwh = sum(energies[name] for name in COMPONENTS[:N_CONSERVED])
    lines = [f"{indent}{'component':24s} {'energy kWh':>12s} "
             f"{power_label:>12s} {'share':>7s}"]
    for name in COMPONENTS:
        share = (100.0 * energies[name] / conserved_kwh
                 if conserved_kwh else 0.0)
        marker = "*" if name in COMPONENTS[N_CONSERVED:] else " "
        lines.append(f"{indent}{name:24s} {energies[name]:12,.3f} "
                     f"{means[name]:12,.2f} {share:6.1f}%{marker}")
    lines.append(f"{indent}{'total (conserved)':24s} "
                 f"{conserved_kwh:12,.3f}")
    return lines


def render_explain_text(document: Dict) -> str:
    """Render an explain document as the CLI's text drill-down."""
    scenario = document["scenario"]
    conservation = document["conservation"]
    lines = [f"energy attribution ({document['schema']})"]
    lines.append("scenario           : " + " ".join(
        [f"engine={document['engine']}"]
        + [f"{key}={scenario[key]}" for key in sorted(scenario)]))
    lines.append(
        f"conservation       : max residual "
        f"{conservation['max_residual_w']:.3e} W over "
        f"{conservation['n_steps']} steps (tolerance "
        f"{conservation['tolerance_w']:.0e}) -- "
        f"{'OK' if conservation['ok'] else 'VIOLATED'}")
    fleet = document["fleet"]
    lines.append(f"fleet              : {fleet['hosts']} routers "
                 f"(* = counterfactual, excluded from the total)")
    lines.extend(_component_table(fleet["energy_kwh"],
                                  fleet["mean_power_w"]))
    lines.append("regions:")
    for pop, block in document["regions"].items():
        energies = block["energy_kwh"]
        conserved_kwh = sum(energies[name]
                            for name in COMPONENTS[:N_CONSERVED])
        lines.append(f"  {pop:18s} {block['hosts']:4d} hosts "
                     f"{conserved_kwh:12,.3f} kWh")
    lines.append(f"top {document['top']} routers by energy:")
    for hostname, block in document["routers"].items():
        energies = block["energy_kwh"]
        conserved_kwh = sum(energies[name]
                            for name in COMPONENTS[:N_CONSERVED])
        lines.append(f"  {hostname:18s} {block['model']:22s} "
                     f"{conserved_kwh:12,.3f} kWh")
    router = document.get("router")
    if router is not None:
        lines.append(f"router {router['hostname']} ({router['model']}):")
        lines.extend(_component_table(router["energy_kwh"],
                                      router["last_power_w"],
                                      power_label="last W"))
        lines.append("  ports (instantaneous, final step):")
        lines.append(f"    {'port':16s} {'state':8s} {'static W':>10s} "
                     f"{'dynamic W':>10s} {'sleep W':>9s}")
        for row in router["ports"]:
            state = ("unplug" if not row["plugged"]
                     else "down" if not row["admin_up"]
                     else "up" if row["link_up"] else "no-link")
            static = (row["p_trx_in_w"] + row["p_port_w"]
                      + row["p_trx_up_w"])
            dynamic = (row["p_offset_w"] + row["e_bit_traffic_w"]
                       + row["e_pkt_traffic_w"])
            lines.append(f"    {row['name']:16s} {state:8s} "
                         f"{static:10.3f} {dynamic:10.3f} "
                         f"{row['sleep_savings_w']:9.3f}")
    return "\n".join(lines)
