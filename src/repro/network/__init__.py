"""The deployment substrate: a synthetic Switch-like Tier-2 ISP.

* :mod:`repro.network.topology` -- fleet generation (107 routers, PoPs,
  internal/external links, spare modules);
* :mod:`repro.network.synth` -- deterministic multi-tier synthetic
  fleets (1k-100k routers) for the scale benchmarks and sweeps;
* :mod:`repro.network.traffic` -- diurnal demand processes and the routed
  internal traffic matrix;
* :mod:`repro.network.events` -- operational events (module swaps, OS
  updates, decommissioning, Autopower deployment);
* :mod:`repro.network.simulation` -- the time-stepped run loop feeding
  the SNMP and Autopower collectors.
"""

from repro.network.topology import (
    ExternalPeerPort,
    FleetConfig,
    ISPNetwork,
    Link,
    LinkEnd,
    LinkKind,
    build_switch_like_network,
    CORE_MODELS,
    AGG_MODELS,
    ACCESS_MODELS,
)
from repro.network.synth import (
    SYNTH_PRESETS,
    SynthConfig,
    generate_synth_network,
    synth_config,
)
from repro.network.traffic import (
    Demand,
    DiurnalProfile,
    ExternalDemand,
    FleetTrafficModel,
    TrafficMatrix,
)
from repro.network.events import (
    AddExternalInterface,
    AmbientChange,
    HeatWave,
    Commission,
    Decommission,
    DegradePsu,
    DeployAutopower,
    FleetEvent,
    OsUpdate,
    PowerCycle,
    SetAdminState,
    UnplugModule,
)
from repro.network.inventory import (
    FleetInventory,
    InterfaceEntry,
    InventoryChange,
    RouterInventory,
    diff_inventories,
)
from repro.network.simulation import (
    FLEET_PACKET_BYTES,
    NetworkSimulation,
    SimulationResult,
    StepObserver,
    StepSnapshot,
)
from repro.network.engine import (
    FleetState,
    VectorizedEngine,
    supports_vectorized,
)

__all__ = [
    "ExternalPeerPort",
    "FleetConfig",
    "ISPNetwork",
    "Link",
    "LinkEnd",
    "LinkKind",
    "build_switch_like_network",
    "CORE_MODELS",
    "AGG_MODELS",
    "ACCESS_MODELS",
    "SYNTH_PRESETS",
    "SynthConfig",
    "generate_synth_network",
    "synth_config",
    "Demand",
    "DiurnalProfile",
    "ExternalDemand",
    "FleetTrafficModel",
    "TrafficMatrix",
    "AddExternalInterface",
    "AmbientChange",
    "HeatWave",
    "Commission",
    "Decommission",
    "DegradePsu",
    "DeployAutopower",
    "FleetEvent",
    "OsUpdate",
    "PowerCycle",
    "SetAdminState",
    "UnplugModule",
    "FleetInventory",
    "InterfaceEntry",
    "InventoryChange",
    "RouterInventory",
    "diff_inventories",
    "FLEET_PACKET_BYTES",
    "NetworkSimulation",
    "SimulationResult",
    "StepObserver",
    "StepSnapshot",
    "FleetState",
    "VectorizedEngine",
    "supports_vectorized",
]
