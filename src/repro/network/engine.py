"""Vectorized fleet-simulation fast path: columnar state over NumPy arrays.

The object engine in :mod:`repro.network.simulation` advances the fleet one
Python object at a time: every step re-walks every link, every
:meth:`VirtualRouter.advance` loops over its ports, and
``total_wall_power_w`` re-sums per-port power through Python method calls.
That is fine for a handful of routers; it is two orders of magnitude too
slow for ISP-sized fleets (hundreds of routers x dozens of ports x 10^4+
steps).

This module flattens every port in the fleet into structure-of-arrays
columns -- static power, ``e_bit``/``e_pkt``, offered rx/tx rates, link-up
masks, router ownership indices -- so one simulation step becomes a few
array operations (scatter the link rates, accumulate counters, segment-sum
power per router) instead of O(ports) Python calls.

Contracts that keep the fast path exactly equivalent to the object path:

* **Objects stay the source of truth.**  Events mutate the
  :class:`~repro.hardware.router.VirtualRouter` objects exactly as in the
  object engine; the columnar state is a *cache* that is flushed to the
  objects before any event fires and refreshed afterwards (the same
  ``_mark_dirty`` philosophy as the router's own static-power cache,
  hoisted to fleet scope).  Events that declare a *dirty set* of routers
  (:meth:`~repro.network.events.FleetEvent.dirty_hosts`) get the
  incremental treatment: only those routers' columns are flushed,
  re-snapshot, and patched in place -- O(router), not O(fleet) -- while
  events that reshape the link list still force a full rebuild.  Both
  paths produce bit-identical columns.  At the end of a run all
  counters, offered traffic, and noise states are written back, so
  post-run object inspection is indistinguishable from a scalar run.
* **Identical RNG streams.**  NumPy ``Generator`` array draws consume the
  underlying bit stream exactly like the equivalent sequence of scalar
  draws, so vectorised demand noise reproduces the object path's values
  bit for bit.  Per-router draws (AR(1) ambient noise, PSU sensor noise)
  come from per-router generators and are issued in the same per-router
  order as the object path.
* **Identical arithmetic where it matters.**  Elementwise array formulas
  mirror the scalar expressions' association order, counter accumulation
  replicates ``int(prev + inc)`` truncation via ``np.floor``, and the
  DC-inversion interpolation reuses each router's own ``_inversion_grid``.
  Remaining differences (pairwise vs. sequential summation, fused
  constant factors) stay within ~1e-12 relative error; the equivalence
  suite asserts 1e-9.

Counters are held as float64 columns: exact up to 2^53, far beyond any
realistic campaign, but the fast path does not reproduce the 2^64 counter
wrap (the object engine does).  Runs long enough to wrap a 64-bit octet
counter should use ``engine="object"``.
"""

from __future__ import annotations

import time
from typing import (TYPE_CHECKING, Dict, FrozenSet, List, Optional,
                    Sequence, Tuple)

import numpy as np

from repro import units
from repro.activity import carrying_traffic_mask
from repro.hardware.psu import QuadraticLossCurve, ScaledLossCurve, SharingPolicy
from repro.hardware.router import OfferedTraffic, Port, VirtualRouter
from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.network.events import FleetEvent
    from repro.network.topology import ISPNetwork
    from repro.obs.ledger import LedgerAccumulator
    from repro.telemetry.snmp import SnmpCollector

#: Noise correlation time of the routers' AR(1) ambient noise (matches
#: :meth:`VirtualRouter.advance`).
_NOISE_TAU_S = 600.0

M_REFRESH = metrics.counter(
    "netpower_sim_engine_refresh_total",
    "Columnar configuration rebuilds (construction + event boundaries)")
M_EVENT_BOUNDARIES = metrics.counter(
    "netpower_sim_engine_event_boundaries_total",
    "Vectorized-run steps that flushed columns to apply events")
M_PARTIAL_REFRESH = metrics.counter(
    "netpower_sim_engine_partial_refresh_total",
    "Event boundaries served by incremental column patches "
    "(no full rebuild)")
M_ROUTERS_PATCHED = metrics.counter(
    "netpower_sim_engine_router_columns_patched_total",
    "Routers whose columns were patched in place at event boundaries")
M_PATCH_SECONDS = metrics.histogram(
    "netpower_sim_engine_patch_seconds",
    "Wall time of one incremental column patch (per event boundary)",
    buckets=(1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3))

#: Module-wide switch for the incremental event-boundary path.  With it
#: off, every event boundary rebuilds the full columnar configuration --
#: the pre-incremental behaviour the equivalence suite compares against
#: (results must be bitwise identical either way).
INCREMENTAL_REFRESH: bool = True


def _collapse_curve(curve) -> Optional[Tuple[Tuple[float, ...],
                                             float, float, float]]:
    """Reduce a PSU efficiency curve to ``(scales, a, b, c)`` if possible.

    Ground-truth PSU instances are ``ScaledLossCurve`` wrappers (possibly
    nested) around the quadratic PFE600 loss model; their loss fraction is
    ``s_n * (... * (s_1 * (a + b*x + c*x^2)))``.  The scales are returned
    innermost-first so callers can apply them in the same multiplication
    order as the nested objects (bit-identical results).  Returns ``None``
    for curve types the vectorized engine cannot evaluate in closed form.
    """
    scales: List[float] = []
    while isinstance(curve, ScaledLossCurve):
        scales.append(curve.scale)
        curve = curve.base
    if isinstance(curve, QuadraticLossCurve):
        return tuple(reversed(scales)), curve.a, curve.b, curve.c
    return None


def supports_vectorized(network: "ISPNetwork") -> bool:
    """Whether every router in the fleet is expressible in columnar form.

    True for all catalog hardware: the engine needs PSU curves that
    collapse to scaled quadratics (see :func:`_collapse_curve`) and one of
    the stock sharing policies.  Exotic custom curves fall back to the
    object engine via ``engine="auto"``.
    """
    for router in network.routers.values():
        if router.psu_group.policy not in (SharingPolicy.BALANCED,
                                           SharingPolicy.SINGLE,
                                           SharingPolicy.HOT_STANDBY):
            return False
        for psu in router.psu_group.instances:
            if _collapse_curve(psu.curve) is None:
                return False
    return True


class FleetState:
    """Structure-of-arrays snapshot of every port and router in a fleet.

    Two kinds of columns live here:

    * **Dynamic state** (counters, offered traffic, noise) is owned by the
      columns while a vectorized run is in flight and written back to the
      objects via :meth:`flush_counters` / :meth:`flush_traffic` /
      :meth:`flush_noise`.  It survives :meth:`refresh`.
    * **Configuration** (static power, link-up masks, PSU coefficients,
      link wiring) is derived from the objects and rebuilt wholesale by
      :meth:`refresh` whenever an event may have mutated topology or
      config -- the fleet-level analogue of the router ``_mark_dirty``
      hooks.
    """

    def __init__(self, network, traffic, new_external_link_ids=frozenset(),
                 view_hosts: Sequence[str] = ()):
        self.network = network
        self.traffic = traffic
        self.routers: List[VirtualRouter] = list(network.routers.values())
        self.n_routers = len(self.routers)
        self.router_index: Dict[str, int] = {
            r.hostname: i for i, r in enumerate(self.routers)}
        self.ports: List[Port] = [p for r in self.routers for p in r.ports]
        self.n_ports = len(self.ports)
        counts = [len(r.ports) for r in self.routers]
        starts = np.concatenate([[0], np.cumsum(counts)])
        self._router_start = starts[:-1]
        self._router_stop = starts[1:]
        self.port_router = np.repeat(np.arange(self.n_routers), counts)

        # Configuration columns, allocated once and refilled in place by
        # refresh()/patch_routers() -- no per-refresh reallocation.
        self.static_w = np.zeros(self.n_ports)
        self.link_up = np.zeros(self.n_ports, dtype=bool)
        self.p_offset_w = np.zeros(self.n_ports)
        self.e_bit_j = np.zeros(self.n_ports)
        self.e_pkt_j = np.zeros(self.n_ports)
        self._has_truth = np.zeros(self.n_ports, dtype=bool)
        self.dyn_ok = np.zeros(self.n_ports, dtype=bool)
        self.port_powered = np.zeros(self.n_ports, dtype=bool)
        self.powered = np.zeros(self.n_routers, dtype=bool)
        self.base_fixed = np.zeros(self.n_routers)
        self.noise_std = np.zeros(self.n_routers)
        self.static_sum = np.zeros(self.n_routers)
        # Attribution split of the per-port static power (the three
        # catalog terms of static_w) plus the sleep counterfactual, and
        # their per-router sums -- consumed by the energy ledger, kept
        # current alongside static_w/static_sum either way.
        self.trx_in_w = np.zeros(self.n_ports)
        self.port_w = np.zeros(self.n_ports)
        self.trx_up_w = np.zeros(self.n_ports)
        self.sleep_w = np.zeros(self.n_ports)
        self.trx_in_sum = np.zeros(self.n_routers)
        self.port_sum = np.zeros(self.n_routers)
        self.trx_up_sum = np.zeros(self.n_routers)
        self.sleep_sum = np.zeros(self.n_routers)

        # Dynamic state, seeded from the objects once.
        self.rx_bps = np.array([p.traffic.rx_bps for p in self.ports])
        self.tx_bps = np.array([p.traffic.tx_bps for p in self.ports])
        self.packet_bytes = np.array(
            [p.traffic.packet_bytes for p in self.ports])
        self.noise = np.array([r._noise_state for r in self.routers])
        # Between configuration boundaries the per-step kernels work on
        # compact copies of the active ports' dynamic state (see
        # _refresh_active_cache); these flags track whether those copies
        # hold updates not yet spilled back into the full-width columns.
        self._traffic_dirty = False
        self._counters_dirty = False
        self._cache_ap: Optional[np.ndarray] = None
        self.snapshot_counters()
        self.refresh(new_external_link_ids, view_hosts)

    # -- dynamic state <-> objects ------------------------------------------------

    def snapshot_counters(self,
                          hostnames: Optional[Sequence[str]] = None) -> None:
        """Load counter columns from the Port objects (they are authoritative
        across events: a power cycle zeroes them on the object).

        With ``hostnames``, only those routers' ports are re-read --
        counters are integral and below 2^53, so the float columns of
        untouched routers already hold the objects' exact values.
        """
        self._spill_counters()
        if hostnames is None:
            self.c_rx_oct = np.array(
                [float(p.counters.rx_octets) for p in self.ports])
            self.c_tx_oct = np.array(
                [float(p.counters.tx_octets) for p in self.ports])
            self.c_rx_pkt = np.array(
                [float(p.counters.rx_packets) for p in self.ports])
            self.c_tx_pkt = np.array(
                [float(p.counters.tx_packets) for p in self.ports])
            return
        for host in hostnames:
            r = self.router_index[host]
            for f in range(self._router_start[r], self._router_stop[r]):
                counters = self.ports[f].counters
                self.c_rx_oct[f] = float(counters.rx_octets)
                self.c_tx_oct[f] = float(counters.tx_octets)
                self.c_rx_pkt[f] = float(counters.rx_packets)
                self.c_tx_pkt[f] = float(counters.tx_packets)

    def flush_counters(self, hostnames: Optional[Sequence[str]] = None) -> None:
        """Write counter columns back into the Port objects.

        The full flush only visits the active ports: every other port's
        counters never advance (see :meth:`_refresh_links`), so its
        column still equals the object's value -- every configuration
        boundary flushes under the epoch that advanced the counters
        before the active set can change.
        """
        self._spill_counters()
        if hostnames is None:
            indices = self._active_ports.tolist()
        else:
            indices = []
            for host in hostnames:
                r = self.router_index[host]
                indices.extend(range(self._router_start[r],
                                     self._router_stop[r]))
        for f in indices:
            counters = self.ports[f].counters
            counters.rx_octets = int(self.c_rx_oct[f])
            counters.tx_octets = int(self.c_tx_oct[f])
            counters.rx_packets = int(self.c_rx_pkt[f])
            counters.tx_packets = int(self.c_tx_pkt[f])

    def counters_view(self, hostname: str) -> Tuple[np.ndarray, np.ndarray,
                                                    np.ndarray, np.ndarray]:
        """Read-only counter slices for one router's ports, in port order.

        Returns ``(rx_octets, tx_octets, rx_packets, tx_packets)`` views
        of the full-width columns (compact copies spilled first), so an
        SNMP poll can read a detailed host's counters without the
        object-write-back round trip.  The floats are integral below
        2^53; ``int()`` of an entry is the object counter's exact value.
        """
        self._spill_counters()
        i = self.router_index[hostname]
        rows = slice(int(self._router_start[i]), int(self._router_stop[i]))
        return (self.c_rx_oct[rows], self.c_tx_oct[rows],
                self.c_rx_pkt[rows], self.c_tx_pkt[rows])

    def flush_traffic(self, flat_indices: Optional[Sequence[int]] = None) -> None:
        """Write offered-traffic columns back into the Port objects."""
        self._spill_traffic()
        if flat_indices is None:
            flat_indices = self._linked_flat
        for f in flat_indices:
            self.ports[f].traffic = OfferedTraffic(
                rx_bps=float(self.rx_bps[f]), tx_bps=float(self.tx_bps[f]),
                packet_bytes=float(self.packet_bytes[f]))

    def flush_noise(self, hostnames: Optional[Sequence[str]] = None) -> None:
        """Write the AR(1) noise states back into the routers."""
        if hostnames is None:
            for i, router in enumerate(self.routers):
                router._noise_state = float(self.noise[i])
            return
        for host in hostnames:
            i = self.router_index[host]
            self.routers[i]._noise_state = float(self.noise[i])

    def flush_all(self) -> None:
        """Full write-back: counters, traffic, and noise."""
        self.flush_counters()
        self.flush_traffic()
        self.flush_noise()

    # -- compact active-port working set -------------------------------------------

    def _spill_traffic(self) -> None:
        """Scatter the compact offered-traffic copies back into the
        full-width columns (no-op unless a step has run since the last
        spill or cache rebuild)."""
        if not self._traffic_dirty:
            return
        ap = self._cache_ap
        self.rx_bps[ap] = self._ap_rx
        self.tx_bps[ap] = self._ap_tx
        self._traffic_dirty = False

    def _spill_counters(self) -> None:
        """Scatter the compact counter copies back into the full-width
        columns (no-op unless a step has run since the last spill or
        cache rebuild)."""
        if not self._counters_dirty:
            return
        ap = self._cache_ap
        self.c_rx_oct[ap] = self._ap_c_rx_oct
        self.c_tx_oct[ap] = self._ap_c_tx_oct
        self.c_rx_pkt[ap] = self._ap_c_rx_pkt
        self.c_tx_pkt[ap] = self._ap_c_tx_pkt
        self._counters_dirty = False

    def _refresh_active_cache(self) -> None:
        """(Re)build the compact per-active-port working set.

        Called at the end of every :meth:`refresh` and
        :meth:`patch_routers`, i.e. at configuration boundaries only.
        The per-step kernels (:meth:`apply_traffic`,
        :meth:`advance_counters`, :meth:`wall_power`) then run entirely
        on these length-``len(_active_ports)`` arrays: configuration
        columns are gathered once here instead of once per step, and
        the dynamic state (offered traffic, counters) lives compactly
        between boundaries, spilled back by :meth:`_spill_traffic` /
        :meth:`_spill_counters` before any full-width read.  Every
        cached value is a pure gather of the full-width columns, so the
        step arithmetic is element-for-element identical to the
        full-width formulation.
        """
        self._spill_traffic()
        self._spill_counters()
        ap = self._active_ports
        self._cache_ap = ap
        # Configuration gathers (invalidated by refresh/patch only).
        self._ap_link_up = self.link_up[ap]
        self._ap_powered = self.port_powered[ap]
        self._ap_dyn_ok = self.dyn_ok[ap]
        self._ap_p_offset = self.p_offset_w[ap]
        self._ap_e_bit = self.e_bit_j[ap]
        self._ap_e_pkt = self.e_pkt_j[ap]
        # Packet sizes are constant between boundaries (the scatter
        # ports are pinned to FLEET_PACKET_BYTES in _refresh_links, the
        # rest keep their seeded values), so the pps denominator and
        # octet frame factors are too.
        pb = self.packet_bytes[ap]
        self._ap_denom = units.BITS_PER_BYTE * (pb + units.L_HEADER_BYTES)
        self._ap_frame = pb + units.ETHERNET_HEADER_BYTES
        # Compact dynamic state, authoritative until the next spill.
        self._ap_rx = self.rx_bps[ap]
        self._ap_tx = self.tx_bps[ap]
        self._ap_c_rx_oct = self.c_rx_oct[ap]
        self._ap_c_tx_oct = self.c_tx_oct[ap]
        self._ap_c_rx_pkt = self.c_rx_pkt[ap]
        self._ap_c_tx_pkt = self.c_tx_pkt[ap]
        # External-link admin state, hoisted out of apply_traffic; when
        # every external link is up the per-step masking is the
        # identity and is skipped wholesale.
        self._ext_link_up = self.link_up[self.ext_a]
        self._ext_all_up = bool(self._ext_link_up.all())
        self._ext_any_new = bool(self.ext_is_new.any())
        self._step_cache: Optional[Tuple[np.ndarray, np.ndarray,
                                         np.ndarray]] = None

    # -- configuration rebuild ------------------------------------------------------

    def refresh(self,
                new_external_link_ids: FrozenSet[int] = frozenset(),
                view_hosts: Sequence[str] = ()) -> None:
        """Rebuild every configuration column from the object model.

        Called once at construction and again after any event fires --
        the invalidation contract is "any object mutation invalidates the
        whole columnar config", which costs O(ports + links) on the rare
        event steps and keeps the hot loop free of staleness checks.
        """
        M_REFRESH.inc()
        self._refresh_ports()
        self._refresh_routers()
        self._refresh_psus()
        self._refresh_links(new_external_link_ids)
        self._refresh_views(view_hosts)
        self._refresh_active_cache()

    def _patch_port(self, f: int) -> None:
        """Recompute one port's configuration columns from its object."""
        port = self.ports[f]
        s_in, s_port, s_up = port.static_components()
        self.trx_in_w[f] = s_in
        self.port_w[f] = s_port
        self.trx_up_w[f] = s_up
        # Same accumulation chain as Port.static_power_w(), so the
        # column equals the pre-split value bit for bit.
        static = 0.0
        static += s_in
        static += s_port
        static += s_up
        self.static_w[f] = static
        self.sleep_w[f] = port.sleep_savings_w()
        self.link_up[f] = port.link_up
        truth = port.class_truth()
        if truth is None:
            self._has_truth[f] = False
            self.p_offset_w[f] = 0.0
            self.e_bit_j[f] = 0.0
            self.e_pkt_j[f] = 0.0
        else:
            self._has_truth[f] = True
            self.p_offset_w[f] = truth.p_offset_w
            self.e_bit_j[f] = truth.e_bit_j
            self.e_pkt_j[f] = truth.e_pkt_j

    def _refresh_ports(self) -> None:
        for f in range(self.n_ports):
            self._patch_port(f)
        np.logical_and(self.link_up, self._has_truth, out=self.dyn_ok)
        self.static_sum = np.bincount(self.port_router,
                                      weights=self.static_w,
                                      minlength=self.n_routers)
        self.trx_in_sum = np.bincount(self.port_router,
                                      weights=self.trx_in_w,
                                      minlength=self.n_routers)
        self.port_sum = np.bincount(self.port_router,
                                    weights=self.port_w,
                                    minlength=self.n_routers)
        self.trx_up_sum = np.bincount(self.port_router,
                                      weights=self.trx_up_w,
                                      minlength=self.n_routers)
        self.sleep_sum = np.bincount(self.port_router,
                                     weights=self.sleep_w,
                                     minlength=self.n_routers)

    def _patch_router_scalars(self, i: int) -> None:
        """Recompute one router's scalar columns from its object.

        ``(p_base + fan_bump) + thermal`` matches the association order
        of ``VirtualRouter.wall_referred_power_w``.
        """
        router = self.routers[i]
        self.powered[i] = router.powered
        self.base_fixed[i] = ((router.spec.p_base_w + router.fan_bump_w)
                              + router.thermal_power_w())
        self.noise_std[i] = router.noise_std_w

    def _refresh_routers(self) -> None:
        for i in range(self.n_routers):
            self._patch_router_scalars(i)
        np.take(self.powered, self.port_router, out=self.port_powered)
        # Routers with ambient noise enabled: the only ones whose private
        # RNG is drawn per step, so advance_noise skips the rest (the
        # object path's noise_std_w > 0 guard skips the same draws).
        self._noise_idx = [i for i in range(self.n_routers)
                           if self.noise_std[i] > 0.0]
        # Per-router wall->DC inversion grids (reuse each router's own
        # lazily built grid so interpolation matches np.interp on it).
        # The grid depends only on the *nominal* PSU group, which is a
        # pure function of the router model, so routers of one model
        # share a single grid pair and the batched inversion works on
        # one model group at a time instead of a dense (routers x grid)
        # matrix.
        grid_by_model: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        members: Dict[str, List[int]] = {}
        for i, router in enumerate(self.routers):
            cached = grid_by_model.get(router.spec.name)
            if router._inversion_grid is None:
                if cached is None:
                    router._dc_from_wall_referred(0.0)
                else:
                    router._inversion_grid = cached
            if cached is None:
                grid_by_model[router.spec.name] = router._inversion_grid
            members.setdefault(router.spec.name, []).append(i)
        self._grid_groups: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = [
            (np.array(members[name], dtype=np.int64),
             grid_by_model[name][0], grid_by_model[name][1])
            for name in grid_by_model]

    def _psu_rows_of(self, i: int) -> List[Tuple[float, Tuple[float, ...],
                                                 float, float, float,
                                                 float, bool]]:
        """Coefficient rows ``(cap, scales, a, b, c, div, zero)`` for one
        router's PSUs under its sharing policy."""
        router = self.routers[i]
        group = router.psu_group
        n = len(group.instances)
        rows = []
        for j, psu in enumerate(group.instances):
            collapsed = _collapse_curve(psu.curve)
            if collapsed is None:
                raise ValueError(
                    f"{router.hostname}: PSU curve "
                    f"{type(psu.curve).__name__} is not vectorizable; "
                    f"run with engine='object'")
            scales, a, b, c = collapsed
            if group.policy == SharingPolicy.BALANCED:
                div, zero = float(n), False
            elif j == 0:
                div, zero = 1.0, False
            elif group.policy == SharingPolicy.HOT_STANDBY:
                div, zero = 1.0, True      # powered but idle
            else:                          # SINGLE: spare draws nothing
                continue
            rows.append((psu.capacity_w, scales, a, b, c, div, zero))
        return rows

    def _refresh_psus(self) -> None:
        rows_router: List[int] = []
        rows_cap: List[float] = []
        rows_scales: List[Tuple[float, ...]] = []
        rows_a: List[float] = []
        rows_b: List[float] = []
        rows_c: List[float] = []
        rows_div: List[float] = []
        rows_zero: List[bool] = []
        row_start = np.zeros(self.n_routers, dtype=np.int64)
        row_stop = np.zeros(self.n_routers, dtype=np.int64)
        for i in range(self.n_routers):
            row_start[i] = len(rows_router)
            for cap, scales, a, b, c, div, zero in self._psu_rows_of(i):
                rows_router.append(i)
                rows_cap.append(cap)
                rows_scales.append(scales)
                rows_a.append(a)
                rows_b.append(b)
                rows_c.append(c)
                rows_div.append(div)
                rows_zero.append(zero)
            row_stop[i] = len(rows_router)
        self._psu_row_start = row_start
        self._psu_row_stop = row_stop
        self.psu_router = np.array(rows_router, dtype=np.int64)
        self.psu_cap = np.array(rows_cap)
        # Scale chain padded with exact 1.0 so every row multiplies in the
        # same nesting order as its ScaledLossCurve stack.
        depth = max((len(s) for s in rows_scales), default=0)
        self.psu_scales = np.ones((len(rows_scales), depth))
        for row, scales in enumerate(rows_scales):
            self.psu_scales[row, :len(scales)] = scales
        self.psu_a = np.array(rows_a)
        self.psu_b = np.array(rows_b)
        self.psu_c = np.array(rows_c)
        self.psu_div = np.array(rows_div)
        self.psu_zero = np.array(rows_zero, dtype=bool)

    def _flat_of(self, hostname: str, port_index: int) -> int:
        return int(self._router_start[self.router_index[hostname]]
                   + port_index)

    def _refresh_links(self, new_external_link_ids) -> None:
        """Columnise the link list.

        ``scatter_ports``/``scatter_src`` replay the object engine's
        per-link traffic application as one fancy assignment: entries are
        emitted in link-list order (both ends of an internal link, then
        the local end of an external link), so a port referenced by two
        links -- possible when a freed port is re-provisioned while a
        stale link lingers in the list -- resolves to the same last-writer
        as the object loop.
        """
        int_rows: List[Tuple[int, int, float, int]] = []   # a, b, cap95, id
        ext_rows: List[Tuple[int, float, bool]] = []       # a, cap, is_new
        scatter_ports: List[int] = []
        scatter_src: List[int] = []
        ext_ids: List[int] = []
        for link in self.network.links:
            fa = self._flat_of(link.a.hostname, link.a.port_index)
            if link.is_internal:
                src = len(int_rows)
                fb = self._flat_of(link.b.hostname, link.b.port_index)
                int_rows.append((fa, fb,
                                 0.95 * units.gbps_to_bps(link.speed_gbps),
                                 link.link_id))
                scatter_ports.extend((fa, fb))
                scatter_src.extend((src, src))
            else:
                src = len(ext_rows)
                ext_rows.append((fa, units.gbps_to_bps(link.speed_gbps),
                                 link.link_id in new_external_link_ids))
                ext_ids.append(link.link_id)
                scatter_ports.append(fa)
                scatter_src.append(~src)    # ones' complement marks external
        self.int_a = np.array([r[0] for r in int_rows], dtype=np.int64)
        self.int_b = np.array([r[1] for r in int_rows], dtype=np.int64)
        self.int_cap95 = np.array([r[2] for r in int_rows])
        self.ext_a = np.array([r[0] for r in ext_rows], dtype=np.int64)
        self.ext_cap = np.array([r[1] for r in ext_rows])
        self.ext_is_new = np.array([r[2] for r in ext_rows], dtype=bool)
        self.scatter_ports = np.array(scatter_ports, dtype=np.int64)
        src = np.array(scatter_src, dtype=np.int64)
        # Map external rows (encoded as ~row) past the internal block.
        self.scatter_src = np.where(src >= 0, src, len(int_rows) + ~src)
        # Base internal loads aligned to the internal-link rows.
        base_loads = self.traffic._base_internal_loads
        self.int_loads = np.array(
            [base_loads.get(r[3], 0.0) for r in int_rows])
        # Demand list -> external-row scatter for the traffic model.
        row_of = {link_id: row for row, link_id in enumerate(ext_ids)}
        self.ext_demand_rows = np.array(
            [row_of[d.link_id] for d in self.traffic.externals],
            dtype=np.int64)
        self._linked_flat = sorted(set(scatter_ports))
        self._linked_set = frozenset(self._linked_flat)
        # Ports that can ever carry traffic during this configuration:
        # the scatter targets, plus any port whose object held a nonzero
        # offered rate when the columns were (re)built.  Every other
        # port's dynamic power is exactly 0.0 and its counters never
        # move, so the per-step kernels skip them wholesale -- the same
        # floats as full-width arithmetic, a fraction of the bandwidth.
        seeded = np.nonzero(carrying_traffic_mask(self.rx_bps,
                                                  self.tx_bps))[0]
        self._active_ports = np.union1d(
            self.scatter_ports, seeded).astype(np.int64)
        self._active_router = self.port_router[self._active_ports]
        # Linked ports always carry the fleet packet mix; pinning the
        # column here (instead of re-writing the same constant every
        # apply_traffic) is what lets the active cache precompute the
        # pps denominators.  Nothing reads packet sizes between a
        # refresh and the next apply_traffic, so the write point is
        # unobservable.
        self.packet_bytes[self.scatter_ports] = 700.0  # FLEET_PACKET_BYTES
        # Scatter targets as positions within the active-port set (the
        # active set contains every scatter port by construction).
        self._scatter_pos = np.searchsorted(
            self._active_ports, self.scatter_ports)
        # Step scratch buffers, reused every step.
        self._rates_buf = np.empty(len(self.int_a) + len(self.ext_a))
        self._values_buf = np.empty(len(self.scatter_ports))

    def _refresh_views(self, view_hosts: Sequence[str]) -> None:
        """Ports whose objects must track columnar traffic every step.

        Autopower meters read ``router.wall_power_w`` off the object, and
        step observers (the fleet monitor) may read object state of the
        routers they watch, so those routers keep their Port objects'
        offered traffic in sync (see :meth:`sync_views`).
        """
        linked = self._linked_set
        self._view_routers: List[Tuple[int, VirtualRouter, List[int]]] = []
        for host in view_hosts:
            i = self.router_index[host]
            flats = [f for f in range(self._router_start[i],
                                      self._router_stop[i]) if f in linked]
            self._view_routers.append((i, self.routers[i], flats))

    def sync_views(self) -> None:
        """Flush traffic + noise of the view routers to their objects."""
        for i, router, flats in self._view_routers:
            self.flush_traffic(flats)
            router._noise_state = float(self.noise[i])

    # -- incremental refresh ---------------------------------------------------------

    def patch_routers(self, hostnames: Sequence[str]) -> None:
        """Patch the configuration columns of the named routers in place.

        The incremental counterpart of :meth:`refresh`: the port, router,
        and PSU columns of exactly these routers are recomputed from
        their objects, and everything else -- including the link/scatter
        layout, which no patchable event can change -- stays untouched.
        The result is bit-identical to a full :meth:`refresh` because
        every patched value is a pure function of the router's own
        object state, and the per-router static sum replays
        ``np.bincount``'s sequential accumulation order.
        """
        M_ROUTERS_PATCHED.inc(len(hostnames))
        for host in hostnames:
            i = self.router_index[host]
            start = int(self._router_start[i])
            stop = int(self._router_stop[i])
            for f in range(start, stop):
                self._patch_port(f)
            np.logical_and(self.link_up[start:stop],
                           self._has_truth[start:stop],
                           out=self.dyn_ok[start:stop])
            # np.bincount accumulates weights one float64 addition at a
            # time in index order; a running scalar sum over the
            # router's ports is the identical chain of additions.
            acc = 0.0
            acc_in = 0.0
            acc_port = 0.0
            acc_up = 0.0
            acc_sleep = 0.0
            for f in range(start, stop):
                acc += float(self.static_w[f])
                acc_in += float(self.trx_in_w[f])
                acc_port += float(self.port_w[f])
                acc_up += float(self.trx_up_w[f])
                acc_sleep += float(self.sleep_w[f])
            self.static_sum[i] = acc
            self.trx_in_sum[i] = acc_in
            self.port_sum[i] = acc_port
            self.trx_up_sum[i] = acc_up
            self.sleep_sum[i] = acc_sleep
            self._patch_router_scalars(i)
            self.port_powered[start:stop] = self.powered[i]
            self._patch_psu_rows(i)
        self._refresh_active_cache()

    def _patch_psu_rows(self, i: int) -> None:
        """Recompute one router's PSU coefficient rows in place.

        PSU aging (``DegradePsu``) can deepen a curve's scale chain; the
        shared scale matrix is widened with exact-1.0 columns when
        needed, which multiplies identically to a full rebuild's
        padding.
        """
        rows = self._psu_rows_of(i)
        r0 = int(self._psu_row_start[i])
        r1 = int(self._psu_row_stop[i])
        if len(rows) != r1 - r0:
            raise ValueError(
                f"{self.routers[i].hostname}: PSU row count changed "
                f"({r1 - r0} -> {len(rows)}); a sharing-policy change "
                f"mid-run requires a full refresh()")
        depth = max((len(r[1]) for r in rows), default=0)
        if depth > self.psu_scales.shape[1]:
            pad = np.ones((self.psu_scales.shape[0],
                           depth - self.psu_scales.shape[1]))
            self.psu_scales = np.concatenate([self.psu_scales, pad], axis=1)
        for k, (cap, scales, a, b, c, div, zero) in enumerate(rows):
            row = r0 + k
            self.psu_cap[row] = cap
            self.psu_scales[row, :] = 1.0
            self.psu_scales[row, :len(scales)] = scales
            self.psu_a[row] = a
            self.psu_b[row] = b
            self.psu_c[row] = c
            self.psu_div[row] = div
            self.psu_zero[row] = zero

    def memory_footprint(self) -> Dict[str, float]:
        """Bytes held by the columnar arrays (the object fleet excluded).

        ``bytes_total`` sums every NumPy column plus the shared
        per-model inversion grids; ``bytes_per_router`` divides by fleet
        size -- the figure the bench report tracks so the columnar
        footprint provably stays linear in fleet size.
        """
        total = 0
        for name in sorted(vars(self)):
            value = vars(self)[name]
            if isinstance(value, np.ndarray):
                total += value.nbytes
        for indices, wall_grid, dc_grid in self._grid_groups:
            total += indices.nbytes + wall_grid.nbytes + dc_grid.nbytes
        return {"bytes_total": float(total),
                "bytes_per_router": total / max(1, self.n_routers)}

    # -- one simulation step, vectorized ----------------------------------------------

    def apply_traffic(self, t_s: float) -> float:
        """Vectorised mirror of ``NetworkSimulation._apply_traffic``.

        Consumes the traffic model's RNG exactly like the object path
        (externals first, then the internal factor) and returns total
        external ingress bps.
        """
        _, demand_rates = self.traffic.external_rates_vector(t_s)
        mult, noise = self.traffic.internal_rate_factors(t_s)
        rates = self._rates_buf
        n_int = len(self.int_a)
        # External rows are assembled in place in the tail of the shared
        # rates buffer; the masked assignments write exactly the floats
        # the equivalent np.where chains would select.
        ext_rates = rates[n_int:]
        ext_rates.fill(0.0)
        if len(self.ext_demand_rows):
            ext_rates[self.ext_demand_rows] = demand_rates
        if self._ext_any_new:
            seed = (ext_rates == 0.0) & self.ext_is_new
            ext_rates[seed] = (0.02 * self.ext_cap)[seed]
        if not self._ext_all_up:
            ext_rates[~self._ext_link_up] = 0.0
        int_rates = rates[:n_int]
        np.multiply(self.int_loads, mult, out=int_rates)
        np.multiply(int_rates, noise, out=int_rates)
        np.minimum(int_rates, self.int_cap95, out=int_rates)
        values = np.take(rates, self.scatter_src, out=self._values_buf)
        self._ap_rx[self._scatter_pos] = values
        self._ap_tx[self._scatter_pos] = values
        self._traffic_dirty = True
        return float(ext_rates.sum())

    def advance_counters(self, dt_s: float) -> None:
        """Accumulate counters for one step (mirrors ``Port.advance``).

        Only the active ports (see :meth:`_refresh_links`) are touched:
        every other port carries zero traffic for the whole
        configuration, so its increment is exactly 0.0 and ``floor`` of
        its (integral) counter is the identity -- skipping it is
        bit-identical to the full-width update.
        """
        rx = self._ap_rx
        tx = self._ap_tx
        rx_tx = rx + tx
        active = (self._ap_link_up & self._ap_powered & (rx_tx > 0.0))
        denom = self._ap_denom
        rx_pps = rx / denom
        tx_pps = tx / denom
        frame = self._ap_frame
        zero = 0.0
        rx_dt = rx_pps * dt_s
        tx_dt = tx_pps * dt_s
        # np.floor replicates the object path's int(prev + inc) truncation
        # (counters are non-negative and integral below 2^53); in-place
        # add-then-floor computes the same floor(prev + inc).
        c = self._ap_c_rx_oct
        np.add(c, np.where(active, rx_dt * frame, zero), out=c)
        np.floor(c, out=c)
        c = self._ap_c_tx_oct
        np.add(c, np.where(active, tx_dt * frame, zero), out=c)
        np.floor(c, out=c)
        c = self._ap_c_rx_pkt
        np.add(c, np.where(active, rx_dt, zero), out=c)
        np.floor(c, out=c)
        c = self._ap_c_tx_pkt
        np.add(c, np.where(active, tx_dt, zero), out=c)
        np.floor(c, out=c)
        self._counters_dirty = True
        # Hand the shared intermediates to wall_power (always the next
        # call in the step loop); consumed once, never stale.
        self._step_cache = (rx_tx, rx_pps, tx_pps)

    def advance_noise(self, rho: float, innovation_std: np.ndarray) -> None:
        """One AR(1) noise update per powered router (same draws as
        ``VirtualRouter.advance``; one scalar draw per router keeps each
        router's private RNG stream identical to the object path).  Only
        routers with noise enabled are visited -- the object path's
        ``noise_std_w > 0`` guard skips exactly the same draws."""
        noise = self.noise
        routers = self.routers
        for i in self._noise_idx:
            router = routers[i]
            if router.powered:
                noise[i] = (rho * noise[i]
                            + float(router.rng.normal(
                                0.0, innovation_std[i])))

    def wall_power(self,
                   components: Optional[np.ndarray] = None) -> np.ndarray:
        """Instantaneous wall power of every router, including noise.

        The dynamic term is evaluated over the active ports only (see
        :meth:`advance_counters`); inactive ports contribute exactly 0.0
        in the full-width formula, and adding 0.0 never changes a
        partial sum, so the per-router segment sums are bit-identical.

        With ``components`` (a ``(n_routers, len(COMPONENTS))`` buffer,
        see :mod:`repro.obs.ledger`), the attribution split is written
        into it without changing the returned power by a single bit: the
        dynamic term decomposes as ``np.where(mask, (a + b) + c, 0) ==
        (np.where(mask, a, 0) + np.where(mask, b, 0)) + np.where(mask,
        c, 0)`` elementwise, so the masked total is the exact float the
        fused expression produces.
        """
        rx = self._ap_rx
        tx = self._ap_tx
        cache = self._step_cache
        self._step_cache = None
        if cache is None:
            denom = self._ap_denom
            rx_tx = rx + tx
            total_pps = rx / denom + tx / denom
        else:
            rx_tx, rx_pps, tx_pps = cache
            total_pps = rx_pps + tx_pps
        mask = self._ap_dyn_ok & carrying_traffic_mask(rx, tx)
        if components is None:
            dyn = np.where(
                mask,
                (self._ap_p_offset + self._ap_e_bit * rx_tx)
                + self._ap_e_pkt * total_pps,
                0.0)
        else:
            off = np.where(mask, self._ap_p_offset, 0.0)
            bit = np.where(mask, self._ap_e_bit * rx_tx, 0.0)
            pkt = np.where(mask, self._ap_e_pkt * total_pps, 0.0)
            dyn = (off + bit) + pkt
        dyn_sum = np.bincount(self._active_router, weights=dyn,
                              minlength=self.n_routers)
        wall_ref = (self.base_fixed + self.static_sum) + dyn_sum
        dc = self._dc_from_wall_referred(wall_ref)
        device = np.maximum(0.0, dc + self.noise)
        wall = self._psu_wall(device)
        result = np.where(self.powered, wall, 0.0)
        if components is not None:
            # Column order matches repro.obs.ledger.COMPONENTS.  Every
            # component is zeroed where the router is unpowered, like
            # the returned wall power.
            powered = self.powered
            components[:, 0] = np.where(powered, self.base_fixed, 0.0)
            components[:, 1] = np.where(powered, self.trx_in_sum, 0.0)
            components[:, 2] = np.where(powered, self.port_sum, 0.0)
            components[:, 3] = np.where(powered, self.trx_up_sum, 0.0)
            components[:, 4] = np.where(powered, np.bincount(
                self._active_router, weights=off,
                minlength=self.n_routers), 0.0)
            components[:, 5] = np.where(powered, np.bincount(
                self._active_router, weights=bit,
                minlength=self.n_routers), 0.0)
            components[:, 6] = np.where(powered, np.bincount(
                self._active_router, weights=pkt,
                minlength=self.n_routers), 0.0)
            components[:, 7] = np.where(powered, dc - wall_ref, 0.0)
            components[:, 8] = np.where(powered, device - dc, 0.0)
            components[:, 9] = np.where(powered, wall - device, 0.0)
            components[:, 10] = np.where(powered, self.sleep_sum, 0.0)
        return result

    def _dc_from_wall_referred(self, wall_ref: np.ndarray) -> np.ndarray:
        """Batched equivalent of ``VirtualRouter._dc_from_wall_referred``.

        Works one model group at a time (routers of a model share one
        inversion grid): ``np.searchsorted(side="left")`` counts grid
        points strictly below each value -- exactly the dense form's
        ``(grids < wall).sum(axis=1)`` -- so the interpolation arithmetic
        is element-for-element identical at a fraction of the memory
        traffic.
        """
        dc = np.empty(self.n_routers)
        for indices, wall_grid, dc_grid in self._grid_groups:
            w = wall_ref[indices]
            idx = np.clip(np.searchsorted(wall_grid, w, side="left") - 1,
                          0, len(wall_grid) - 2)
            w0 = wall_grid[idx]
            w1 = wall_grid[idx + 1]
            d0 = dc_grid[idx]
            d1 = dc_grid[idx + 1]
            out = ((d1 - d0) / (w1 - w0)) * (w - w0) + d0
            out = np.where(w < wall_grid[0], dc_grid[0], out)
            dc[indices] = np.where(w >= wall_grid[-1], dc_grid[-1], out)
        return dc

    def _psu_wall(self, device_w: np.ndarray) -> np.ndarray:
        """Per-router wall power through the PSU curves (``PSUGroup.wall_power``)."""
        share = np.where(self.psu_zero, 0.0,
                         device_w[self.psu_router] / self.psu_div)
        if np.any(share > self.psu_cap * 1.05):
            worst = int(np.argmax(share / self.psu_cap))
            raise ValueError(
                f"PSU overloaded: asked for {share[worst]:.1f} W out of a "
                f"{self.psu_cap[worst]:.0f} W supply")
        positive = share > 0.0
        x = share / self.psu_cap
        loss_frac = (self.psu_a + self.psu_b * x) + self.psu_c * x ** 2
        idle_in = self.psu_a * self.psu_cap
        for k in range(self.psu_scales.shape[1]):
            loss_frac = self.psu_scales[:, k] * loss_frac
            idle_in = self.psu_scales[:, k] * idle_in
        safe = np.where(positive, x + loss_frac, 1.0)
        eff = np.where(positive, x / safe, 1.0)
        active_in = share + (share / np.where(positive, eff, 1.0) - share)
        psu_in = np.where(positive, active_in, idle_in)
        return np.bincount(self.psu_router, weights=psu_in,
                           minlength=self.n_routers)


class VectorizedEngine:
    """Drives one :class:`NetworkSimulation` run through the fast path.

    Mirrors ``NetworkSimulation.run``'s step loop exactly -- events, then
    traffic, then counter/noise advance, then power sampling, SNMP polls
    and Autopower ticks -- but with all O(ports) work columnar.
    """

    def __init__(self, simulation):
        self.sim = simulation
        #: Captured at construction so one run is internally consistent
        #: even if the module flag is toggled mid-run (tests do).
        self.incremental = INCREMENTAL_REFRESH
        self.state = FleetState(
            simulation.network, simulation.traffic,
            new_external_link_ids=simulation._new_external_link_ids,
            view_hosts=simulation._view_hosts())

    def run_steps(self, n_steps: int, step_s: float,
                  pending: Sequence["FleetEvent"],
                  collector: "SnmpCollector",
                  snmp_period_s: float, detailed_hosts: Sequence[str],
                  grid: np.ndarray, total_power: np.ndarray,
                  total_traffic: np.ndarray,
                  ledger: Optional["LedgerAccumulator"] = None) -> None:
        """Advance the fleet ``n_steps`` columnar steps in place.

        Mirrors the object engine's stepping contract exactly --
        events at step boundaries, SNMP polling cadence, observer and
        Autopower hooks -- filling the caller's pre-allocated
        ``grid`` / ``total_power`` / ``total_traffic`` columns.  With a
        ``ledger``, each step additionally writes the attribution split
        into the ledger's buffer (see :meth:`FleetState.wall_power`);
        the wall-power floats are unchanged either way.
        """
        sim = self.sim
        state = self.state
        rho = float(np.exp(-step_s / _NOISE_TAU_S))
        innovation_std = state.noise_std * float(
            np.sqrt(max(0.0, 1 - rho ** 2)))
        next_poll_s = sim.clock_s
        event_idx = 0
        hostnames = [r.hostname for r in state.routers]
        # Step latencies are collected locally and handed to the
        # histogram in one batched observe_many after the loop, so the
        # hot path never crosses the instrument layer per step.
        from repro.network.simulation import (M_EVENTS, M_SNMP_POLLS,
                                              M_STEP_SECONDS, StepSnapshot)
        from repro.obs import profile
        from repro.obs.ledger import COMPONENTS
        # Kernel regions resolve to a shared no-op context while
        # profiling is disabled; timing stays in the profiler
        # side-channel and never touches simulation state.
        region = profile.region
        observing = metrics.enabled()
        observers = sim.observers
        step_durations: List[float] = []
        patch_durations: List[float] = []

        for step in range(n_steps):
            if observing:
                # netpower: ignore[NP-DET-001] -- wall-clock here only
                # feeds the step-latency histogram (an observability
                # side-channel); it never reaches simulation state or
                # any deterministic report.
                step_t0 = time.perf_counter()
            t = sim.clock_s
            if event_idx < len(pending) and pending[event_idx].at_s <= t:
                # Event boundary: hand authority back to the objects,
                # apply, then refresh the columnar config -- patched in
                # place when every event declares its dirty routers,
                # rebuilt wholesale when any event reshapes the links.
                M_EVENT_BOUNDARIES.inc()
                boundary: List["FleetEvent"] = []
                while (event_idx < len(pending)
                       and pending[event_idx].at_s <= t):
                    boundary.append(pending[event_idx])
                    event_idx += 1
                dirty: Optional[set] = set() if self.incremental else None
                if dirty is not None:
                    for event in boundary:
                        declared = event.dirty_hosts(sim)
                        if declared is None:
                            dirty = None
                            break
                        dirty.update(declared)
                if dirty is None:
                    with region("kernel.refresh"):
                        state.flush_counters()
                        state.flush_noise()
                        for event in boundary:
                            M_EVENTS.labels(
                                type=type(event).__name__).inc()
                            event.apply(sim)
                        state.snapshot_counters()
                        state.refresh(sim._new_external_link_ids,
                                      sim._view_hosts())
                else:
                    if observing:
                        # netpower: ignore[NP-DET-001] -- wall-clock here
                        # only feeds the patch-latency histogram; it
                        # never reaches simulation state.
                        patch_t0 = time.perf_counter()
                    hosts = sorted(dirty)
                    with region("kernel.patch_routers"):
                        state.flush_counters(hosts)
                        state.flush_noise(hosts)
                        for event in boundary:
                            M_EVENTS.labels(
                                type=type(event).__name__).inc()
                            event.apply(sim)
                        state.snapshot_counters(hosts)
                        state.patch_routers(hosts)
                        state._refresh_views(sim._view_hosts())
                    M_PARTIAL_REFRESH.inc()
                    if observing:
                        # netpower: ignore[NP-DET-001] -- same
                        # side-channel as patch_t0 above.
                        patch_dt = time.perf_counter() - patch_t0
                        patch_durations.append(patch_dt)
                innovation_std = state.noise_std * float(
                    np.sqrt(max(0.0, 1 - rho ** 2)))
            with region("kernel.apply_traffic"):
                ingress = state.apply_traffic(t)
            with region("kernel.advance_counters"):
                state.advance_counters(step_s)
            with region("kernel.advance_noise"):
                state.advance_noise(rho, innovation_std)
            sim.clock_s += step_s
            t_sample = sim.clock_s
            grid[step] = t_sample
            if ledger is None:
                with region("kernel.wall_power"):
                    wall = state.wall_power()
                fleet_attr = None
            else:
                with region("kernel.wall_power"):
                    wall = state.wall_power(components=ledger.power_buf)
                fleet_attr = ledger.record(t_sample, step_s,
                                           ledger.power_buf, wall)
            total_power[step] = wall.sum()
            total_traffic[step] = ingress
            polled = t_sample >= next_poll_s
            if polled:
                M_SNMP_POLLS.inc()
                collector.record_vector(t_sample, hostnames, wall, state)
                next_poll_s += max(snmp_period_s, step_s)
            if state._view_routers:
                state.sync_views()
            if sim.autopower_clients:
                for client in sim.autopower_clients.values():
                    client.tick(t_sample)
            if observers:
                with region("kernel.observers"):
                    power_by_host = dict(zip(hostnames, wall.tolist()))
                    snapshot = StepSnapshot(
                        step=step, t_s=t_sample, step_s=step_s,
                        total_power_w=float(total_power[step]),
                        total_traffic_bps=float(ingress),
                        power_by_host=power_by_host, snmp_polled=polled,
                        attribution=(
                            None if fleet_attr is None else
                            {name: float(fleet_attr[k])
                             for k, name in enumerate(COMPONENTS)}))
                    for observer in observers:
                        observer.on_step(snapshot)
            if observing:
                # netpower: ignore[NP-DET-001] -- same side-channel as
                # step_t0 above.
                step_durations.append(time.perf_counter() - step_t0)
        state.flush_all()
        if step_durations:
            M_STEP_SECONDS.labels(engine="vector").observe_many(
                step_durations)
        if patch_durations:
            M_PATCH_SECONDS.observe_many(patch_durations)
