"""Vectorized fleet-simulation fast path: columnar state over NumPy arrays.

The object engine in :mod:`repro.network.simulation` advances the fleet one
Python object at a time: every step re-walks every link, every
:meth:`VirtualRouter.advance` loops over its ports, and
``total_wall_power_w`` re-sums per-port power through Python method calls.
That is fine for a handful of routers; it is two orders of magnitude too
slow for ISP-sized fleets (hundreds of routers x dozens of ports x 10^4+
steps).

This module flattens every port in the fleet into structure-of-arrays
columns -- static power, ``e_bit``/``e_pkt``, offered rx/tx rates, link-up
masks, router ownership indices -- so one simulation step becomes a few
array operations (scatter the link rates, accumulate counters, segment-sum
power per router) instead of O(ports) Python calls.

Contracts that keep the fast path exactly equivalent to the object path:

* **Objects stay the source of truth.**  Events mutate the
  :class:`~repro.hardware.router.VirtualRouter` objects exactly as in the
  object engine; the columnar state is a *cache* that is flushed to the
  objects before any event fires and rebuilt afterwards (the same
  ``_mark_dirty`` philosophy as the router's own static-power cache,
  hoisted to fleet scope).  At the end of a run all counters, offered
  traffic, and noise states are written back, so post-run object
  inspection is indistinguishable from a scalar run.
* **Identical RNG streams.**  NumPy ``Generator`` array draws consume the
  underlying bit stream exactly like the equivalent sequence of scalar
  draws, so vectorised demand noise reproduces the object path's values
  bit for bit.  Per-router draws (AR(1) ambient noise, PSU sensor noise)
  come from per-router generators and are issued in the same per-router
  order as the object path.
* **Identical arithmetic where it matters.**  Elementwise array formulas
  mirror the scalar expressions' association order, counter accumulation
  replicates ``int(prev + inc)`` truncation via ``np.floor``, and the
  DC-inversion interpolation reuses each router's own ``_inversion_grid``.
  Remaining differences (pairwise vs. sequential summation, fused
  constant factors) stay within ~1e-12 relative error; the equivalence
  suite asserts 1e-9.

Counters are held as float64 columns: exact up to 2^53, far beyond any
realistic campaign, but the fast path does not reproduce the 2^64 counter
wrap (the object engine does).  Runs long enough to wrap a 64-bit octet
counter should use ``engine="object"``.
"""

from __future__ import annotations

import time
from typing import (TYPE_CHECKING, Dict, FrozenSet, List, Optional,
                    Sequence, Tuple)

import numpy as np

from repro import units
from repro.hardware.psu import QuadraticLossCurve, ScaledLossCurve, SharingPolicy
from repro.hardware.router import OfferedTraffic, Port, VirtualRouter
from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.network.events import FleetEvent
    from repro.network.topology import ISPNetwork
    from repro.telemetry.snmp import SnmpCollector

#: Noise correlation time of the routers' AR(1) ambient noise (matches
#: :meth:`VirtualRouter.advance`).
_NOISE_TAU_S = 600.0

M_REFRESH = metrics.counter(
    "netpower_sim_engine_refresh_total",
    "Columnar configuration rebuilds (construction + event boundaries)")
M_EVENT_BOUNDARIES = metrics.counter(
    "netpower_sim_engine_event_boundaries_total",
    "Vectorized-run steps that flushed columns to apply events")


def _collapse_curve(curve) -> Optional[Tuple[Tuple[float, ...],
                                             float, float, float]]:
    """Reduce a PSU efficiency curve to ``(scales, a, b, c)`` if possible.

    Ground-truth PSU instances are ``ScaledLossCurve`` wrappers (possibly
    nested) around the quadratic PFE600 loss model; their loss fraction is
    ``s_n * (... * (s_1 * (a + b*x + c*x^2)))``.  The scales are returned
    innermost-first so callers can apply them in the same multiplication
    order as the nested objects (bit-identical results).  Returns ``None``
    for curve types the vectorized engine cannot evaluate in closed form.
    """
    scales: List[float] = []
    while isinstance(curve, ScaledLossCurve):
        scales.append(curve.scale)
        curve = curve.base
    if isinstance(curve, QuadraticLossCurve):
        return tuple(reversed(scales)), curve.a, curve.b, curve.c
    return None


def supports_vectorized(network: "ISPNetwork") -> bool:
    """Whether every router in the fleet is expressible in columnar form.

    True for all catalog hardware: the engine needs PSU curves that
    collapse to scaled quadratics (see :func:`_collapse_curve`) and one of
    the stock sharing policies.  Exotic custom curves fall back to the
    object engine via ``engine="auto"``.
    """
    for router in network.routers.values():
        if router.psu_group.policy not in (SharingPolicy.BALANCED,
                                           SharingPolicy.SINGLE,
                                           SharingPolicy.HOT_STANDBY):
            return False
        for psu in router.psu_group.instances:
            if _collapse_curve(psu.curve) is None:
                return False
    return True


class FleetState:
    """Structure-of-arrays snapshot of every port and router in a fleet.

    Two kinds of columns live here:

    * **Dynamic state** (counters, offered traffic, noise) is owned by the
      columns while a vectorized run is in flight and written back to the
      objects via :meth:`flush_counters` / :meth:`flush_traffic` /
      :meth:`flush_noise`.  It survives :meth:`refresh`.
    * **Configuration** (static power, link-up masks, PSU coefficients,
      link wiring) is derived from the objects and rebuilt wholesale by
      :meth:`refresh` whenever an event may have mutated topology or
      config -- the fleet-level analogue of the router ``_mark_dirty``
      hooks.
    """

    def __init__(self, network, traffic, new_external_link_ids=frozenset(),
                 view_hosts: Sequence[str] = ()):
        self.network = network
        self.traffic = traffic
        self.routers: List[VirtualRouter] = list(network.routers.values())
        self.n_routers = len(self.routers)
        self.router_index: Dict[str, int] = {
            r.hostname: i for i, r in enumerate(self.routers)}
        self.ports: List[Port] = [p for r in self.routers for p in r.ports]
        self.n_ports = len(self.ports)
        counts = [len(r.ports) for r in self.routers]
        starts = np.concatenate([[0], np.cumsum(counts)])
        self._router_start = starts[:-1]
        self._router_stop = starts[1:]
        self.port_router = np.repeat(np.arange(self.n_routers), counts)

        # Dynamic state, seeded from the objects once.
        self.rx_bps = np.array([p.traffic.rx_bps for p in self.ports])
        self.tx_bps = np.array([p.traffic.tx_bps for p in self.ports])
        self.packet_bytes = np.array(
            [p.traffic.packet_bytes for p in self.ports])
        self.noise = np.array([r._noise_state for r in self.routers])
        self.snapshot_counters()
        self.refresh(new_external_link_ids, view_hosts)

    # -- dynamic state <-> objects ------------------------------------------------

    def snapshot_counters(self) -> None:
        """Load counter columns from the Port objects (they are authoritative
        across events: a power cycle zeroes them on the object)."""
        self.c_rx_oct = np.array(
            [float(p.counters.rx_octets) for p in self.ports])
        self.c_tx_oct = np.array(
            [float(p.counters.tx_octets) for p in self.ports])
        self.c_rx_pkt = np.array(
            [float(p.counters.rx_packets) for p in self.ports])
        self.c_tx_pkt = np.array(
            [float(p.counters.tx_packets) for p in self.ports])

    def flush_counters(self, hostnames: Optional[Sequence[str]] = None) -> None:
        """Write counter columns back into the Port objects."""
        if hostnames is None:
            indices = range(self.n_ports)
        else:
            indices = []
            for host in hostnames:
                r = self.router_index[host]
                indices.extend(range(self._router_start[r],
                                     self._router_stop[r]))
        for f in indices:
            counters = self.ports[f].counters
            counters.rx_octets = int(self.c_rx_oct[f])
            counters.tx_octets = int(self.c_tx_oct[f])
            counters.rx_packets = int(self.c_rx_pkt[f])
            counters.tx_packets = int(self.c_tx_pkt[f])

    def flush_traffic(self, flat_indices: Optional[Sequence[int]] = None) -> None:
        """Write offered-traffic columns back into the Port objects."""
        if flat_indices is None:
            flat_indices = self._linked_flat
        for f in flat_indices:
            self.ports[f].traffic = OfferedTraffic(
                rx_bps=float(self.rx_bps[f]), tx_bps=float(self.tx_bps[f]),
                packet_bytes=float(self.packet_bytes[f]))

    def flush_noise(self) -> None:
        """Write the AR(1) noise states back into the routers."""
        for i, router in enumerate(self.routers):
            router._noise_state = float(self.noise[i])

    def flush_all(self) -> None:
        """Full write-back: counters, traffic, and noise."""
        self.flush_counters()
        self.flush_traffic()
        self.flush_noise()

    # -- configuration rebuild ------------------------------------------------------

    def refresh(self,
                new_external_link_ids: FrozenSet[int] = frozenset(),
                view_hosts: Sequence[str] = ()) -> None:
        """Rebuild every configuration column from the object model.

        Called once at construction and again after any event fires --
        the invalidation contract is "any object mutation invalidates the
        whole columnar config", which costs O(ports + links) on the rare
        event steps and keeps the hot loop free of staleness checks.
        """
        M_REFRESH.inc()
        self._refresh_ports()
        self._refresh_routers()
        self._refresh_psus()
        self._refresh_links(new_external_link_ids)
        self._refresh_views(view_hosts)

    def _refresh_ports(self) -> None:
        n = self.n_ports
        static = np.zeros(n)
        link_up = np.zeros(n, dtype=bool)
        p_off = np.zeros(n)
        e_bit = np.zeros(n)
        e_pkt = np.zeros(n)
        has_truth = np.zeros(n, dtype=bool)
        for f, port in enumerate(self.ports):
            static[f] = port.static_power_w()
            link_up[f] = port.link_up
            truth = port.class_truth()
            if truth is not None:
                has_truth[f] = True
                p_off[f] = truth.p_offset_w
                e_bit[f] = truth.e_bit_j
                e_pkt[f] = truth.e_pkt_j
        self.static_w = static
        self.link_up = link_up
        self.p_offset_w = p_off
        self.e_bit_j = e_bit
        self.e_pkt_j = e_pkt
        self.dyn_ok = link_up & has_truth
        self.static_sum = np.bincount(self.port_router, weights=static,
                                      minlength=self.n_routers)

    def _refresh_routers(self) -> None:
        self.powered = np.array([r.powered for r in self.routers], dtype=bool)
        self.port_powered = self.powered[self.port_router]
        # (p_base + fan_bump) + thermal, matching the association order of
        # VirtualRouter.wall_referred_power_w.
        self.base_fixed = np.array(
            [(r.spec.p_base_w + r.fan_bump_w) + r.thermal_power_w()
             for r in self.routers])
        self.noise_std = np.array([r.noise_std_w for r in self.routers])
        # Per-router wall->DC inversion grids (reuse each router's own
        # lazily built grid so interpolation matches np.interp on it).
        # The grid depends only on the *nominal* PSU group, which is a
        # pure function of the router model, so routers of one model that
        # have not built theirs yet can share a single build.
        grid_by_model: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        walls, dcs = [], []
        for router in self.routers:
            if router._inversion_grid is None:
                cached = grid_by_model.get(router.spec.name)
                if cached is None:
                    router._dc_from_wall_referred(0.0)
                    grid_by_model[router.spec.name] = router._inversion_grid
                else:
                    router._inversion_grid = cached
            wall_grid, dc_grid = router._inversion_grid
            walls.append(wall_grid)
            dcs.append(dc_grid)
        self.wall_grids = np.vstack(walls)
        self.dc_grids = np.vstack(dcs)

    def _refresh_psus(self) -> None:
        rows_router: List[int] = []
        rows_cap: List[float] = []
        rows_scales: List[Tuple[float, ...]] = []
        rows_a: List[float] = []
        rows_b: List[float] = []
        rows_c: List[float] = []
        rows_div: List[float] = []
        rows_zero: List[bool] = []
        for i, router in enumerate(self.routers):
            group = router.psu_group
            n = len(group.instances)
            for j, psu in enumerate(group.instances):
                collapsed = _collapse_curve(psu.curve)
                if collapsed is None:
                    raise ValueError(
                        f"{router.hostname}: PSU curve "
                        f"{type(psu.curve).__name__} is not vectorizable; "
                        f"run with engine='object'")
                scales, a, b, c = collapsed
                if group.policy == SharingPolicy.BALANCED:
                    div, zero = float(n), False
                elif j == 0:
                    div, zero = 1.0, False
                elif group.policy == SharingPolicy.HOT_STANDBY:
                    div, zero = 1.0, True      # powered but idle
                else:                          # SINGLE: spare draws nothing
                    continue
                rows_router.append(i)
                rows_cap.append(psu.capacity_w)
                rows_scales.append(scales)
                rows_a.append(a)
                rows_b.append(b)
                rows_c.append(c)
                rows_div.append(div)
                rows_zero.append(zero)
        self.psu_router = np.array(rows_router, dtype=np.int64)
        self.psu_cap = np.array(rows_cap)
        # Scale chain padded with exact 1.0 so every row multiplies in the
        # same nesting order as its ScaledLossCurve stack.
        depth = max((len(s) for s in rows_scales), default=0)
        self.psu_scales = np.ones((len(rows_scales), depth))
        for row, scales in enumerate(rows_scales):
            self.psu_scales[row, :len(scales)] = scales
        self.psu_a = np.array(rows_a)
        self.psu_b = np.array(rows_b)
        self.psu_c = np.array(rows_c)
        self.psu_div = np.array(rows_div)
        self.psu_zero = np.array(rows_zero, dtype=bool)

    def _flat_of(self, hostname: str, port_index: int) -> int:
        return int(self._router_start[self.router_index[hostname]]
                   + port_index)

    def _refresh_links(self, new_external_link_ids) -> None:
        """Columnise the link list.

        ``scatter_ports``/``scatter_src`` replay the object engine's
        per-link traffic application as one fancy assignment: entries are
        emitted in link-list order (both ends of an internal link, then
        the local end of an external link), so a port referenced by two
        links -- possible when a freed port is re-provisioned while a
        stale link lingers in the list -- resolves to the same last-writer
        as the object loop.
        """
        int_rows: List[Tuple[int, int, float, int]] = []   # a, b, cap95, id
        ext_rows: List[Tuple[int, float, bool]] = []       # a, cap, is_new
        scatter_ports: List[int] = []
        scatter_src: List[int] = []
        ext_ids: List[int] = []
        for link in self.network.links:
            fa = self._flat_of(link.a.hostname, link.a.port_index)
            if link.is_internal:
                src = len(int_rows)
                fb = self._flat_of(link.b.hostname, link.b.port_index)
                int_rows.append((fa, fb,
                                 0.95 * units.gbps_to_bps(link.speed_gbps),
                                 link.link_id))
                scatter_ports.extend((fa, fb))
                scatter_src.extend((src, src))
            else:
                src = len(ext_rows)
                ext_rows.append((fa, units.gbps_to_bps(link.speed_gbps),
                                 link.link_id in new_external_link_ids))
                ext_ids.append(link.link_id)
                scatter_ports.append(fa)
                scatter_src.append(~src)    # ones' complement marks external
        self.int_a = np.array([r[0] for r in int_rows], dtype=np.int64)
        self.int_b = np.array([r[1] for r in int_rows], dtype=np.int64)
        self.int_cap95 = np.array([r[2] for r in int_rows])
        self.ext_a = np.array([r[0] for r in ext_rows], dtype=np.int64)
        self.ext_cap = np.array([r[1] for r in ext_rows])
        self.ext_is_new = np.array([r[2] for r in ext_rows], dtype=bool)
        self.scatter_ports = np.array(scatter_ports, dtype=np.int64)
        src = np.array(scatter_src, dtype=np.int64)
        # Map external rows (encoded as ~row) past the internal block.
        self.scatter_src = np.where(src >= 0, src, len(int_rows) + ~src)
        # Base internal loads aligned to the internal-link rows.
        base_loads = self.traffic._base_internal_loads
        self.int_loads = np.array(
            [base_loads.get(r[3], 0.0) for r in int_rows])
        # Demand list -> external-row scatter for the traffic model.
        row_of = {link_id: row for row, link_id in enumerate(ext_ids)}
        self.ext_demand_rows = np.array(
            [row_of[d.link_id] for d in self.traffic.externals],
            dtype=np.int64)
        self._linked_flat = sorted(set(scatter_ports))

    def _refresh_views(self, view_hosts: Sequence[str]) -> None:
        """Ports whose objects must track columnar traffic every step.

        Autopower meters read ``router.wall_power_w`` off the object, and
        step observers (the fleet monitor) may read object state of the
        routers they watch, so those routers keep their Port objects'
        offered traffic in sync (see :meth:`sync_views`).
        """
        linked = set(self._linked_flat)
        self._view_routers: List[Tuple[int, VirtualRouter, List[int]]] = []
        for host in view_hosts:
            i = self.router_index[host]
            flats = [f for f in range(self._router_start[i],
                                      self._router_stop[i]) if f in linked]
            self._view_routers.append((i, self.routers[i], flats))

    def sync_views(self) -> None:
        """Flush traffic + noise of the view routers to their objects."""
        for i, router, flats in self._view_routers:
            self.flush_traffic(flats)
            router._noise_state = float(self.noise[i])

    # -- one simulation step, vectorized ----------------------------------------------

    def apply_traffic(self, t_s: float) -> float:
        """Vectorised mirror of ``NetworkSimulation._apply_traffic``.

        Consumes the traffic model's RNG exactly like the object path
        (externals first, then the internal factor) and returns total
        external ingress bps.
        """
        _, demand_rates = self.traffic.external_rates_vector(t_s)
        mult, noise = self.traffic.internal_rate_factors(t_s)
        ext_rates = np.zeros(len(self.ext_a))
        if len(self.ext_demand_rows):
            ext_rates[self.ext_demand_rows] = demand_rates
        if self.ext_is_new.any():
            ext_rates = np.where((ext_rates == 0.0) & self.ext_is_new,
                                 0.02 * self.ext_cap, ext_rates)
        ext_rates = np.where(self.link_up[self.ext_a], ext_rates, 0.0)
        int_rates = np.minimum((self.int_loads * mult) * noise,
                               self.int_cap95)
        rates = np.concatenate([int_rates, ext_rates])
        values = rates[self.scatter_src]
        self.rx_bps[self.scatter_ports] = values
        self.tx_bps[self.scatter_ports] = values
        self.packet_bytes[self.scatter_ports] = 700.0  # FLEET_PACKET_BYTES
        return float(ext_rates.sum())

    def advance_counters(self, dt_s: float) -> None:
        """Accumulate counters for one step (mirrors ``Port.advance``)."""
        active = (self.link_up & self.port_powered
                  & ((self.rx_bps + self.tx_bps) > 0.0))
        denom = units.BITS_PER_BYTE * (self.packet_bytes
                                       + units.L_HEADER_BYTES)
        rx_pps = self.rx_bps / denom
        tx_pps = self.tx_bps / denom
        frame = self.packet_bytes + units.ETHERNET_HEADER_BYTES
        zero = 0.0
        # np.floor replicates the object path's int(prev + inc) truncation
        # (counters are non-negative and integral below 2^53).
        self.c_rx_oct = np.floor(
            self.c_rx_oct + np.where(active, (rx_pps * dt_s) * frame, zero))
        self.c_tx_oct = np.floor(
            self.c_tx_oct + np.where(active, (tx_pps * dt_s) * frame, zero))
        self.c_rx_pkt = np.floor(
            self.c_rx_pkt + np.where(active, rx_pps * dt_s, zero))
        self.c_tx_pkt = np.floor(
            self.c_tx_pkt + np.where(active, tx_pps * dt_s, zero))

    def advance_noise(self, rho: float, innovation_std: np.ndarray) -> None:
        """One AR(1) noise update per powered router (same draws as
        ``VirtualRouter.advance``; one scalar draw per router keeps each
        router's private RNG stream identical to the object path)."""
        noise = self.noise
        for i, router in enumerate(self.routers):
            if router.powered and self.noise_std[i] > 0:
                noise[i] = (rho * noise[i]
                            + float(router.rng.normal(
                                0.0, innovation_std[i])))

    def wall_power(self) -> np.ndarray:
        """Instantaneous wall power of every router, including noise."""
        denom = units.BITS_PER_BYTE * (self.packet_bytes
                                       + units.L_HEADER_BYTES)
        total_pps = self.rx_bps / denom + self.tx_bps / denom
        dyn = np.where(
            self.dyn_ok & ((self.rx_bps != 0.0) | (self.tx_bps != 0.0)),
            (self.p_offset_w + self.e_bit_j * (self.rx_bps + self.tx_bps))
            + self.e_pkt_j * total_pps,
            0.0)
        dyn_sum = np.bincount(self.port_router, weights=dyn,
                              minlength=self.n_routers)
        wall_ref = (self.base_fixed + self.static_sum) + dyn_sum
        dc = self._dc_from_wall_referred(wall_ref)
        device = np.maximum(0.0, dc + self.noise)
        wall = self._psu_wall(device)
        return np.where(self.powered, wall, 0.0)

    def _dc_from_wall_referred(self, wall_ref: np.ndarray) -> np.ndarray:
        """Batched equivalent of ``VirtualRouter._dc_from_wall_referred``."""
        grids = self.wall_grids
        idx = np.clip((grids < wall_ref[:, None]).sum(axis=1) - 1,
                      0, grids.shape[1] - 2)
        w0 = np.take_along_axis(grids, idx[:, None], 1)[:, 0]
        w1 = np.take_along_axis(grids, idx[:, None] + 1, 1)[:, 0]
        d0 = np.take_along_axis(self.dc_grids, idx[:, None], 1)[:, 0]
        d1 = np.take_along_axis(self.dc_grids, idx[:, None] + 1, 1)[:, 0]
        dc = ((d1 - d0) / (w1 - w0)) * (wall_ref - w0) + d0
        dc = np.where(wall_ref < grids[:, 0], self.dc_grids[:, 0], dc)
        return np.where(wall_ref >= grids[:, -1], self.dc_grids[:, -1], dc)

    def _psu_wall(self, device_w: np.ndarray) -> np.ndarray:
        """Per-router wall power through the PSU curves (``PSUGroup.wall_power``)."""
        share = np.where(self.psu_zero, 0.0,
                         device_w[self.psu_router] / self.psu_div)
        if np.any(share > self.psu_cap * 1.05):
            worst = int(np.argmax(share / self.psu_cap))
            raise ValueError(
                f"PSU overloaded: asked for {share[worst]:.1f} W out of a "
                f"{self.psu_cap[worst]:.0f} W supply")
        positive = share > 0.0
        x = share / self.psu_cap
        loss_frac = (self.psu_a + self.psu_b * x) + self.psu_c * x ** 2
        idle_in = self.psu_a * self.psu_cap
        for k in range(self.psu_scales.shape[1]):
            loss_frac = self.psu_scales[:, k] * loss_frac
            idle_in = self.psu_scales[:, k] * idle_in
        safe = np.where(positive, x + loss_frac, 1.0)
        eff = np.where(positive, x / safe, 1.0)
        active_in = share + (share / np.where(positive, eff, 1.0) - share)
        psu_in = np.where(positive, active_in, idle_in)
        return np.bincount(self.psu_router, weights=psu_in,
                           minlength=self.n_routers)


class VectorizedEngine:
    """Drives one :class:`NetworkSimulation` run through the fast path.

    Mirrors ``NetworkSimulation.run``'s step loop exactly -- events, then
    traffic, then counter/noise advance, then power sampling, SNMP polls
    and Autopower ticks -- but with all O(ports) work columnar.
    """

    def __init__(self, simulation):
        self.sim = simulation
        self.state = FleetState(
            simulation.network, simulation.traffic,
            new_external_link_ids=simulation._new_external_link_ids,
            view_hosts=simulation._view_hosts())

    def run_steps(self, n_steps: int, step_s: float,
                  pending: Sequence["FleetEvent"],
                  collector: "SnmpCollector",
                  snmp_period_s: float, detailed_hosts: Sequence[str],
                  grid: np.ndarray, total_power: np.ndarray,
                  total_traffic: np.ndarray) -> None:
        """Advance the fleet ``n_steps`` columnar steps in place.

        Mirrors the object engine's stepping contract exactly --
        events at step boundaries, SNMP polling cadence, observer and
        Autopower hooks -- filling the caller's pre-allocated
        ``grid`` / ``total_power`` / ``total_traffic`` columns.
        """
        sim = self.sim
        state = self.state
        rho = float(np.exp(-step_s / _NOISE_TAU_S))
        innovation_std = state.noise_std * float(
            np.sqrt(max(0.0, 1 - rho ** 2)))
        next_poll_s = sim.clock_s
        event_idx = 0
        detailed_hosts = list(detailed_hosts)
        hostnames = [r.hostname for r in state.routers]
        # Step latencies are collected locally and handed to the
        # histogram in one batched observe_many after the loop, so the
        # hot path never crosses the instrument layer per step.
        from repro.network.simulation import (M_EVENTS, M_SNMP_POLLS,
                                              M_STEP_SECONDS, StepSnapshot)
        observing = metrics.enabled()
        observers = sim.observers
        step_durations: List[float] = []

        for step in range(n_steps):
            if observing:
                # netpower: ignore[NP-DET-001] -- wall-clock here only
                # feeds the step-latency histogram (an observability
                # side-channel); it never reaches simulation state or
                # any deterministic report.
                step_t0 = time.perf_counter()
            t = sim.clock_s
            if event_idx < len(pending) and pending[event_idx].at_s <= t:
                # Event boundary: hand authority back to the objects,
                # apply, then rebuild the columnar config.
                M_EVENT_BOUNDARIES.inc()
                state.flush_counters()
                state.flush_noise()
                while (event_idx < len(pending)
                       and pending[event_idx].at_s <= t):
                    M_EVENTS.labels(
                        type=type(pending[event_idx]).__name__).inc()
                    pending[event_idx].apply(sim)
                    event_idx += 1
                state.snapshot_counters()
                state.refresh(sim._new_external_link_ids,
                              sim._view_hosts())
                innovation_std = state.noise_std * float(
                    np.sqrt(max(0.0, 1 - rho ** 2)))
            ingress = state.apply_traffic(t)
            state.advance_counters(step_s)
            state.advance_noise(rho, innovation_std)
            sim.clock_s += step_s
            t_sample = sim.clock_s
            grid[step] = t_sample
            wall = state.wall_power()
            total_power[step] = wall.sum()
            total_traffic[step] = ingress
            polled = t_sample >= next_poll_s
            if polled:
                if detailed_hosts:
                    state.flush_counters(detailed_hosts)
                M_SNMP_POLLS.inc()
                collector.record(t_sample, true_power_by_host={
                    host: float(wall[i])
                    for i, host in enumerate(hostnames)})
                next_poll_s += max(snmp_period_s, step_s)
            if state._view_routers:
                state.sync_views()
            if sim.autopower_clients:
                for client in sim.autopower_clients.values():
                    client.tick(t_sample)
            if observers:
                power_by_host = {host: float(wall[i])
                                 for i, host in enumerate(hostnames)}
                snapshot = StepSnapshot(
                    step=step, t_s=t_sample, step_s=step_s,
                    total_power_w=float(total_power[step]),
                    total_traffic_bps=float(ingress),
                    power_by_host=power_by_host, snmp_polled=polled)
                for observer in observers:
                    observer.on_step(snapshot)
            if observing:
                # netpower: ignore[NP-DET-001] -- same side-channel as
                # step_t0 above.
                step_durations.append(time.perf_counter() - step_t0)
        state.flush_all()
        if step_durations:
            M_STEP_SECONDS.labels(engine="vector").observe_many(
                step_durations)
