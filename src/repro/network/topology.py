"""A synthetic Tier-2 ISP network in the image of Switch.

The paper's deployment dataset comes from Switch, the Swiss NREN: 107
routers across points of presence, low average utilisation (≈1.3 %),
roughly half of all interfaces facing *external* networks (customers,
peers, transits), and transceivers accounting for ≈10 % of total power.
This module generates a fleet with those aggregate properties:

* two core PoPs (the Zurich/Geneva analogue) fully meshed with parallel
  400G links;
* regional PoPs with 2-3 aggregation routers, dual-homed to both cores
  and chained in a regional ring (the redundancy link sleeping exploits);
* access routers dual-homed within their PoP;
* external interfaces (customer/peering) on a stub peer that is always
  up;
* a few *spare* transceivers left plugged into admin-down ports -- the
  §6.2 phenomenon that partly explains the power-model offset.

Router model counts are calibrated so the fleet's total wall power lands
near the paper's ≈21.7 kW (Fig. 1) and the per-model medians near Table 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro import units

from repro.hardware.catalog import ROUTER_CATALOG, router_spec
from repro.hardware.router import Port, VirtualRouter, connect
from repro.hardware.transceiver import (
    PortType,
    Reach,
    TRANSCEIVER_CATALOG,
    TransceiverModel,
    compatible,
)


@dataclass
class ExternalPeerPort:
    """The far end of an external link: another network's port.

    Duck-typed as a cable endpoint that is always plugged and up, so the
    local interface's link state behaves like a live customer/peer link.
    """

    name: str
    plugged: bool = True
    admin_up: bool = True
    cable: object = None


class LinkKind:
    """Link classification used by the sleeping analysis (§8)."""

    INTERNAL = "internal"
    EXTERNAL = "external"


@dataclass
class LinkEnd:
    """One side of a link: a router and a port index."""

    hostname: str
    port_index: int


@dataclass
class Link:
    """One network link (internal router-router, or external stub)."""

    link_id: int
    kind: str
    speed_gbps: float
    a: LinkEnd
    b: Optional[LinkEnd] = None          # None for external links
    peer_name: str = ""                   # external peer label
    #: Distance class: "pop" (same PoP), "metro", "long" -- drives optics.
    distance: str = "pop"

    @property
    def is_internal(self) -> bool:
        """Whether both ends terminate inside the ISP."""
        return self.kind == LinkKind.INTERNAL


def _pick_module(port_type: PortType, speed_gbps: float,
                 preferred_reach: Sequence[Reach]) -> Tuple[TransceiverModel,
                                                            Optional[float]]:
    """Choose a catalog module for a port at a target speed.

    Returns ``(module, configured_speed)`` where ``configured_speed`` is
    non-None when the module's nominal rate exceeds the target and the
    port must be clocked down (e.g. a QSFP28 DAC run at 25G, exactly the
    lower-speed rows of Table 2 a).
    """
    candidates = [m for m in TRANSCEIVER_CATALOG.values()
                  if compatible(port_type, m)]
    if not candidates:
        raise ValueError(f"no module fits a {port_type.value} port")
    for reach in preferred_reach:
        exact = [m for m in candidates
                 if m.reach == reach and m.speed_gbps == speed_gbps]
        if exact:
            return exact[0], None
    exact_any = [m for m in candidates if m.speed_gbps == speed_gbps]
    if exact_any:
        return exact_any[0], None
    faster = [m for m in candidates if m.speed_gbps > speed_gbps]
    if faster:
        for reach in preferred_reach:
            match = [m for m in faster if m.reach == reach]
            if match:
                best = min(match, key=lambda m: m.speed_gbps)
                return best, speed_gbps
        best = min(faster, key=lambda m: m.speed_gbps)
        return best, speed_gbps
    raise ValueError(
        f"no module can serve {speed_gbps} G on a {port_type.value} port")


_REACH_BY_DISTANCE: Dict[str, Tuple[Reach, ...]] = {
    "pop": (Reach.DAC, Reach.SR, Reach.LR4, Reach.LR),
    "campus": (Reach.SR, Reach.CWDM4, Reach.LR4, Reach.LR, Reach.DAC),
    "metro": (Reach.LR4, Reach.LR, Reach.FR4, Reach.CWDM4),
    "long": (Reach.LR4, Reach.LR, Reach.ER, Reach.FR4),
    # Customer handoffs on access routers: roughly half copper, half fibre.
    "customer-copper": (Reach.T, Reach.LR, Reach.SR),
    "customer-fiber": (Reach.LR, Reach.SR, Reach.T),
}


@dataclass
class ISPNetwork:
    """The generated fleet: routers, PoP membership, and the link list."""

    routers: Dict[str, VirtualRouter] = field(default_factory=dict)
    pops: Dict[str, List[str]] = field(default_factory=dict)
    links: List[Link] = field(default_factory=list)

    def router(self, hostname: str) -> VirtualRouter:
        """Router by hostname."""
        try:
            return self.routers[hostname]
        except KeyError:
            raise KeyError(
                f"unknown router {hostname!r}; the fleet has "
                f"{len(self.routers)} routers")

    def port_of(self, end: LinkEnd) -> Port:
        """The physical port behind a link end."""
        return self.router(end.hostname).port(end.port_index)

    # -- views ------------------------------------------------------------------

    def internal_links(self) -> List[Link]:
        """Links with both ends inside the ISP (candidates for sleeping)."""
        return [l for l in self.links if l.is_internal]

    def external_links(self) -> List[Link]:
        """Customer / peering / transit links."""
        return [l for l in self.links if not l.is_internal]

    def internal_graph(self, exclude: Iterable[int] = ()) -> nx.MultiGraph:
        """The router-level topology over internal links.

        ``exclude`` removes links by id -- used by the sleeping algorithm
        to test connectivity after shutting links down.
        """
        excluded = set(exclude)
        graph = nx.MultiGraph()
        graph.add_nodes_from(self.routers)
        for link in self.internal_links():
            if link.link_id in excluded:
                continue
            graph.add_edge(link.a.hostname, link.b.hostname,
                           key=link.link_id, link=link)
        return graph

    def total_wall_power_w(self) -> float:
        """Instantaneous total wall power of the fleet."""
        return sum(r.wall_power_w() for r in self.routers.values())

    def pop_power_w(self) -> Dict[str, float]:
        """Instantaneous wall power per point of presence.

        The operator view behind Fig. 1's total: which sites carry the
        load (and where a (de)commissioning step happened).
        """
        return {
            pop: sum(self.routers[h].wall_power_w() for h in hosts)
            for pop, hosts in self.pops.items()
        }

    def pop_of(self, hostname: str) -> str:
        """The PoP a router is deployed in."""
        for pop, hosts in self.pops.items():
            if hostname in hosts:
                return pop
        raise KeyError(f"router {hostname!r} is not placed in any PoP")

    def total_capacity_bps(self) -> float:
        """Sum of all link capacities (one direction)."""
        return units.gbps_to_bps(sum(l.speed_gbps for l in self.links))

    def interface_stats(self) -> Dict[str, int]:
        """Counts used by the §8 external-share observation."""
        internal = sum(2 for l in self.internal_links())
        external = len(self.external_links())
        return {"internal_interfaces": internal,
                "external_interfaces": external,
                "total_interfaces": internal + external}


@dataclass(frozen=True)
class FleetConfig:
    """Composition of the synthetic Switch-like fleet.

    The default counts sum to the paper's 107 routers and are calibrated
    so the simulated total power lands near Fig. 1's ≈21.7 kW.
    """

    model_counts: Tuple[Tuple[str, int], ...] = (
        ("8201-32FH", 6),
        ("8201-24H8FH", 4),
        ("ASR-9902", 2),
        ("NCS-55A1-24H", 8),
        ("NCS-55A1-48Q6H", 6),
        ("NCS-55A1-24Q6H-SS", 12),
        ("Nexus9336-FX2", 5),
        ("ASR-9001", 6),
        ("NCS-5501-SE", 6),
        ("N540-24Z8Q2C-M", 12),
        ("N540X-8Z16G-SYS-A", 11),
        ("ASR-920-24SZ-M", 29),
    )
    n_regional_pops: int = 13
    core_core_links: int = 4
    router_noise_std_w: float = 0.25
    #: Fraction of routers that carry a spare transceiver in a down port.
    spare_fraction: float = 0.12

    @property
    def n_routers(self) -> int:
        """Total router count across every model in the fleet."""
        return sum(count for _, count in self.model_counts)


#: Which fleet role each catalog model plays.
CORE_MODELS = ("8201-32FH", "8201-24H8FH", "ASR-9902")
AGG_MODELS = ("NCS-55A1-24H", "NCS-55A1-48Q6H", "NCS-55A1-24Q6H-SS",
              "Nexus9336-FX2")
ACCESS_MODELS = ("ASR-9001", "NCS-5501-SE", "N540-24Z8Q2C-M",
                 "N540X-8Z16G-SYS-A", "ASR-920-24SZ-M")

#: External interface quota by role (drives the ≈51 % external share).
_EXTERNAL_QUOTA = {"core": (4, 7), "agg": (2, 5), "access": (3, 7)}


class WiringBuilder:
    """Shared port-and-link plumbing for topology generators.

    Both the Switch-like builder below and the synthetic multi-tier
    generator (:mod:`repro.network.synth`) assemble an
    :class:`ISPNetwork` through these primitives, so module selection,
    speed clocking, link bookkeeping, and external-peer stubs behave
    identically regardless of which generator produced the fleet.
    """

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.network = ISPNetwork()
        self._link_ids = itertools.count(0)
        self._peer_ids = itertools.count(0)

    # -- port & link plumbing --------------------------------------------------------

    def _free_port(self, hostname: str,
                   min_speed: float = 0.0) -> Optional[Port]:
        """A free port on a router, fastest cages first."""
        router = self.network.router(hostname)
        free = [p for p in router.ports if not p.plugged
                and p.port_type.max_speed_gbps >= min_speed]
        if not free:
            return None
        return max(free, key=lambda p: p.port_type.max_speed_gbps)

    def _free_port_slowest(self, hostname: str) -> Optional[Port]:
        """A free port preferring the *slowest* cages (for customer links)."""
        router = self.network.router(hostname)
        free = [p for p in router.ports if not p.plugged]
        if not free:
            return None
        return min(free, key=lambda p: p.port_type.max_speed_gbps)

    def _link(self, host_a: str, host_b: str, distance: str) -> Optional[Link]:
        """Create an internal link between two routers, if ports allow."""
        port_a = self._free_port(host_a)
        port_b = self._free_port(host_b)
        if port_a is None or port_b is None:
            return None
        speed = min(port_a.port_type.max_speed_gbps,
                    port_b.port_type.max_speed_gbps)
        reaches = _REACH_BY_DISTANCE[distance]
        for port in (port_a, port_b):
            module, configured = _pick_module(port.port_type, speed, reaches)
            port.plug(module.name)
            if configured is not None or module.speed_gbps != speed:
                port.set_speed(speed)
            port.set_admin(True)
        connect(port_a, port_b)
        link = Link(
            link_id=next(self._link_ids), kind=LinkKind.INTERNAL,
            speed_gbps=speed,
            a=LinkEnd(host_a, port_a.index),
            b=LinkEnd(host_b, port_b.index),
            distance=distance)
        self.network.links.append(link)
        return link

    def _external_link(self, hostname: str, slow: bool) -> Optional[Link]:
        """Attach a customer/peer link to a router's free port."""
        port = (self._free_port_slowest(hostname) if slow
                else self._free_port(hostname))
        if port is None:
            return None
        if slow:
            reach_key = ("customer-copper" if self.rng.random() < 0.5
                         else "customer-fiber")
        else:
            reach_key = "metro"
        speed = port.port_type.max_speed_gbps
        module, configured = _pick_module(
            port.port_type, speed, _REACH_BY_DISTANCE[reach_key])
        port.plug(module.name)
        if configured is not None or module.speed_gbps != speed:
            port.set_speed(speed)
        port.set_admin(True)
        peer = ExternalPeerPort(name=f"peer-{next(self._peer_ids):04d}")
        connect(port, peer)
        link = Link(
            link_id=next(self._link_ids), kind=LinkKind.EXTERNAL,
            speed_gbps=speed, a=LinkEnd(hostname, port.index),
            peer_name=peer.name, distance="metro")
        self.network.links.append(link)
        return link


class _FleetBuilder(WiringBuilder):
    """Internal helper that assembles the Switch-like :class:`ISPNetwork`."""

    def __init__(self, config: FleetConfig, rng: np.random.Generator):
        super().__init__(rng)
        self.config = config

    # -- router creation ----------------------------------------------------------

    def build(self) -> ISPNetwork:
        core, agg, access = self._create_routers()
        self._place_pops(core, agg, access)
        self._wire_core(core)
        self._wire_regional(core)
        self._wire_access()
        self._add_external_links(core, agg, access)
        self._add_spares()
        return self.network

    def _create_routers(self):
        core: List[str] = []
        agg: List[str] = []
        access: List[str] = []
        serial = itertools.count(1)
        for model_name, count in self.config.model_counts:
            spec = router_spec(model_name)
            for _ in range(count):
                hostname = f"sw{next(serial):03d}"
                router = VirtualRouter(
                    spec, hostname=hostname,
                    rng=np.random.default_rng(self.rng.integers(2 ** 63)),
                    noise_std_w=self.config.router_noise_std_w)
                self.network.routers[hostname] = router
                if model_name in CORE_MODELS:
                    core.append(hostname)
                elif model_name in AGG_MODELS:
                    agg.append(hostname)
                else:
                    access.append(hostname)
        return core, agg, access

    def _place_pops(self, core, agg, access):
        pops = self.network.pops
        half = (len(core) + 1) // 2
        pops["pop-core-a"] = list(core[:half])
        pops["pop-core-b"] = list(core[half:])
        regional = [f"pop-r{i:02d}" for i in range(self.config.n_regional_pops)]
        for name in regional:
            pops[name] = []
        for i, hostname in enumerate(agg):
            pops[regional[i % len(regional)]].append(hostname)
        for i, hostname in enumerate(access):
            pops[regional[i % len(regional)]].append(hostname)

    # -- wiring stages ------------------------------------------------------------------

    def _wire_core(self, core: List[str]) -> None:
        pops = self.network.pops
        for pop in ("pop-core-a", "pop-core-b"):
            members = pops[pop]
            for a, b in zip(members, members[1:] + members[:1]):
                if a != b:
                    self._link(a, b, "pop")
        # Parallel long-haul links between the two core sites.  Tiny
        # fleets may have a single core router; then there is no second
        # site to connect.
        a_side = pops["pop-core-a"]
        b_side = pops["pop-core-b"]
        if not a_side or not b_side:
            return
        for i in range(self.config.core_core_links):
            self._link(a_side[i % len(a_side)], b_side[i % len(b_side)],
                       "long")

    def _regional_pops(self) -> List[str]:
        return [name for name in self.network.pops if name.startswith("pop-r")]

    def _agg_of(self, pop: str) -> List[str]:
        members = self.network.pops[pop]
        return [h for h in members
                if self.network.router(h).model_name in AGG_MODELS]

    def _wire_regional(self, core: List[str]) -> None:
        pops = self._regional_pops()
        core_a = self.network.pops["pop-core-a"]
        core_b = self.network.pops["pop-core-b"] or core_a
        for i, pop in enumerate(pops):
            agg = self._agg_of(pop)
            if not agg:
                # PoPs without an aggregation router uplink via their
                # first access router instead.
                agg = [self.network.pops[pop][0]]
            # Dual-home every regional PoP to both core sites (fleets
            # without core routers rely on the regional ring alone).
            if core_a:
                self._link(agg[0], core_a[i % len(core_a)], "long")
                self._link(agg[-1], core_b[i % len(core_b)], "long")
            # Regional ring for redundancy (the chords Hypnos can sleep).
            next_pop = pops[(i + 1) % len(pops)]
            next_agg = self._agg_of(next_pop) or [self.network.pops[next_pop][0]]
            self._link(agg[-1], next_agg[0], "metro")
            # Intra-PoP mesh between aggregation routers.
            for a, b in zip(agg, agg[1:]):
                self._link(a, b, "pop")

    def _wire_access(self) -> None:
        for pop in self._regional_pops():
            members = self.network.pops[pop]
            agg = self._agg_of(pop)
            if not agg:
                agg = members[:1]
            for hostname in members:
                if hostname in agg:
                    continue
                # Dual-home each access router within its PoP; access
                # uplinks run on short-reach optics between buildings.
                self._link(hostname, agg[0], "campus")
                self._link(hostname, agg[-1], "campus")

    def _add_external_links(self, core, agg, access) -> None:
        for role, hosts in (("core", core), ("agg", agg), ("access", access)):
            low, high = _EXTERNAL_QUOTA[role]
            for hostname in hosts:
                quota = int(self.rng.integers(low, high + 1))
                for _ in range(quota):
                    if self._external_link(hostname, slow=(role == "access")) is None:
                        break

    def _add_spares(self) -> None:
        hosts = sorted(self.network.routers)
        n_spares = max(1, int(len(hosts) * self.config.spare_fraction))
        chosen = self.rng.choice(len(hosts), size=n_spares, replace=False)
        for idx in chosen:
            router = self.network.routers[hosts[int(idx)]]
            free = [p for p in router.ports if not p.plugged]
            if not free:
                continue
            port = free[-1]
            speed = port.port_type.max_speed_gbps
            module, _ = _pick_module(port.port_type, speed,
                                     _REACH_BY_DISTANCE["metro"])
            port.plug(module.name)  # plugged, admin-down: draws P_trx,in


def build_switch_like_network(config: Optional[FleetConfig] = None,
                              rng: Optional[np.random.Generator] = None,
                              ) -> ISPNetwork:
    """Generate the synthetic Switch-like Tier-2 fleet."""
    if config is None:
        config = FleetConfig()
    if rng is None:
        rng = np.random.default_rng()
    unknown = [name for name, _ in config.model_counts
               if name not in ROUTER_CATALOG]
    if unknown:
        raise ValueError(f"unknown router models in fleet config: {unknown}")
    return _FleetBuilder(config, rng).build()
