"""Module inventory files: the §6.2 input the model predictions consume.

The paper combines its power models "with the deployed routers' module
inventory files (giving the transceiver module types) and the traffic
counters" to predict deployed power.  This module implements inventory
files as first-class artefacts: per-router records of which module sits
in which interface at what speed, exportable to JSON, diffable across
snapshots (the Fig. 4a events are inventory diffs), and directly
convertible into the prediction pipeline's inputs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.hardware.router import VirtualRouter
from repro.network.topology import ISPNetwork

#: Version stamp for the fleet-inventory JSON document.
INVENTORY_SCHEMA = "repro.network.inventory/v1"


@dataclass(frozen=True)
class InterfaceEntry:
    """One interface's inventory line."""

    name: str
    module: Optional[str]          # transceiver product, None if empty
    speed_gbps: float
    admin_up: bool

    @property
    def populated(self) -> bool:
        """Whether a module is seated."""
        return self.module is not None


@dataclass
class RouterInventory:
    """The inventory file of one router."""

    hostname: str
    router_model: str
    interfaces: List[InterfaceEntry] = field(default_factory=list)

    def modules(self) -> Dict[str, str]:
        """interface name -> module product, populated entries only."""
        return {e.name: e.module for e in self.interfaces if e.populated}

    def spare_modules(self) -> List[InterfaceEntry]:
        """Modules seated in admin-down ports (§6.2's spares)."""
        return [e for e in self.interfaces
                if e.populated and not e.admin_up]

    @classmethod
    def capture(cls, router: VirtualRouter) -> "RouterInventory":
        """Snapshot a live router's inventory."""
        entries = [
            InterfaceEntry(
                name=port.name,
                module=port.transceiver.name if port.transceiver else None,
                speed_gbps=port.speed_gbps,
                admin_up=port.admin_up)
            for port in router.ports
        ]
        return cls(hostname=router.hostname,
                   router_model=router.model_name, interfaces=entries)


@dataclass
class FleetInventory:
    """Inventory files for a whole network, with JSON round-trip."""

    routers: Dict[str, RouterInventory] = field(default_factory=dict)

    @classmethod
    def capture(cls, network: ISPNetwork) -> "FleetInventory":
        """Snapshot every router in the fleet."""
        return cls(routers={
            hostname: RouterInventory.capture(router)
            for hostname, router in network.routers.items()
        })

    def __len__(self) -> int:
        return len(self.routers)

    def total_modules(self) -> int:
        """Seated modules across the fleet."""
        return sum(len(inv.modules()) for inv in self.routers.values())

    def module_census(self) -> Dict[str, int]:
        """Module product -> count, fleet-wide."""
        census: Dict[str, int] = {}
        for inventory in self.routers.values():
            for module in inventory.modules().values():
                census[module] = census.get(module, 0) + 1
        return dict(sorted(census.items()))

    # -- serialisation ------------------------------------------------------------

    def to_json(self) -> str:
        """One versioned JSON document for the whole fleet."""
        payload = {
            "schema": INVENTORY_SCHEMA,
            "routers": {
                hostname: {
                    "router_model": inv.router_model,
                    "interfaces": [asdict(e) for e in inv.interfaces],
                }
                for hostname, inv in sorted(self.routers.items())
            },
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FleetInventory":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        schema = payload.get("schema")
        if schema != INVENTORY_SCHEMA:
            raise ValueError(
                f"unsupported inventory schema {schema!r}; this library "
                f"reads {INVENTORY_SCHEMA!r}")
        fleet = cls()
        for hostname, data in payload["routers"].items():
            entries = [InterfaceEntry(**entry)
                       for entry in data["interfaces"]]
            fleet.routers[hostname] = RouterInventory(
                hostname=hostname,
                router_model=data["router_model"],
                interfaces=entries)
        return fleet


@dataclass(frozen=True)
class InventoryChange:
    """One line of an inventory diff."""

    hostname: str
    interface: str
    kind: str                      # "added" | "removed" | "changed"
    before: Optional[str] = None
    after: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "added":
            return f"{self.hostname}/{self.interface}: + {self.after}"
        if self.kind == "removed":
            return f"{self.hostname}/{self.interface}: - {self.before}"
        return (f"{self.hostname}/{self.interface}: "
                f"{self.before} -> {self.after}")


def diff_inventories(before: FleetInventory,
                     after: FleetInventory) -> List[InventoryChange]:
    """Inventory changes between two snapshots.

    The Fig. 4a annotations ("Oct 9: interface removed", "Oct 31:
    interfaces added") are exactly this diff over the Switch inventory.
    """
    changes: List[InventoryChange] = []
    hostnames = sorted(set(before.routers) | set(after.routers))
    for hostname in hostnames:
        old = (before.routers[hostname].modules()
               if hostname in before.routers else {})
        new = (after.routers[hostname].modules()
               if hostname in after.routers else {})
        for iface in sorted(set(old) | set(new)):
            if iface in old and iface not in new:
                changes.append(InventoryChange(
                    hostname=hostname, interface=iface, kind="removed",
                    before=old[iface]))
            elif iface in new and iface not in old:
                changes.append(InventoryChange(
                    hostname=hostname, interface=iface, kind="added",
                    after=new[iface]))
            elif old[iface] != new[iface]:
                changes.append(InventoryChange(
                    hostname=hostname, interface=iface, kind="changed",
                    before=old[iface], after=new[iface]))
    return changes
