"""Operational events injected into fleet simulations.

The paper's traces are full of operator actions that the analyses must
cope with: transceivers removed and added (Fig. 4a, Oct 9 / Oct 31), a
flapping interface taken down with its module left seated (Oct 22-25), an
OS update that changed fan behaviour (+45 W, Fig. 8), hardware
(de)commissioning visible as steps in the network total (Fig. 1), and the
power cycles caused by installing Autopower meters (Fig. 4b, Sep 25).
Each event type here reproduces one of those actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Optional

from repro.network.topology import (ExternalPeerPort, ISPNetwork, Link,
                                    LinkEnd, LinkKind)
from repro.hardware.router import connect, disconnect

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.network.simulation import NetworkSimulation


def _port_link_hosts(network: ISPNetwork, hostname: str,
                     port_index: int) -> Optional[FrozenSet[str]]:
    """Routers whose link state one port's configuration can touch.

    The port's own router plus the internal-link peers wired to that
    port: flipping one end's admin state (or pulling its module) changes
    ``link_up`` on *both* ends, so both routers' columnar state goes
    stale.  Returns ``None`` for unknown hostnames so the caller falls
    back to the full-rebuild path (which reproduces the object path's
    error on apply).
    """
    if hostname not in network.routers:
        return None
    hosts = {hostname}
    for link in network.links:
        if not link.is_internal:
            continue
        if link.a.hostname == hostname and link.a.port_index == port_index:
            hosts.add(link.b.hostname)
        elif link.b.hostname == hostname and link.b.port_index == port_index:
            hosts.add(link.a.hostname)
    return frozenset(hosts)


def _single_host(simulation: "NetworkSimulation",
                 hostname: str) -> Optional[FrozenSet[str]]:
    """Dirty set of an event that only mutates one router's own state."""
    if hostname not in simulation.network.routers:
        return None
    return frozenset((hostname,))


@dataclass
class FleetEvent:
    """Base class: something that happens at an absolute simulation time."""

    at_s: float

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Mutate the network; called once when the sim clock passes at_s."""
        raise NotImplementedError

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Routers whose columnar state this event invalidates.

        The vectorized engine patches exactly these routers' columns at
        the event boundary instead of rebuilding the whole fleet (the
        incremental-refresh contract, docs/PERFORMANCE.md).  ``None``
        means the event may change fleet-wide structure -- the link
        list, the scatter layout -- and forces a full rebuild; that is
        the safe default for event types that do not declare a set.
        Must be called *before* :meth:`apply` (it inspects pre-event
        wiring).
        """
        return None


@dataclass
class UnplugModule(FleetEvent):
    """An operator removes a transceiver (Fig. 4a's Oct 9 event)."""

    hostname: str = ""
    port_index: int = 0

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Shut the port, break its link, and pull the module."""
        port = simulation.network.router(self.hostname).port(self.port_index)
        port.set_admin(False)
        disconnect(port)
        port.unplug()

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """This router plus any internal-link peer of the port."""
        return _port_link_hosts(simulation.network, self.hostname,
                                self.port_index)


@dataclass
class AddExternalInterface(FleetEvent):
    """An operator provisions a new customer/peer interface (Oct 31)."""

    hostname: str = ""
    port_index: int = 0
    trx_name: str = ""

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Plug, enable, and link a new external-facing interface."""
        network: ISPNetwork = simulation.network
        port = network.router(self.hostname).port(self.port_index)
        port.plug(self.trx_name)
        port.set_admin(True)
        peer = ExternalPeerPort(name=f"peer-event-{self.port_index}")
        connect(port, peer)
        link = Link(
            link_id=max((l.link_id for l in network.links), default=0) + 1,
            kind=LinkKind.EXTERNAL,
            speed_gbps=port.speed_gbps,
            a=LinkEnd(self.hostname, self.port_index),
            peer_name=peer.name, distance="metro")
        network.links.append(link)
        simulation.on_topology_change(new_external=link)

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Always ``None``: growing the link list reshapes the columnar
        link/scatter layout, so only a full rebuild is correct."""
        return None


@dataclass
class SetAdminState(FleetEvent):
    """An interface is shut (or unshut) but the module stays seated.

    This is the Oct 22-25 flapping-fix event: the model -- which treats a
    counter-silent interface as unplugged -- over-predicts the power drop,
    because ``P_trx,in`` keeps flowing.
    """

    hostname: str = ""
    port_index: int = 0
    up: bool = False

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Toggle the interface's administrative state."""
        port = simulation.network.router(self.hostname).port(self.port_index)
        port.set_admin(self.up)

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """This router plus any internal-link peer of the port."""
        return _port_link_hosts(simulation.network, self.hostname,
                                self.port_index)


@dataclass
class OsUpdate(FleetEvent):
    """An OS upgrade changes thermal management (Fig. 8: +45 W of fans)."""

    hostname: str = ""
    fan_bump_w: float = 45.0

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Apply the post-update fan-power bump to the router."""
        simulation.network.router(self.hostname).apply_os_update(
            self.fan_bump_w)

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Only this router's fixed-power column changes."""
        return _single_host(simulation, self.hostname)


@dataclass
class PowerCycle(FleetEvent):
    """A power cycle (e.g. moving the feed onto a metering unit)."""

    hostname: str = ""

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Power-cycle the router."""
        simulation.network.router(self.hostname).power_cycle()

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Only this router's counters (and sensor state) reset."""
        return _single_host(simulation, self.hostname)


@dataclass
class Decommission(FleetEvent):
    """A router is powered down and removed from service (Fig. 1 steps)."""

    hostname: str = ""

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Cut the router's power feed."""
        simulation.network.router(self.hostname).powered = False

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Only this router's powered flag flips."""
        return _single_host(simulation, self.hostname)


@dataclass
class Commission(FleetEvent):
    """A previously dark router is brought (back) into service."""

    hostname: str = ""

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Restore the router's power feed."""
        simulation.network.router(self.hostname).powered = True

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Only this router's powered flag flips."""
        return _single_host(simulation, self.hostname)


@dataclass
class AmbientChange(FleetEvent):
    """Ambient temperature shifts at one router (a cooling problem).

    §4.3 omits temperature from the model because server rooms keep it
    pseudo-constant; when that assumption breaks, the model's offset
    drifts with no configuration change -- exactly what this injects.
    """

    hostname: str = ""
    ambient_c: float = 22.0

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Set the new ambient temperature at one router."""
        simulation.network.router(self.hostname).set_ambient(self.ambient_c)

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Only this router's thermal contribution changes."""
        return _single_host(simulation, self.hostname)


@dataclass
class HeatWave(FleetEvent):
    """Ambient temperature shifts across the whole fleet."""

    ambient_c: float = 30.0

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Set the new ambient temperature fleet-wide."""
        for router in simulation.network.routers.values():
            router.set_ambient(self.ambient_c)

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Every router's thermal column changes -- but only router
        columns, so the (cheap) whole-fleet patch still beats a full
        rebuild of the port and link layout."""
        return frozenset(simulation.network.routers)


@dataclass
class DegradePsu(FleetEvent):
    """A PSU's conversion efficiency degrades (the §9.4 GREEN scenario).

    Capacitor aging and fan-bearing wear make supplies slowly lossier;
    the router draws more wall power for the same device power while the
    model -- calibrated against the nominal efficiency curve -- keeps
    predicting the old draw.  This is the failure mode the monitoring
    layer's PSU-health tracker exists to catch.
    """

    hostname: str = ""
    psu_index: int = 0
    efficiency_delta: float = -0.05

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Degrade one supply's efficiency curve in place."""
        psu_group = simulation.network.router(self.hostname).psu_group
        psu_group.instances[self.psu_index].apply_aging(
            self.efficiency_delta)

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Only this router's PSU coefficient rows change."""
        return _single_host(simulation, self.hostname)


@dataclass
class DeployAutopower(FleetEvent):
    """Install an Autopower unit on a router's feed (Fig. 4b, Sep 25).

    Installation requires briefly unplugging each PSU, so the router gets
    power-cycled -- the event that shifted one PSU's self-reported power
    by 7 W in the paper.
    """

    hostname: str = ""

    def apply(self, simulation: "NetworkSimulation") -> None:
        """Install the meter (power-cycling the router as a side effect)."""
        simulation.deploy_autopower(self.hostname)

    def dirty_hosts(self, simulation: "NetworkSimulation",
                    ) -> Optional[FrozenSet[str]]:
        """Only this router is power-cycled; the new view host is picked
        up by the per-boundary view refresh either way."""
        return _single_host(simulation, self.hostname)
