"""Deterministic multi-tier synthetic fleets (1k-100k routers).

The Switch-like generator (:mod:`repro.network.topology`) reproduces one
specific 107-router NREN.  Scaling the engine work to internet-scale
fleets needs topologies that are orders of magnitude larger while keeping
the structural properties the energy analyses depend on: a small tier-1
backbone, regional tier-2 aggregation, wide access layers, and roughly
half of all interfaces facing external networks.

This module generates such fleets deterministically:

* the **backbone** is a Waxman geometric random graph (probability of a
  link decays with distance) plus a spanning chain so it is always
  connected;
* **regions** are placed at random coordinates and dual-homed to their
  two nearest backbone routers; each region holds a couple of
  aggregation routers and an access layer dual-homed within the region;
* adjacent regions are chained in a **metro ring**, with extra chords
  accepted by the same Waxman distance rule;
* router **models** are assigned from sampled betweenness centrality on
  the backbone+aggregation graph: the most central routers get the
  core platforms, the rest aggregation platforms (the
  centrality-derived core/edge role split).

Everything derives from one ``numpy`` Generator: the same seed and
config produce a byte-identical fleet (inventory JSON and simulation
results) on every run and any worker count.  Noise is off by default so
the generated fleets stay bit-identical across both engines without
consuming per-router RNG draws during runs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.hardware.catalog import ROUTER_CATALOG, router_spec
from repro.hardware.router import VirtualRouter
from repro.network.topology import ISPNetwork, WiringBuilder, _pick_module
from repro.network.topology import _REACH_BY_DISTANCE


@dataclass(frozen=True)
class SynthConfig:
    """Parameters of the synthetic multi-tier fleet.

    ``n_routers`` is exact: the generator distributes every router not
    on the backbone across regions of roughly ``agg_per_region +
    access_per_region`` routers each.  See docs/TOPOLOGY.md for how the
    knobs interact and which presets exist.
    """

    #: Total routers in the fleet (backbone + aggregation + access).
    n_routers: int = 1000
    #: Tier-1 backbone routers (Waxman graph + spanning chain).
    n_backbone: int = 16
    #: Core sites the backbone routers are spread across (PoP labels).
    n_core_sites: int = 4
    #: Aggregation routers per region (the tier-2 layer).
    agg_per_region: int = 2
    #: Access routers per region (approximate; drives the region count).
    access_per_region: int = 12
    #: Waxman distance-decay scale (networkx ``alpha``): larger values
    #: make long links more likely.
    waxman_alpha: float = 0.4
    #: Waxman base link probability (networkx ``beta``).
    waxman_beta: float = 0.6
    #: Extra metro chords between region pairs, as a fraction of the
    #: region count; each candidate is accepted by the Waxman rule.
    chord_fraction: float = 0.15
    #: Fraction of backbone+aggregation routers (ranked by sampled
    #: betweenness centrality) that receive core platforms.
    core_fraction: float = 0.3
    #: Sample size for the approximate betweenness computation.
    centrality_samples: int = 64
    #: Platforms cycled through per role, most-central first.
    core_models: Tuple[str, ...] = ("8201-32FH", "8201-24H8FH")
    agg_models: Tuple[str, ...] = ("NCS-55A1-48Q6H", "Nexus9336-FX2")
    access_models: Tuple[str, ...] = ("ASR-920-24SZ-M", "N540-24Z8Q2C-M")
    #: External (customer/peer) interface quota ranges per role.
    core_external: Tuple[int, int] = (4, 7)
    agg_external: Tuple[int, int] = (2, 5)
    access_external: Tuple[int, int] = (3, 7)
    #: Router sensor noise.  Zero by default: large fleets stay
    #: bit-identical across engines without per-router noise draws.
    router_noise_std_w: float = 0.0
    #: Fraction of routers carrying a spare module in a down port.
    spare_fraction: float = 0.0

    def models(self) -> Tuple[str, ...]:
        """Every platform name the config can instantiate."""
        return self.core_models + self.agg_models + self.access_models


#: Ready-made configs for the bench ladder, sweeps, and CI smoke runs.
SYNTH_PRESETS: Dict[str, SynthConfig] = {
    "synth-200": SynthConfig(n_routers=200, n_backbone=6, n_core_sites=2,
                             access_per_region=10),
    "synth-1k": SynthConfig(),
    "synth-10k": SynthConfig(n_routers=10_000, n_backbone=64,
                             n_core_sites=8, access_per_region=20),
    "synth-100k": SynthConfig(n_routers=100_000, n_backbone=512,
                              n_core_sites=16, access_per_region=30),
}


def synth_config(name: str) -> SynthConfig:
    """Look up a preset :class:`SynthConfig` by name."""
    try:
        return SYNTH_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown synth preset {name!r}; available: "
            f"{sorted(SYNTH_PRESETS)}")


@dataclass
class _RegionPlan:
    """One region: its routers, backbone homes, and position."""

    name: str
    agg: List[str]
    access: List[str]
    homes: Tuple[str, str]
    pos: Tuple[float, float]


@dataclass
class _TopologyPlan:
    """The abstract fleet layout, before any router object exists."""

    backbone: List[str] = field(default_factory=list)
    positions: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    backbone_edges: List[Tuple[str, str]] = field(default_factory=list)
    regions: List[_RegionPlan] = field(default_factory=list)
    ring_edges: List[Tuple[str, str]] = field(default_factory=list)


class _SynthBuilder(WiringBuilder):
    """Assembles an :class:`ISPNetwork` from a :class:`SynthConfig`."""

    def __init__(self, config: SynthConfig, rng: np.random.Generator):
        super().__init__(rng)
        self.config = config
        self._serials = itertools.count(1)

    def build(self) -> ISPNetwork:
        plan = self._plan()
        roles, model_of = self._assign_roles(plan)
        self._create_routers(plan, model_of)
        self._place_pops(plan)
        self._wire(plan)
        self._add_external_links(plan, roles)
        self._add_spares()
        return self.network

    def _hostname(self) -> str:
        return f"r{next(self._serials):06d}"

    # -- planning -----------------------------------------------------------------

    def _plan(self) -> _TopologyPlan:
        config = self.config
        plan = _TopologyPlan()
        # Backbone: Waxman geometric graph over unit square positions.
        seed = int(self.rng.integers(2 ** 31))
        graph = nx.waxman_graph(config.n_backbone, beta=config.waxman_beta,
                                alpha=config.waxman_alpha, seed=seed)
        positions = nx.get_node_attributes(graph, "pos")
        nodes = sorted(graph.nodes)
        hostnames = {node: self._hostname() for node in nodes}
        plan.backbone = [hostnames[node] for node in nodes]
        for node in nodes:
            x, y = positions[node]
            plan.positions[hostnames[node]] = (float(x), float(y))
        edges = {tuple(sorted((a, b))) for a, b in graph.edges}
        # Spanning chain in coordinate order guarantees connectivity.
        chain = sorted(nodes, key=lambda n: (positions[n][0],
                                             positions[n][1], n))
        for a, b in zip(chain, chain[1:]):
            edges.add(tuple(sorted((a, b))))
        plan.backbone_edges = [(hostnames[a], hostnames[b])
                               for a, b in sorted(edges)]
        # Regions: exact split of the remaining routers.
        remaining = config.n_routers - config.n_backbone
        region_size = config.agg_per_region + config.access_per_region
        n_regions = max(1, remaining // region_size)
        base, extra = divmod(remaining, n_regions)
        region_pos = self.rng.random((n_regions, 2))
        for i in range(n_regions):
            size = base + (1 if i < extra else 0)
            n_agg = max(1, min(config.agg_per_region, size - 1))
            if size == 1:
                n_agg = 1
            agg = [self._hostname() for _ in range(n_agg)]
            access = [self._hostname() for _ in range(size - n_agg)]
            pos = (float(region_pos[i, 0]), float(region_pos[i, 1]))
            homes = self._nearest_backbone(plan, pos)
            plan.regions.append(_RegionPlan(
                name=f"region-{i:04d}", agg=agg, access=access,
                homes=homes, pos=pos))
            for hostname in agg + access:
                plan.positions[hostname] = pos
        # Metro ring plus Waxman-accepted chords between region pairs.
        regions = plan.regions
        if len(regions) > 1:
            for i, region in enumerate(regions):
                nxt = regions[(i + 1) % len(regions)]
                plan.ring_edges.append((region.agg[-1], nxt.agg[0]))
        n_chords = int(config.chord_fraction * len(regions))
        for _ in range(n_chords):
            i, j = (int(v) for v in self.rng.integers(len(regions), size=2))
            accept = self.rng.random()
            if i == j:
                continue
            d = math.dist(regions[i].pos, regions[j].pos)
            if accept < config.waxman_beta * math.exp(
                    -d / (config.waxman_alpha * math.sqrt(2.0))):
                plan.ring_edges.append((regions[i].agg[0],
                                        regions[j].agg[-1]))
        return plan

    def _nearest_backbone(self, plan: _TopologyPlan,
                          pos: Tuple[float, float]) -> Tuple[str, str]:
        """The two backbone routers closest to a region's coordinates."""
        ranked = sorted(
            plan.backbone,
            key=lambda h: (math.dist(plan.positions[h], pos), h))
        if len(ranked) == 1:
            return ranked[0], ranked[0]
        return ranked[0], ranked[1]

    # -- role & model assignment --------------------------------------------------

    def _assign_roles(self, plan: _TopologyPlan,
                      ) -> Tuple[Dict[str, str], Dict[str, str]]:
        """Centrality-derived roles and the platform for every router.

        Sampled betweenness centrality on the backbone+aggregation graph
        ranks the routers that carry transit traffic; the top
        ``core_fraction`` receive core platforms regardless of which
        tier the planner drew them in -- role follows position in the
        graph, not construction order.
        """
        config = self.config
        graph: nx.Graph = nx.Graph()
        graph.add_nodes_from(plan.backbone)
        graph.add_edges_from(plan.backbone_edges)
        for region in plan.regions:
            graph.add_nodes_from(region.agg)
            graph.add_edge(region.agg[0], region.homes[0])
            graph.add_edge(region.agg[-1], region.homes[1])
            for a, b in zip(region.agg, region.agg[1:]):
                graph.add_edge(a, b)
        graph.add_edges_from(plan.ring_edges)
        k = min(len(graph), config.centrality_samples)
        seed = int(self.rng.integers(2 ** 31))
        centrality = nx.betweenness_centrality(graph, k=k, seed=seed)
        ranked = sorted(graph.nodes, key=lambda h: (-centrality[h], h))
        n_core = max(1, int(round(config.core_fraction * len(ranked))))
        roles: Dict[str, str] = {}
        model_of: Dict[str, str] = {}
        for rank, hostname in enumerate(ranked):
            if rank < n_core:
                roles[hostname] = "core"
                models = config.core_models
            else:
                roles[hostname] = "agg"
                models = config.agg_models
            model_of[hostname] = models[rank % len(models)]
        index = 0
        for region in plan.regions:
            for hostname in region.access:
                roles[hostname] = "access"
                model_of[hostname] = config.access_models[
                    index % len(config.access_models)]
                index += 1
        return roles, model_of

    # -- construction -------------------------------------------------------------

    def _create_routers(self, plan: _TopologyPlan,
                        model_of: Dict[str, str]) -> None:
        order = list(plan.backbone)
        for region in plan.regions:
            order.extend(region.agg)
            order.extend(region.access)
        for hostname in order:
            spec = router_spec(model_of[hostname])
            self.network.routers[hostname] = VirtualRouter(
                spec, hostname=hostname,
                rng=np.random.default_rng(self.rng.integers(2 ** 63)),
                noise_std_w=self.config.router_noise_std_w)

    def _place_pops(self, plan: _TopologyPlan) -> None:
        pops = self.network.pops
        n_sites = max(1, min(self.config.n_core_sites,
                             len(plan.backbone)))
        for i in range(n_sites):
            pops[f"core-{i:02d}"] = []
        for i, hostname in enumerate(plan.backbone):
            pops[f"core-{i % n_sites:02d}"].append(hostname)
        for region in plan.regions:
            pops[region.name] = region.agg + region.access

    def _wire(self, plan: _TopologyPlan) -> None:
        for a, b in plan.backbone_edges:
            self._link(a, b, "long")
        for region in plan.regions:
            self._link(region.agg[0], region.homes[0], "long")
            if len(region.agg) > 1 or region.homes[1] != region.homes[0]:
                self._link(region.agg[-1], region.homes[1], "long")
            for a, b in zip(region.agg, region.agg[1:]):
                self._link(a, b, "pop")
            for hostname in region.access:
                self._link(hostname, region.agg[0], "campus")
                if len(region.agg) > 1:
                    self._link(hostname, region.agg[-1], "campus")
        for a, b in plan.ring_edges:
            self._link(a, b, "metro")

    def _add_external_links(self, plan: _TopologyPlan,
                            roles: Dict[str, str]) -> None:
        quota_range = {"core": self.config.core_external,
                       "agg": self.config.agg_external,
                       "access": self.config.access_external}
        for hostname in sorted(self.network.routers):
            role = roles[hostname]
            low, high = quota_range[role]
            quota = int(self.rng.integers(low, high + 1))
            for _ in range(quota):
                if self._external_link(hostname,
                                       slow=(role == "access")) is None:
                    break

    def _add_spares(self) -> None:
        if self.config.spare_fraction <= 0.0:
            return
        hosts = sorted(self.network.routers)
        n_spares = max(1, int(len(hosts) * self.config.spare_fraction))
        chosen = self.rng.choice(len(hosts), size=n_spares, replace=False)
        for idx in chosen:
            router = self.network.routers[hosts[int(idx)]]
            free = [p for p in router.ports if not p.plugged]
            if not free:
                continue
            port = free[-1]
            module, _ = _pick_module(port.port_type,
                                     port.port_type.max_speed_gbps,
                                     _REACH_BY_DISTANCE["metro"])
            port.plug(module.name)  # plugged, admin-down: draws P_trx,in


def generate_synth_network(config: Optional[SynthConfig] = None,
                           rng: Optional[np.random.Generator] = None,
                           ) -> ISPNetwork:
    """Generate a deterministic multi-tier synthetic fleet.

    Same ``config`` and an identically seeded ``rng`` produce a
    byte-identical fleet: inventory JSON, simulation results, and
    columnar state all match across runs and processes.
    """
    if config is None:
        config = SynthConfig()
    if rng is None:
        rng = np.random.default_rng()
    unknown = sorted({name for name in config.models()
                      if name not in ROUTER_CATALOG})
    if unknown:
        raise ValueError(f"unknown router models in synth config: {unknown}")
    if config.n_backbone < 1:
        raise ValueError("synth fleets need at least one backbone router")
    if config.n_routers <= config.n_backbone:
        raise ValueError(
            f"n_routers ({config.n_routers}) must exceed n_backbone "
            f"({config.n_backbone})")
    return _SynthBuilder(config, rng).build()
