"""repro -- a reproduction of "Fantastic Joules and Where to Find Them"
(Jacob et al., IMC 2025): modeling and optimizing router energy demand.

The library is organised by the paper's structure:

================  ===========================================================
``repro.core``    the router power model, its derivation, and prediction (§4-§5)
``repro.lab``     NetPowerBench: meter, traffic generator, orchestrator (§5)
``repro.hardware``  simulated routers, transceivers, and PSUs (ground truth)
``repro.datasheets``  datasheet corpus, extraction, and analyses (§3)
``repro.network``  the synthetic Switch-like Tier-2 ISP fleet
``repro.telemetry``  SNMP collection and Autopower external measurement (§6)
``repro.validation``  three-way source comparison (§6.2)
``repro.sleep``   Hypnos link sleeping and its savings (§8)
``repro.psu_opt``  PSU efficiency optimisation estimates (§9)
``repro.zoo``     the Network Power Zoo aggregation database
``repro.units``   units, conversions, and shared constants
================  ===========================================================

Quickstart: derive a power model for a router in the virtual lab::

    import numpy as np
    from repro import (VirtualRouter, router_spec, Orchestrator,
                       ExperimentPlan, derive_power_model)

    rng = np.random.default_rng(42)
    dut = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng)
    suite = Orchestrator(dut, rng=rng).run_suite(
        ExperimentPlan(trx_name="QSFP28-100G-DAC"))
    model, reports = derive_power_model([suite])
    print(model.p_base_w.value)  # ~320 W
"""

from repro.core import (
    DeployedInterface,
    FittedValue,
    InterfaceClassKey,
    InterfaceModel,
    InterfaceState,
    LinearFit,
    PowerModel,
    derive_power_model,
    linear_fit,
    predict_trace,
)
from repro.hardware import (
    EightyPlus,
    PortType,
    Reach,
    ROUTER_CATALOG,
    TRANSCEIVER_CATALOG,
    VirtualRouter,
    connect,
    router_spec,
    transceiver,
)
from repro.lab import (
    ExperimentPlan,
    ExperimentSuite,
    Orchestrator,
    PowerMeter,
    TrafficGenerator,
)
from repro.network import (
    FleetConfig,
    FleetTrafficModel,
    ISPNetwork,
    NetworkSimulation,
    build_switch_like_network,
)
from repro.sleep import Hypnos, HypnosConfig, plan_rate_adaptation, plan_savings
from repro.psu_opt import clean_exports, table3, table4
from repro.validation import ValidationSummary, validate_router
from repro.zoo import NetworkPowerZoo
from repro.hardware import ModularRouter, chassis_spec, linecard_spec
from repro.telemetry import GreenCollector
from repro.datasets import CampaignDataset, load_campaign, save_campaign
from repro.reporting import energy_report, savings_report

__version__ = "1.0.0"

__all__ = [
    "DeployedInterface",
    "FittedValue",
    "InterfaceClassKey",
    "InterfaceModel",
    "InterfaceState",
    "LinearFit",
    "PowerModel",
    "derive_power_model",
    "linear_fit",
    "predict_trace",
    "EightyPlus",
    "PortType",
    "Reach",
    "ROUTER_CATALOG",
    "TRANSCEIVER_CATALOG",
    "VirtualRouter",
    "connect",
    "router_spec",
    "transceiver",
    "ExperimentPlan",
    "ExperimentSuite",
    "Orchestrator",
    "PowerMeter",
    "TrafficGenerator",
    "FleetConfig",
    "FleetTrafficModel",
    "ISPNetwork",
    "NetworkSimulation",
    "build_switch_like_network",
    "Hypnos",
    "HypnosConfig",
    "plan_rate_adaptation",
    "plan_savings",
    "clean_exports",
    "table3",
    "table4",
    "ValidationSummary",
    "validate_router",
    "NetworkPowerZoo",
    "ModularRouter",
    "chassis_spec",
    "linecard_spec",
    "GreenCollector",
    "CampaignDataset",
    "load_campaign",
    "save_campaign",
    "energy_report",
    "savings_report",
    "__version__",
]
