"""Exporters: Prometheus text format and JSON snapshots.

``render_prometheus`` emits the text exposition format (``# HELP`` /
``# TYPE`` headers, histogram ``_bucket``/``_sum``/``_count`` series with
cumulative ``le`` buckets), suitable for a file-based scrape or for
``promtool check metrics``.  ``snapshot`` serialises the same registry as
a JSON document for programmatic ingestion, and ``write_trace`` dumps a
:class:`~repro.obs.tracing.Tracer` span tree -- as the native JSON form,
or as Chrome trace-event format (loadable in Perfetto / ``chrome://
tracing``) when the path ends in ``.trace.json``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro import units
from repro.ioutil import atomic_write_text
from repro.obs.metrics import Histogram, MetricFamily, MetricsRegistry
from repro.obs.tracing import Tracer

#: Schema identifier stamped on JSON metric snapshots.
SNAPSHOT_SCHEMA = "repro.obs.metrics/v1"


def _fmt(value: float) -> str:
    """Prometheus-style number rendering (integers without a dot)."""
    v = float(value)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(names: Tuple[str, ...], values: Tuple[str, ...],
               extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_family(family: MetricFamily, lines: List[str]) -> None:
    if family.help:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for values, instrument in family.samples():
        labels = _label_str(family.label_names, values)
        if isinstance(instrument, Histogram):
            cumulative = instrument.cumulative_counts()
            for bound, count in zip(instrument.bounds, cumulative):
                bucket = _label_str(family.label_names, values,
                                    extra=(("le", _fmt(bound)),))
                lines.append(f"{family.name}_bucket{bucket} {int(count)}")
            inf_bucket = _label_str(family.label_names, values,
                                    extra=(("le", "+Inf"),))
            lines.append(
                f"{family.name}_bucket{inf_bucket} {instrument.count}")
            lines.append(
                f"{family.name}_sum{labels} {_fmt(instrument.sum)}")
            lines.append(f"{family.name}_count{labels} {instrument.count}")
        else:
            lines.append(f"{family.name}{labels} {_fmt(instrument.value)}")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        _render_family(family, lines)
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: MetricsRegistry) -> Dict:
    """The registry as a JSON-able snapshot document."""
    metrics: Dict[str, Dict] = {}
    for family in registry.families():
        samples = []
        for values, instrument in family.samples():
            labels = dict(zip(family.label_names, values))
            if isinstance(instrument, Histogram):
                samples.append({
                    "labels": labels,
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "buckets": {_fmt(b): int(c) for b, c in
                                zip(instrument.bounds,
                                    instrument.cumulative_counts())},
                })
            else:
                samples.append({"labels": labels,
                                "value": instrument.value})
        metrics[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "label_names": list(family.label_names),
            "samples": samples,
        }
    return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}


def write_metrics(path: Union[str, Path],
                  registry: MetricsRegistry) -> Path:
    """Write the registry to ``path``.

    ``.json`` paths get the JSON snapshot; anything else (the
    conventional ``.prom``) gets the Prometheus text format.
    """
    path = Path(path)
    if path.suffix == ".json":
        atomic_write_text(path, json.dumps(snapshot(registry), indent=2,
                                           default=str) + "\n")
    else:
        atomic_write_text(path, render_prometheus(registry))
    return path


def _chrome_events(span, origin: float, events: List[Dict]) -> None:
    if span.wall_start is None:
        return
    args = {k: v for k, v in span.attributes.items()}
    if span.sim_start_s is not None:
        args["sim_start_s"] = span.sim_start_s
        if span.sim_end_s is not None:
            args["sim_duration_s"] = span.sim_end_s - span.sim_start_s
    event = {
        "name": span.name,
        "ph": "X",
        "ts": round(units.s_to_us(span.wall_start - origin), 3),
        "dur": round(units.s_to_us(span.duration_s), 3),
        "pid": 1,
        "tid": 1,
        "cat": "netpower",
    }
    if args:
        event["args"] = args
    events.append(event)
    for child in span.children:
        _chrome_events(child, origin, events)


def _chrome_doc_events(span_doc: Dict, pid: int,
                       events: List[Dict]) -> None:
    """Events for one exported (dict-form) span subtree under ``pid``."""
    args = dict(span_doc.get("attributes") or {})
    if "sim_start_s" in span_doc:
        args["sim_start_s"] = span_doc["sim_start_s"]
        if "sim_duration_s" in span_doc:
            args["sim_duration_s"] = span_doc["sim_duration_s"]
    event = {
        "name": span_doc["name"],
        "ph": "X",
        "ts": round(units.s_to_us(span_doc.get("start_s", 0.0)), 3),
        "dur": round(units.s_to_us(span_doc.get("duration_s", 0.0)), 3),
        "pid": pid,
        "tid": 1,
        "cat": "netpower",
    }
    if args:
        event["args"] = args
    events.append(event)
    for child in span_doc.get("children", ()):
        _chrome_doc_events(child, pid, events)


def _process_label(process: Dict, index: int) -> str:
    """A human-readable row name for a stitched subtrace."""
    if not process:
        return f"subtrace {index}"
    parts = [f"{key}={process[key]}" for key in sorted(process)]
    return " ".join(parts)


def chrome_trace(tracer: Tracer) -> Dict:
    """The span tree as a Chrome trace-event document.

    Complete (``ph: "X"``) events with microsecond timestamps relative
    to the trace origin, loadable in Perfetto or ``chrome://tracing``.
    Span attributes and the simulated-clock readings ride along in each
    event's ``args``.  Counter tracks attached by instruments (e.g. the
    energy ledger's per-component fleet watts) are emitted as ``ph:
    "C"`` events under a second process whose clock is the *simulated*
    time in seconds (rendered as microseconds), keeping the two time
    bases visually separate.  Stitched worker subtraces (see
    :class:`~repro.obs.tracing.Tracer`) render as additional ``pid``
    rows, one per subtrace, named from their ``process`` labels.
    """
    origin = min((s.wall_start for s in tracer.roots
                  if s.wall_start is not None),
                 default=getattr(tracer, "created_at", 0.0))
    events: List[Dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 1,
        "args": {"name": "netpower"},
    }]
    for root in tracer.roots:
        _chrome_events(root, origin, events)
    tracks = getattr(tracer, "counter_tracks", None) or []
    if tracks:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": 2,
            "tid": 1,
            "args": {"name": "simulation (sim-time axis)"},
        })
        for track in tracks:
            for t_s, value in zip(track["t_s"], track["values"]):
                events.append({
                    "name": track["name"],
                    "ph": "C",
                    "ts": round(units.s_to_us(t_s), 3),
                    "pid": 2,
                    "cat": "netpower",
                    "args": {"value": value},
                })
    subtraces = getattr(tracer, "subtraces", None) or []
    for index, subtrace in enumerate(subtraces):
        pid = 3 + index
        process = subtrace.get("process") or {}
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "args": {"name": _process_label(process, index)},
        })
        for span_doc in subtrace.get("spans", ()):
            _chrome_doc_events(span_doc, pid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    """Write the tracer's span tree to ``path`` as JSON.

    Paths ending in ``.trace.json`` get Chrome trace-event format (for
    Perfetto); anything else gets the native span-tree document.
    """
    path = Path(path)
    if path.name.endswith(".trace.json"):
        document = json.dumps(chrome_trace(tracer), indent=2, default=str)
    else:
        document = tracer.to_json()
    atomic_write_text(path, document + "\n")
    return path
