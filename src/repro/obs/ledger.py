"""Energy attribution ledger: account for every joule a fleet draws.

The engines compute every named power component of the paper's model --
``P = P_sta(C) + P_dyn(C, L)`` split across chassis base, per-port
statics, per-port traffic dynamics, and the PSU conversion chain -- but
normally collapse them into one wall-power scalar per router.  The
ledger keeps the split: a fixed-memory per-router x per-component
energy matrix accumulated step by step, with a hard conservation
invariant (the conserved components sum to the engine's wall power
within :data:`RESIDUAL_TOLERANCE_W` per router per step).

Component semantics (watts at the instant of a step):

* ``p_base`` -- chassis base draw incl. fan and thermal bumps.
* ``p_trx_in`` / ``p_port`` / ``p_trx_up`` -- per-port static terms.
* ``p_offset`` / ``e_bit_traffic`` / ``e_pkt_traffic`` -- dynamic
  traffic terms (offset, per-bit, per-packet).
* ``dc_referral`` -- DC-side referral correction (``dc - wall_ref``;
  negative, removes the nominal PSU conversion baked into the
  wall-referred catalog parameters).
* ``ambient_noise`` -- device-level AR(1) measurement/ambient noise,
  including the non-negativity clip.
* ``psu_conversion_loss`` -- wall minus device power (the PSUs' cut).
* ``sleep_savings_realized`` -- counterfactual: static power *not*
  drawn by plugged, admin-down ports.  Excluded from conservation.

All components are zero for unpowered routers, matching the engines'
wall power.  The ledger never draws randomness and only reads values,
so attribution on/off cannot perturb a seeded run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs import metrics, profile

#: Component names, in ledger column order.  The first
#: :data:`N_CONSERVED` sum to wall power; the tail entries are
#: counterfactuals excluded from the conservation check.
COMPONENTS = (
    "p_base",
    "p_trx_in",
    "p_port",
    "p_trx_up",
    "p_offset",
    "e_bit_traffic",
    "e_pkt_traffic",
    "dc_referral",
    "ambient_noise",
    "psu_conversion_loss",
    "sleep_savings_realized",
)

#: How many leading :data:`COMPONENTS` participate in conservation.
N_CONSERVED = 10

#: Conservation budget: per-router absolute residual between the
#: conserved component sum and the engine's wall power, per step.
#: Observed float error is ~1e-11 W worst case at 10k routers.
RESIDUAL_TOLERANCE_W = 1e-9

#: Joules per kilowatt-hour.
J_PER_KWH = 3.6e6

M_LEDGER_STEPS = metrics.counter(
    "netpower_ledger_steps_total",
    "Simulation steps recorded by the energy attribution ledger.")
M_LEDGER_RESIDUAL = metrics.gauge(
    "netpower_ledger_max_residual_w",
    "Worst per-router conservation residual seen by the ledger (W).")
M_LEDGER_ENERGY = metrics.gauge(
    "netpower_ledger_component_energy_kwh",
    "Accumulated fleet energy per attribution component (kWh).",
    labels=("component",))


class LedgerAccumulator:
    """Fixed-memory per-router, per-component energy accounting.

    One instance rides along a single simulation run.  Each step the
    engine fills :attr:`power_buf` (a reusable ``(n_routers,
    n_components)`` watt matrix) and calls :meth:`record`, which
    integrates energy, checks conservation against the engine's own
    wall-power column, and optionally keeps a fleet-level per-step
    series for Chrome-trace counter tracks.
    """

    def __init__(self, hostnames: Sequence[str],
                 track_series: bool = False):
        self.hostnames = tuple(hostnames)
        self._index = {h: i for i, h in enumerate(self.hostnames)}
        n = len(self.hostnames)
        #: Reusable per-step watt matrix the engine writes into.
        self.power_buf = np.zeros((n, len(COMPONENTS)))
        #: Accumulated joules per router per component.
        self.energy_j = np.zeros((n, len(COMPONENTS)))
        #: The most recent step's watt matrix (copy of the buffer).
        self.last_power_w = np.zeros((n, len(COMPONENTS)))
        self.max_residual_w = 0.0
        self.n_steps = 0
        self.duration_s = 0.0
        self._track_series = bool(track_series)
        self._series_t: List[float] = []
        self._series_w: List[np.ndarray] = []

    # -- recording -----------------------------------------------------------

    def record(self, t_s: float, step_s: float, power_w: np.ndarray,
               total_w: np.ndarray) -> np.ndarray:
        """Fold one step's watt matrix in; returns fleet watts per component.

        ``power_w`` is the ``(n_routers, n_components)`` matrix for this
        step (usually :attr:`power_buf`); ``total_w`` is the engine's own
        per-router wall power, the conservation reference.
        """
        with profile.region("kernel.ledger_record"):
            residual = float(np.max(np.abs(
                power_w[:, :N_CONSERVED].sum(axis=1) - total_w),
                initial=0.0))
            if residual > self.max_residual_w:
                self.max_residual_w = residual
            self.energy_j += power_w * step_s
            np.copyto(self.last_power_w, power_w)
            self.n_steps += 1
            self.duration_s += step_s
            fleet_w = power_w.sum(axis=0)
            if self._track_series:
                self._series_t.append(float(t_s))
                self._series_w.append(fleet_w.copy())
            if metrics.enabled():
                M_LEDGER_STEPS.inc()
                M_LEDGER_RESIDUAL.set(self.max_residual_w)
            return fleet_w

    def finalize(self) -> None:
        """Publish end-of-run gauges (no-op while metrics are disabled)."""
        if not metrics.enabled():
            return
        fleet = self.fleet_energy_j()
        for i, name in enumerate(COMPONENTS):
            M_LEDGER_ENERGY.labels(component=name).set(
                float(fleet[i]) / J_PER_KWH)

    # -- accessors -----------------------------------------------------------

    def conserved(self) -> bool:
        """Whether every step so far satisfied the conservation budget."""
        return self.max_residual_w <= RESIDUAL_TOLERANCE_W

    def index_of(self, hostname: str) -> int:
        """Row index of ``hostname`` in the ledger matrices."""
        return self._index[hostname]

    def fleet_energy_j(self) -> np.ndarray:
        """Total fleet joules per component, in ledger column order."""
        return self.energy_j.sum(axis=0)

    def router_energy_j(self, hostname: str) -> np.ndarray:
        """One router's joules per component, in ledger column order."""
        return self.energy_j[self._index[hostname]]

    def router_last_power_w(self, hostname: str) -> np.ndarray:
        """One router's most recent per-component watts."""
        return self.last_power_w[self._index[hostname]]

    def group_energy_j(self, hostnames: Sequence[str]) -> np.ndarray:
        """Summed joules per component over a hostname group."""
        idx = [self._index[h] for h in hostnames]
        return self.energy_j[idx].sum(axis=0)

    @staticmethod
    def component_dict(values: np.ndarray,
                       ndigits: int = 6) -> Dict[str, float]:
        """A component vector as a ``{name: rounded value}`` mapping."""
        return {name: round(float(values[i]), ndigits)
                for i, name in enumerate(COMPONENTS)}

    def to_dict(self) -> Dict:
        """Deterministic fleet-level rollup for reports.

        Energies are rounded to 6 decimals (the repo-wide aggregate
        convention); the residual keeps full precision because it lives
        many orders of magnitude below the rounding grid yet is exactly
        reproducible for a seeded run.
        """
        fleet = self.fleet_energy_j()
        duration = self.duration_s
        mean_w = fleet / duration if duration > 0 else np.zeros_like(fleet)
        return {
            "components": list(COMPONENTS),
            "n_steps": self.n_steps,
            "duration_s": round(duration, 6),
            "max_residual_w": self.max_residual_w,
            "tolerance_w": RESIDUAL_TOLERANCE_W,
            "conserved": self.conserved(),
            "energy_kwh": self.component_dict(fleet / J_PER_KWH),
            "mean_power_w": self.component_dict(mean_w),
        }

    # -- trace export --------------------------------------------------------

    def attach_counter_tracks(self, tracer: Optional[object]) -> None:
        """Hand the fleet component series to a tracer as counter tracks.

        Populates ``tracer.counter_tracks`` (consumed by
        :func:`repro.obs.export.chrome_trace` as ``ph: "C"`` events).
        Requires the accumulator to have been built with
        ``track_series=True``; silently does nothing otherwise.
        """
        if tracer is None or not self._series_t:
            return
        tracks = getattr(tracer, "counter_tracks", None)
        if tracks is None:
            return
        series = np.vstack(self._series_w)
        for i, name in enumerate(COMPONENTS):
            tracks.append({
                "name": f"attribution/{name}",
                "t_s": list(self._series_t),
                "values": [float(v) for v in series[:, i]],
            })
