"""Nestable spans recording wall-clock *and* simulated-clock durations.

A :class:`Tracer` collects a tree of :class:`Span` objects.  Spans nest
through an explicit stack, so ``with span("sim.run"): with
span("sim.steps"): ...`` produces the parent/child structure one expects
from a tracing UI, exportable as JSON (``Tracer.to_dict``).

Two clocks per span:

* **wall clock** -- ``time.perf_counter`` at enter/exit, exported as
  offsets relative to the trace origin.  Wall readings exist only inside
  the trace export; they never flow back into seeded computation.
* **sim clock** -- optional: pass ``sim_clock=<zero-arg callable>`` and
  the span samples it at enter and exit (e.g. the fleet simulation's
  ``clock_s``), so a trace shows both "how long did this take" and "how
  much simulated time did it cover".

Like the metrics registry, tracing is disabled by default: the
module-level :func:`span` helper returns a shared no-op context manager
until :func:`set_tracer` installs a real tracer, keeping instrumented
code zero-cost in normal runs.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import (Callable, ContextManager, Dict, Iterator, List,
                    Optional)

#: Schema identifier stamped on exported trace documents.
TRACE_SCHEMA = "repro.obs.trace/v2"


class Span:
    """One timed operation; may carry attributes and child spans."""

    __slots__ = ("name", "attributes", "children", "wall_start", "wall_end",
                 "sim_start_s", "sim_end_s")

    def __init__(self, name: str, attributes: Optional[Dict] = None):
        self.name = name
        self.attributes: Dict = dict(attributes or {})
        self.children: List[Span] = []
        self.wall_start: Optional[float] = None
        self.wall_end: Optional[float] = None
        self.sim_start_s: Optional[float] = None
        self.sim_end_s: Optional[float] = None

    def set_attribute(self, key: str, value: object) -> None:
        """Attach or overwrite one attribute on the span."""
        self.attributes[key] = value

    @property
    def duration_s(self) -> float:
        """Wall-clock duration (up to now if the span is still open)."""
        if self.wall_start is None:
            return 0.0
        end = (self.wall_end if self.wall_end is not None
               else time.perf_counter())
        return end - self.wall_start

    def to_dict(self, origin: float) -> Dict:
        """JSON-able form with wall times relative to ``origin``."""
        doc: Dict = {
            "name": self.name,
            "start_s": round((self.wall_start or origin) - origin, 9),
            "duration_s": round(self.duration_s, 9),
        }
        if self.sim_start_s is not None:
            doc["sim_start_s"] = self.sim_start_s
            if self.sim_end_s is not None:
                doc["sim_duration_s"] = self.sim_end_s - self.sim_start_s
        if self.attributes:
            doc["attributes"] = dict(self.attributes)
        if self.children:
            doc["children"] = [c.to_dict(origin) for c in self.children]
        return doc


class Tracer:
    """Collects a forest of spans for one run (single-threaded).

    A tracer may carry *subtraces*: trace documents captured in other
    processes (sweep workers) and stitched in parent-side, each labelled
    with its origin via the ``process`` block.  The Chrome exporter
    renders every subtrace as its own ``pid`` row so a multi-worker
    sweep reads as one timeline.
    """

    def __init__(self, trace_id: Optional[str] = None,
                 process: Optional[Dict] = None):
        #: Stable identifier shared by a parent trace and the worker
        #: subtraces stitched into it (``None`` for standalone traces).
        self.trace_id = trace_id
        #: Labels identifying the producing process, e.g.
        #: ``{"worker": 2, "os_pid": 1234, "job": "synth-200/..."}``.
        self.process: Dict = dict(process or {})
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        #: Counter-track series attached by instruments (e.g. the energy
        #: ledger): ``{"name", "t_s", "values"}`` dicts that the Chrome
        #: trace exporter renders as ``ph: "C"`` counter events.
        self.counter_tracks: List[Dict] = []
        #: Trace documents (``Tracer.to_dict`` output) captured in other
        #: processes, stitched in by the sweep runner.
        self.subtraces: List[Dict] = []
        #: Origin fallback when no root span ever closed: without this,
        #: counter tracks or subtraces added to an otherwise span-less
        #: tracer would export absolute ``perf_counter`` offsets.
        self.created_at = time.perf_counter()

    @contextmanager
    def span(self, name: str,
             sim_clock: Optional[Callable[[], float]] = None,
             **attributes: object) -> Iterator[Span]:
        """Open a span; nests under the innermost open span."""
        sp = Span(name, attributes)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(sp)
        self._stack.append(sp)
        sp.wall_start = time.perf_counter()
        if sim_clock is not None:
            sp.sim_start_s = float(sim_clock())
        try:
            yield sp
        except BaseException as exc:
            sp.attributes.setdefault(
                "error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            sp.wall_end = time.perf_counter()
            if sim_clock is not None:
                sp.sim_end_s = float(sim_clock())
            self._stack.pop()

    def to_dict(self) -> Dict:
        """The whole trace as a JSON-able document.

        Wall times are offsets from the trace origin: the earliest root
        span start, falling back to the tracer's creation time when no
        root span has started (never the absolute ``perf_counter``
        epoch).  Counter tracks and stitched subtraces are included so
        the ``.json`` and ``.trace.json`` exports carry the same data.
        """
        origin = min((s.wall_start for s in self.roots
                      if s.wall_start is not None),
                     default=self.created_at)
        doc: Dict = {
            "schema": TRACE_SCHEMA,
            "spans": [s.to_dict(origin) for s in self.roots],
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        if self.process:
            doc["process"] = dict(self.process)
        if self.counter_tracks:
            doc["counter_tracks"] = [dict(t) for t in self.counter_tracks]
        if self.subtraces:
            doc["subtraces"] = [dict(t) for t in self.subtraces]
        return doc

    def to_json(self, indent: int = 2) -> str:
        """The whole trace rendered as a JSON document string."""
        return json.dumps(self.to_dict(), indent=indent, default=str)


# ---------------------------------------------------------------------------
# The active tracer and the zero-cost disabled path
# ---------------------------------------------------------------------------


class _NullSpan:
    """Stands in for a Span while tracing is disabled."""

    __slots__ = ()
    name = ""
    attributes: Dict = {}
    children: List = []
    duration_s = 0.0

    def set_attribute(self, key: str, value) -> None:
        pass


class _NullSpanContext:
    """Reusable, reentrant no-op context manager yielding a null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()

_active: Optional[Tracer] = None


def enabled() -> bool:
    """Whether a real tracer is installed."""
    return _active is not None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` while tracing is disabled."""
    return _active


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or clear, with ``None``) the active tracer.

    Returns the previously active tracer so callers can restore it.
    """
    global _active
    previous = _active
    _active = tracer
    return previous


@contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Scope ``tracer`` as the active one for a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, sim_clock: Optional[Callable[[], float]] = None,
         **attributes: object) -> ContextManager[Span]:
    """Open a span on the active tracer, or a shared no-op when disabled.

    The disabled path hands back a reusable null context whose span
    duck-types :class:`Span`.
    """
    tracer = _active
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, sim_clock=sim_clock, **attributes)
