"""Structured logging: JSON-lines or human-readable, per-subsystem loggers.

Built on the standard :mod:`logging` machinery so third-party handlers
compose, with three pieces the toolchain needs:

* :func:`get_logger` -- child loggers under the ``repro`` root, one per
  subsystem (``get_logger("network.sim")`` -> ``repro.network.sim``), so
  ``--log-level`` filters the whole tree at once;
* :class:`JsonLinesFormatter` -- one JSON object per line carrying
  timestamp, level, logger, message, and any structured ``extra=``
  fields (machine-parseable end to end);
* :class:`ConsoleFormatter` -- the human-readable rendering; its
  ``bare`` variant prints the message verbatim, which is what keeps the
  CLI's report output byte-identical to the historical ``print`` lines.

Handlers resolve ``sys.stdout`` / ``sys.stderr`` at *emit* time
(:class:`StreamProxyHandler`), so stream redirection by test harnesses
(pytest's ``capsys``) and by callers keeps working after configuration.

Nothing is configured by default: the ``repro`` root gets a
``NullHandler`` so library use stays silent until :func:`configure` is
called (the CLI calls it on every invocation).
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional

#: Record attributes that are part of the stdlib record, not user extras.
_RESERVED = frozenset(
    list(vars(logging.makeLogRecord({}))) + ["message", "asctime", "taskName"])

_LEVELS = ("debug", "info", "warning", "error", "critical")


def _extras(record: logging.LogRecord) -> dict:
    return {k: v for k, v in record.__dict__.items()
            if k not in _RESERVED and not k.startswith("_")}


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        """Render one record as a single JSON line."""
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_extras(record))
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        # netpower: ignore[NP-SCHEMA-001] -- diagnostics stream, not a
        # persisted report: each line is self-describing (ts/level/
        # logger/message) and is never re-read by this codebase.
        return json.dumps(payload, default=str)


class ConsoleFormatter(logging.Formatter):
    """Human-readable rendering with structured extras appended as k=v.

    With ``bare=True`` the message (plus extras) is printed without the
    time/level/logger prefix -- the CLI report channel uses this so its
    output stays exactly the historical text.
    """

    def __init__(self, bare: bool = False):
        super().__init__()
        self.bare = bare

    def format(self, record: logging.LogRecord) -> str:
        """Render one record as console text (bare or prefixed)."""
        message = record.getMessage()
        extras = _extras(record)
        if extras:
            rendered = " ".join(f"{k}={v}" for k, v in extras.items())
            message = f"{message} [{rendered}]"
        if record.exc_info:
            message = f"{message}\n{self.formatException(record.exc_info)}"
        if self.bare:
            return message
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        return (f"{stamp} {record.levelname.lower():7s} "
                f"{record.name}: {message}")


class StreamProxyHandler(logging.Handler):
    """Writes to the *current* ``sys.stdout``/``sys.stderr`` at emit time."""

    def __init__(self, target: str = "stderr"):
        if target not in ("stdout", "stderr"):
            raise ValueError(f"target must be stdout or stderr, got {target}")
        super().__init__()
        self.target = target

    def emit(self, record: logging.LogRecord) -> None:
        """Write the record to the currently installed stream."""
        try:
            stream = getattr(sys, self.target)
            stream.write(self.format(record) + "\n")
        except Exception:
            self.handleError(record)


def get_logger(subsystem: str = "") -> logging.Logger:
    """The logger for one subsystem, parented under ``repro``."""
    if not subsystem:
        return logging.getLogger("repro")
    if subsystem == "repro" or subsystem.startswith("repro."):
        return logging.getLogger(subsystem)
    return logging.getLogger(f"repro.{subsystem}")


def _replace_obs_handlers(logger: logging.Logger,
                          handler: logging.Handler) -> None:
    """Idempotent (re)configuration: swap out previously installed handlers."""
    for old in list(logger.handlers):
        if getattr(old, "_repro_obs", False):
            logger.removeHandler(old)
    handler._repro_obs = True  # type: ignore[attr-defined]
    logger.addHandler(handler)


def configure(level: str = "warning", json_mode: bool = False,
              target: str = "stderr") -> logging.Logger:
    """Attach a diagnostics handler to the ``repro`` root logger.

    Safe to call repeatedly (each call replaces the previous handler).
    Diagnostics go to stderr by default so command *output* on stdout
    stays clean.
    """
    if level.lower() not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"choose from {_LEVELS}")
    root = get_logger()
    handler = StreamProxyHandler(target)
    handler.setFormatter(
        JsonLinesFormatter() if json_mode else ConsoleFormatter())
    _replace_obs_handlers(root, handler)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    return root


def configure_reporter(name: str, target: str, json_mode: bool = False,
                       level: int = logging.INFO) -> logging.Logger:
    """A report channel: always-on logger printing bare messages.

    Unlike diagnostics (which ``--log-level`` filters), report channels
    carry a command's actual output; the bare console formatter keeps it
    byte-identical to plain ``print`` and the JSON formatter makes it
    machine-parseable under ``--log-json``.
    """
    logger = logging.getLogger(name)
    handler = StreamProxyHandler(target)
    handler.setFormatter(
        JsonLinesFormatter() if json_mode else ConsoleFormatter(bare=True))
    _replace_obs_handlers(logger, handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


# Library default: silent until configure() is called.
_root = logging.getLogger("repro")
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())
