"""Kernel profiler: fixed-memory wall-time attribution for hot paths.

A :class:`Profiler` accumulates per-kernel statistics for named regions
-- ``with profile.region("kernel.wall_power"): ...`` -- wired into the
simulation hot paths (vector step kernels, the object-path power chain,
SNMP polling, monitor rollups, ledger accumulation).  Per kernel it
tracks call counts, cumulative and *self* wall time (cumulative minus
time spent in nested regions), and a fixed log-spaced per-call duration
histogram; per unique region *stack* it tracks self time for folded
flamegraph output.  Memory is fixed: nothing per-call is retained, and
region names are string literals by convention (enforced by the
``NP-OBS-001`` check rule), bounding cardinality.

Like metrics and tracing, profiling is disabled by default: the
module-level :func:`region` helper returns a shared no-op context until
:func:`set_profiler` installs a real profiler (``--profile-out`` does
this in the CLI), keeping instrumented code zero-cost in normal runs.
Determinism is untouched -- regions only *time* code; wall readings
live only in the profile export, never in seeded computation.

Exports: a sorted ``repro.obs.profile/v1`` JSON document
(:meth:`Profiler.to_dict`), folded-stack flamegraph text
(:meth:`Profiler.folded`), speedscope JSON (:meth:`Profiler.speedscope`)
and ``netpower_profile_*`` metric families
(:meth:`Profiler.publish_metrics`).
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro import units
from repro.ioutil import atomic_write_text
from repro.obs import metrics

#: Schema identifier stamped on exported profile documents.
PROFILE_SCHEMA = "repro.obs.profile/v1"

#: Log-spaced per-call duration bucket bounds in seconds (1 us .. 10 s).
CALL_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

#: Safety cap on distinct kernel names; hitting it means somebody built
#: region names dynamically (which NP-OBS-001 exists to prevent), and
#: further names collapse into this bucket instead of growing memory.
MAX_KERNELS = 256
OVERFLOW_KERNEL = "(other)"

_CALLS = metrics.counter(
    "netpower_profile_calls_total",
    "Region entries per profiled kernel.", labels=("kernel",))
_SECONDS = metrics.counter(
    "netpower_profile_seconds_total",
    "Cumulative wall seconds per profiled kernel (children included).",
    labels=("kernel",))
_SELF_SECONDS = metrics.counter(
    "netpower_profile_self_seconds_total",
    "Self wall seconds per profiled kernel (children excluded).",
    labels=("kernel",))
_CALL_SECONDS = metrics.histogram(
    "netpower_profile_call_seconds",
    "Per-call wall-time distribution per profiled kernel.",
    labels=("kernel",), buckets=CALL_BUCKETS)


class _KernelStat:
    """Accumulated statistics for one kernel name."""

    __slots__ = ("calls", "cum_s", "self_s", "bucket_counts")

    def __init__(self) -> None:
        self.calls = 0
        self.cum_s = 0.0
        self.self_s = 0.0
        #: One slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(CALL_BUCKETS) + 1)


class _Region:
    """Context manager for one profiled region entry."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Region":
        self._profiler._enter(self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profiler._exit()


class Profiler:
    """Accumulates per-kernel timings for one run (single-threaded)."""

    def __init__(self) -> None:
        self._stats: Dict[str, _KernelStat] = {}
        #: Open-region stack entries: ``[name, start_s, child_s]``.
        self._stack: List[List] = []
        #: Names of the open regions, root first (folded-stack key).
        self._path: List[str] = []
        #: Per unique region stack: ``[self_s, calls]``.
        self._paths: Dict[Tuple[str, ...], List] = {}

    def region(self, name: str) -> _Region:
        """A context manager timing one entry of kernel ``name``."""
        return _Region(self, name)

    # -- hot path -----------------------------------------------------------

    def _enter(self, name: str) -> None:
        if name not in self._stats and len(self._stats) >= MAX_KERNELS:
            name = OVERFLOW_KERNEL
        self._path.append(name)
        self._stack.append([name, time.perf_counter(), 0.0])

    def _exit(self) -> None:
        end = time.perf_counter()
        name, start, child_s = self._stack.pop()
        duration = end - start
        if self._stack:
            self._stack[-1][2] += duration
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = _KernelStat()
        self_s = duration - child_s
        stat.calls += 1
        stat.cum_s += duration
        stat.self_s += self_s
        stat.bucket_counts[bisect_left(CALL_BUCKETS, duration)] += 1
        key = tuple(self._path)
        self._path.pop()
        path_stat = self._paths.get(key)
        if path_stat is None:
            if len(self._paths) < 4 * MAX_KERNELS:
                self._paths[key] = [self_s, 1]
        else:
            path_stat[0] += self_s
            path_stat[1] += 1

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's accumulated stats into this one.

        Used by the bench harness: each timed engine run gets a private
        profiler (so its kernel totals land in the report entry), then
        merges into the session profiler backing ``--profile-out``.
        """
        for name, stat in other._stats.items():
            mine = self._stats.get(name)
            if mine is None:
                mine = self._stats[name] = _KernelStat()
            mine.calls += stat.calls
            mine.cum_s += stat.cum_s
            mine.self_s += stat.self_s
            mine.bucket_counts = [
                a + b for a, b in zip(mine.bucket_counts,
                                      stat.bucket_counts)]
        for key, path_stat in other._paths.items():
            mine_path = self._paths.get(key)
            if mine_path is None:
                self._paths[key] = [path_stat[0], path_stat[1]]
            else:
                mine_path[0] += path_stat[0]
                mine_path[1] += path_stat[1]

    # -- exports ------------------------------------------------------------

    def to_dict(self) -> Dict:
        """The profile as a sorted, JSON-able document.

        Kernel and stack ordering is deterministic (sorted); the timing
        *values* are wall-clock measurements and vary run to run.
        """
        kernels = {
            name: {
                "calls": stat.calls,
                "cum_s": round(stat.cum_s, 9),
                "self_s": round(stat.self_s, 9),
                "bucket_counts": list(stat.bucket_counts),
            }
            for name, stat in sorted(self._stats.items())
        }
        paths = [
            {"stack": list(stack), "calls": stat[1],
             "self_s": round(stat[0], 9)}
            for stack, stat in sorted(self._paths.items())
        ]
        return {
            "schema": PROFILE_SCHEMA,
            "bucket_bounds_s": list(CALL_BUCKETS),
            "kernels": kernels,
            "paths": paths,
        }

    def to_json(self, indent: int = 2) -> str:
        """The profile document rendered as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def folded(self) -> str:
        """Folded-stack flamegraph text (``a;b;c <self-microseconds>``).

        One line per unique region stack, sorted, with integer
        microsecond self-time weights -- the input format of
        ``flamegraph.pl`` and compatible renderers.
        """
        lines = []
        for stack, stat in sorted(self._paths.items()):
            weight = int(round(units.s_to_us(stat[0])))
            lines.append(f"{';'.join(stack)} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self) -> Dict:
        """The profile as a speedscope ``sampled`` document.

        Each unique region stack becomes one sample weighted by its
        self time in microseconds (https://www.speedscope.app/).
        """
        frame_names = sorted({name for stack in self._paths
                              for name in stack})
        index = {name: i for i, name in enumerate(frame_names)}
        samples: List[List[int]] = []
        weights: List[float] = []
        for stack, stat in sorted(self._paths.items()):
            samples.append([index[name] for name in stack])
            weights.append(round(units.s_to_us(stat[0]), 3))
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": [{"name": n} for n in frame_names]},
            "profiles": [{
                "type": "sampled",
                "name": "netpower kernels",
                "unit": "microseconds",
                "startValue": 0,
                "endValue": round(sum(weights), 3),
                "samples": samples,
                "weights": weights,
            }],
            "exporter": "netpower",
        }

    def publish_metrics(self) -> None:
        """Publish accumulated totals into the active metrics registry.

        Call once, at export time: totals are *added* to the
        ``netpower_profile_*`` families, so repeated calls double-count.
        No-op while metrics are disabled.
        """
        if not metrics.enabled():
            return
        for name, stat in sorted(self._stats.items()):
            _CALLS.labels(kernel=name).inc(stat.calls)
            _SECONDS.labels(kernel=name).inc(stat.cum_s)
            _SELF_SECONDS.labels(kernel=name).inc(stat.self_s)
            hist = _CALL_SECONDS.labels(kernel=name)
            if isinstance(hist, metrics.Histogram):
                # Bucket-exact transfer: the profiler bins with the same
                # bounds the metric family declares.
                hist.bucket_counts += stat.bucket_counts
                hist.sum += stat.cum_s
                hist.count += stat.calls


# ---------------------------------------------------------------------------
# The active profiler and the zero-cost disabled path
# ---------------------------------------------------------------------------


class _NullRegion:
    """Reusable, reentrant no-op context while profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullRegion":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_REGION = _NullRegion()

_active: Optional[Profiler] = None


def enabled() -> bool:
    """Whether a real profiler is installed."""
    return _active is not None


def get_profiler() -> Optional[Profiler]:
    """The active profiler, or ``None`` while profiling is disabled."""
    return _active


def set_profiler(profiler: Optional[Profiler]) -> Optional[Profiler]:
    """Install (or clear, with ``None``) the active profiler.

    Returns the previously active profiler so callers can restore it.
    """
    global _active
    previous = _active
    _active = profiler
    return previous


@contextmanager
def use_profiler(profiler: Optional[Profiler],
                 ) -> Iterator[Optional[Profiler]]:
    """Scope ``profiler`` as the active one for a ``with`` block."""
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)


def region(name: str) -> Union[_Region, _NullRegion]:
    """Open a region on the active profiler, or a shared no-op when off."""
    profiler = _active
    if profiler is None:
        return _NULL_REGION
    return profiler.region(name)


def write_profile(path: Union[str, Path], profiler: Profiler) -> Path:
    """Write the profiler's accumulated data to ``path``.

    ``.folded`` paths get flamegraph folded-stack text;
    ``.speedscope.json`` paths get speedscope JSON; anything else gets
    the native ``repro.obs.profile/v1`` document.
    """
    path = Path(path)
    if path.suffix == ".folded":
        atomic_write_text(path, profiler.folded())
    elif path.name.endswith(".speedscope.json"):
        atomic_write_text(path, json.dumps(profiler.speedscope(), indent=2,
                                           default=str) + "\n")
    else:
        atomic_write_text(path, profiler.to_json() + "\n")
    return path
