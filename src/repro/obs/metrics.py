"""Label-aware metric instruments and the registry that collects them.

The design follows the Prometheus client-library model -- Counter /
Gauge / Histogram families, each optionally split by label values --
with one twist that matters for a simulation codebase: **instrumentation
is free when nobody is looking**.  Modules declare instruments at import
time as :class:`InstrumentHandle` objects; a handle only materialises a
real instrument when a :class:`MetricsRegistry` has been installed via
:func:`set_registry` (the CLI does this for ``--metrics-out``).  With no
registry active every handle method resolves to a shared no-op, so the
vectorized simulation hot path pays a single attribute check per call
site -- and the hot loops batch their observations through
:meth:`Histogram.observe_many` besides.

Observability never perturbs determinism: instruments only *read*
values handed to them; they never draw randomness and never feed back
into the simulation.  Wall-clock readings live only in metric values,
segregated from every seeded result.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Prometheus-compatible metric and label name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, Prometheus defaults).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class _NoopInstrument:
    """Shared do-nothing instrument returned while metrics are disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def labels(self, **label_values) -> "_NoopInstrument":
        return self


NOOP = _NoopInstrument()


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self.value -= amount


class Histogram:
    """A distribution: bucket counts (``le`` semantics), sum, and count.

    ``observe_many`` takes any array-like and bins it with one
    ``np.searchsorted`` -- the batched entry point the simulation engines
    use so per-step latency tracking stays off the Python hot path.
    """

    __slots__ = ("bounds", "_edges", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not np.isfinite(b) for b in bounds):
            raise ValueError(f"bucket bounds must be finite, got {bounds}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}")
        self.bounds = bounds
        self._edges = np.asarray(bounds)
        #: One slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        self.sum += v
        self.count += 1
        # side="left": a value equal to a bound lands in that bound's
        # bucket, matching Prometheus' v <= le.
        self.bucket_counts[np.searchsorted(self._edges, v, side="left")] += 1

    def observe_many(self, values: "np.typing.ArrayLike") -> None:
        """Record an array-like of observations in one binning pass."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        self.sum += float(arr.sum())
        self.count += int(arr.size)
        idx = np.searchsorted(self._edges, arr, side="left")
        self.bucket_counts += np.bincount(
            idx, minlength=len(self.bounds) + 1)

    def cumulative_counts(self) -> np.ndarray:
        """Cumulative bucket counts in ``le`` order (last == count)."""
        return np.cumsum(self.bucket_counts)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

#: Anything a family or handle can hand back to instrumented code.
Instrument = Union[Counter, Gauge, Histogram, _NoopInstrument]

#: Schema identifier on mergeable registry state documents (the
#: cross-process form the sweep runner ships worker metrics home in).
STATE_SCHEMA = "repro.obs.metrics.state/v1"


class MetricFamily:
    """All instruments of one name, split by label values."""

    def __init__(self, kind: str, name: str, help: str,
                 label_names: Tuple[str, ...] = (),
                 buckets: Optional[Tuple[float, ...]] = None):
        self.kind = kind
        self.name = name
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **label_values: object) -> Instrument:
        """The instrument for one combination of label values."""
        extra = set(label_values) - set(self.label_names)
        missing = set(self.label_names) - set(label_values)
        if extra or missing:
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got "
                f"{tuple(sorted(label_values))}")
        key = tuple(str(label_values[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = (Histogram(self.buckets or DEFAULT_BUCKETS)
                     if self.kind == "histogram" else _KINDS[self.kind]())
            self._children[key] = child
        return child

    def default(self) -> Instrument:
        """The single unlabeled instrument (only for label-less families)."""
        if self.label_names:
            raise ValueError(
                f"{self.name} is labeled by {self.label_names}; "
                f"use .labels(...)")
        return self.labels()

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, instrument) pairs in insertion order."""
        return list(self._children.items())


class MetricsRegistry:
    """Holds metric families and hands out their instruments.

    One registry corresponds to one export target (a ``--metrics-out``
    file, a test assertion).  Families are created on first use and are
    idempotent: asking again with the same (kind, name, labels) returns
    the existing family, while conflicting re-registration raises.
    """

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, kind: str, name: str, help: str = "",
                label_names: Sequence[str] = (),
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        label_names = tuple(label_names)
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"metric {name} already registered as {family.kind}"
                    f"{family.label_names}, cannot re-register as "
                    f"{kind}{label_names}")
            return family
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name}")
        family = MetricFamily(
            kind, name, help, label_names,
            tuple(buckets) if buckets is not None else None)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        """The counter family ``name``, created on first use."""
        return self._family("counter", name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        """The gauge family ``name``, created on first use."""
        return self._family("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        """The histogram family ``name``, created on first use."""
        return self._family("histogram", name, help, labels, buckets)

    def families(self) -> List[MetricFamily]:
        """All families, sorted by metric name."""
        return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family called ``name``, or ``None``."""
        return self._families.get(name)

    # -- mergeable state (cross-process aggregation) -----------------------------

    def snapshot_state(self) -> Dict:
        """The registry as a plain, JSON/pickle-able state document.

        Unlike :func:`repro.obs.export.snapshot` (a read-only report),
        this form round-trips: :meth:`restore_state` rebuilds identical
        instruments from it and :meth:`merge_state` folds one registry's
        state into another -- the contract worker processes use to ship
        their per-job metrics back to the sweep parent.
        """
        families = {}
        for family in self.families():
            samples = []
            for values, instrument in family.samples():
                sample: Dict = {"labels": list(values)}
                if isinstance(instrument, Histogram):
                    sample["bucket_counts"] = [
                        int(c) for c in instrument.bucket_counts]
                    sample["sum"] = instrument.sum
                    sample["count"] = instrument.count
                else:
                    sample["value"] = instrument.value
                samples.append(sample)
            families[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "buckets": (list(family.buckets)
                            if family.buckets is not None else None),
                "samples": samples,
            }
        return {"schema": STATE_SCHEMA, "families": families}

    def merge_state(self, state: Dict) -> None:
        """Fold another registry's :meth:`snapshot_state` into this one.

        Counters and histograms are *additive* (values, bucket counts,
        sums, and counts accumulate); gauges are *last-writer-wins* (the
        incoming value replaces the local one -- they report instants,
        not totals).  Families missing here are created; kind, label, or
        bucket conflicts raise, exactly like a live re-registration.
        """
        if state.get("schema") != STATE_SCHEMA:
            raise ValueError(
                f"cannot merge metrics state with schema "
                f"{state.get('schema')!r}; expected {STATE_SCHEMA!r}")
        for name, data in state["families"].items():
            family = self._family(
                data["kind"], name, data.get("help", ""),
                tuple(data.get("label_names", ())),
                data.get("buckets"))
            if (family.kind == "histogram"
                    and data.get("buckets") is not None
                    and tuple(family.buckets or DEFAULT_BUCKETS)
                    != tuple(data["buckets"])):
                raise ValueError(
                    f"metric {name}: cannot merge histogram with buckets "
                    f"{data['buckets']} into {list(family.buckets or ())}")
            for sample in data["samples"]:
                instrument = family.labels(
                    **dict(zip(family.label_names, sample["labels"])))
                if family.kind == "counter":
                    instrument.inc(sample["value"])
                elif family.kind == "gauge":
                    instrument.set(sample["value"])
                else:
                    counts = np.asarray(sample["bucket_counts"],
                                        dtype=np.int64)
                    if counts.shape != instrument.bucket_counts.shape:
                        raise ValueError(
                            f"metric {name}: bucket count mismatch "
                            f"({counts.size} vs "
                            f"{instrument.bucket_counts.size})")
                    instrument.bucket_counts += counts
                    instrument.sum += float(sample["sum"])
                    instrument.count += int(sample["count"])

    def restore_state(self, state: Dict) -> None:
        """Rebuild instruments from a state document (fresh registries).

        A plain alias of :meth:`merge_state` -- merging into an empty
        registry *is* restoration; the name documents intent at call
        sites that reconstruct rather than aggregate.
        """
        self.merge_state(state)

    @classmethod
    def from_state(cls, state: Dict) -> "MetricsRegistry":
        """A new registry holding exactly the instruments in ``state``."""
        registry = cls()
        registry.restore_state(state)
        return registry

    def register_declared(self) -> None:
        """Materialise every declared handle's family in this registry.

        Unlabeled families also get their single instrument created, so
        never-touched counters still export an explicit ``0`` -- the
        scrape-side convention that distinguishes "nothing happened"
        from "nothing was measured".
        """
        for handle in _DECLARED.values():
            family = self._family(handle.kind, handle.name, handle.help,
                                  handle.label_names, handle.buckets)
            if not family.label_names:
                family.default()


# ---------------------------------------------------------------------------
# The active registry and the declared-instrument catalog
# ---------------------------------------------------------------------------

_active: Optional[MetricsRegistry] = None
_DECLARED: Dict[str, "InstrumentHandle"] = {}


def enabled() -> bool:
    """Whether a real registry is installed (hot paths gate on this)."""
    return _active is not None


def get_registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` while metrics are disabled."""
    return _active


def set_registry(registry: Optional[MetricsRegistry],
                 ) -> Optional[MetricsRegistry]:
    """Install (or clear, with ``None``) the active registry.

    Returns the previously active registry so callers can restore it.
    """
    global _active
    previous = _active
    _active = registry
    if registry is not None:
        registry.register_declared()
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry],
                 ) -> Iterator[Optional[MetricsRegistry]]:
    """Scope ``registry`` as the active one for a ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


class InstrumentHandle:
    """A module-level instrument declaration, resolved lazily per call.

    Handles are what instrumented code holds: they survive registry
    swaps, cost one ``None`` check when metrics are off, and register
    themselves in the catalog so freshly installed registries export the
    full instrument surface (see :meth:`MetricsRegistry.register_declared`).
    """

    __slots__ = ("kind", "name", "help", "label_names", "buckets")

    def __init__(self, kind: str, name: str, help: str,
                 label_names: Tuple[str, ...],
                 buckets: Optional[Tuple[float, ...]] = None):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        existing = _DECLARED.get(name)
        if existing is not None and (existing.kind != kind
                                     or existing.label_names != label_names):
            raise ValueError(
                f"instrument {name} already declared as {existing.kind}"
                f"{existing.label_names}")
        self.kind = kind
        self.name = name
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        _DECLARED[name] = self

    def _resolved(self):
        registry = _active
        if registry is None:
            return None
        return registry._family(self.kind, self.name, self.help,
                                self.label_names, self.buckets)

    def labels(self, **label_values: object) -> Instrument:
        """The live instrument for these labels, or the shared no-op."""
        family = self._resolved()
        return NOOP if family is None else family.labels(**label_values)

    # Unlabeled conveniences: no-ops while disabled, else the default child.

    def inc(self, amount: float = 1.0) -> None:
        """Increment the default child (no-op while disabled)."""
        family = self._resolved()
        if family is not None:
            family.default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the default child (no-op while disabled)."""
        family = self._resolved()
        if family is not None:
            family.default().dec(amount)

    def set(self, value: float) -> None:
        """Set the default child gauge (no-op while disabled)."""
        family = self._resolved()
        if family is not None:
            family.default().set(value)

    def observe(self, value: float) -> None:
        """Observe into the default child (no-op while disabled)."""
        family = self._resolved()
        if family is not None:
            family.default().observe(value)

    def observe_many(self, values: "np.typing.ArrayLike") -> None:
        """Batch-observe into the default child (no-op while disabled)."""
        family = self._resolved()
        if family is not None:
            family.default().observe_many(values)


def counter(name: str, help: str = "",
            labels: Sequence[str] = ()) -> InstrumentHandle:
    """Declare a counter instrument (module scope; resolved lazily)."""
    return InstrumentHandle("counter", name, help, tuple(labels))


def gauge(name: str, help: str = "",
          labels: Sequence[str] = ()) -> InstrumentHandle:
    """Declare a gauge instrument (module scope; resolved lazily)."""
    return InstrumentHandle("gauge", name, help, tuple(labels))


def histogram(name: str, help: str = "", labels: Sequence[str] = (),
              buckets: Optional[Sequence[float]] = None) -> InstrumentHandle:
    """Declare a histogram instrument (module scope; resolved lazily)."""
    return InstrumentHandle("histogram", name, help, tuple(labels),
                            tuple(buckets) if buckets is not None else None)
