"""repro.obs -- the shared observability substrate.

Structured logging, a label-aware metrics registry, and span tracing for
every subsystem of the toolchain: the fleet simulation, the NetPowerBench
lab, the derivation pipeline, Autopower telemetry, and the optimisation
analyses.  See ``docs/OBSERVABILITY.md`` for the instrument catalog and
naming conventions.

Design invariants:

* **Zero-cost when disabled.**  Metrics and tracing are off by default;
  instrumented call sites resolve to shared no-ops until a registry /
  tracer is installed (``--metrics-out`` / ``--trace-out`` do this in
  the CLI).
* **Determinism is untouched.**  Instruments only read values; seeded
  simulation and derivation outputs are byte-identical with
  observability on or off.  Wall-clock readings live only in metric
  values, log timestamps, and trace exports.
"""

from repro.obs import export, logging, metrics, profile, tracing
from repro.obs.export import (
    chrome_trace,
    render_prometheus,
    snapshot,
    write_metrics,
    write_trace,
)
from repro.obs.logging import (
    ConsoleFormatter,
    JsonLinesFormatter,
    configure,
    get_logger,
)
from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    Profiler,
    region,
    set_profiler,
    use_profiler,
    write_profile,
)
from repro.obs.tracing import Span, Tracer, set_tracer, span, use_tracer

#: Modules that declare instruments; imported by
#: :func:`load_instrument_catalog` so an export carries the complete
#: instrument surface even for subsystems a command never exercised.
_INSTRUMENTED_MODULES = (
    "repro.network.simulation",
    "repro.network.engine",
    "repro.lab.orchestrator",
    "repro.core.derivation",
    "repro.telemetry.autopower",
    "repro.psu_opt.analysis",
    "repro.sleep.savings",
    "repro.sleep.rate_adaptation",
    "repro.monitor.rollup",
    "repro.monitor.alerts",
    "repro.sweep.runner",
    "repro.obs.ledger",
    "repro.obs.profile",
)


def load_instrument_catalog() -> None:
    """Import every instrumented module so all declarations exist."""
    import importlib

    for module in _INSTRUMENTED_MODULES:
        importlib.import_module(module)


__all__ = [
    "export",
    "logging",
    "metrics",
    "profile",
    "tracing",
    "chrome_trace",
    "render_prometheus",
    "snapshot",
    "write_metrics",
    "write_trace",
    "ConsoleFormatter",
    "JsonLinesFormatter",
    "configure",
    "get_logger",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "set_registry",
    "use_registry",
    "Profiler",
    "region",
    "set_profiler",
    "use_profiler",
    "write_profile",
    "Span",
    "Tracer",
    "set_tracer",
    "span",
    "use_tracer",
    "load_instrument_catalog",
]
