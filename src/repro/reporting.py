"""Energy, cost, and emissions reporting on top of power traces.

The paper measures watts; an operator budgets kilowatt-hours, francs,
and CO2e.  This module converts power time series into the downstream
report: trapezoidal energy integration over irregular samples, cost at a
tariff, emissions at a grid intensity, and the ranking of routers by
annualised consumption that makes the §9 savings tangible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

import numpy as np

from repro import units
from repro.telemetry.traces import TimeSeries

#: Swiss grid carbon intensity, gCO2e per kWh (consumption mix, ~2023).
SWISS_GRID_GCO2_PER_KWH = 112.0

#: A typical Swiss commercial electricity tariff, CHF per kWh.
SWISS_TARIFF_PER_KWH = 0.21


def integrate_energy_kwh(series: TimeSeries) -> float:
    """Trapezoidal energy under a power trace, NaN samples skipped."""
    valid = series.valid()
    if len(valid) < 2:
        return 0.0
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    joules = float(trapezoid(valid.values, valid.timestamps))
    return joules / units.SECONDS_PER_HOUR / units.KILO


@dataclass(frozen=True)
class EnergyReport:
    """Energy/cost/emissions summary of one power trace."""

    label: str
    duration_s: float
    mean_power_w: float
    energy_kwh: float
    annualised_kwh: float
    cost_per_year: float
    co2e_kg_per_year: float

    def __str__(self) -> str:
        return (f"{self.label}: {self.mean_power_w:.0f} W mean, "
                f"{self.annualised_kwh:,.0f} kWh/yr, "
                f"{self.cost_per_year:,.0f} /yr, "
                f"{self.co2e_kg_per_year:,.0f} kgCO2e/yr")


def energy_report(series: TimeSeries, label: str = "",
                  tariff_per_kwh: float = SWISS_TARIFF_PER_KWH,
                  gco2_per_kwh: float = SWISS_GRID_GCO2_PER_KWH,
                  ) -> EnergyReport:
    """Build the full report for one power trace."""
    valid = series.valid()
    duration = valid.duration_s
    energy = integrate_energy_kwh(series)
    if duration > 0:
        annualised = energy * (365 * units.SECONDS_PER_DAY) / duration
        mean_power = energy * units.KILO * units.SECONDS_PER_HOUR / duration
    else:
        annualised = 0.0
        mean_power = valid.mean() if len(valid) else 0.0
    return EnergyReport(
        label=label,
        duration_s=duration,
        mean_power_w=mean_power,
        energy_kwh=energy,
        annualised_kwh=annualised,
        cost_per_year=annualised * tariff_per_kwh,
        co2e_kg_per_year=annualised * gco2_per_kwh / units.KILO)


def savings_report(saved_w: float, label: str = "savings",
                   tariff_per_kwh: float = SWISS_TARIFF_PER_KWH,
                   gco2_per_kwh: float = SWISS_GRID_GCO2_PER_KWH,
                   ) -> EnergyReport:
    """The yearly value of a constant power saving (Table 3/4 rows)."""
    if saved_w < 0:
        raise ValueError(f"savings must be >= 0, got {saved_w}")
    annualised = saved_w * 365 * 24 / units.KILO
    return EnergyReport(
        label=label, duration_s=365 * units.SECONDS_PER_DAY,
        mean_power_w=saved_w, energy_kwh=annualised,
        annualised_kwh=annualised,
        cost_per_year=annualised * tariff_per_kwh,
        co2e_kg_per_year=annualised * gco2_per_kwh / units.KILO)


def rank_routers(traces: Mapping[str, TimeSeries],
                 top: Optional[int] = None) -> List[EnergyReport]:
    """Routers by annualised energy, heaviest first.

    Routers whose telemetry is absent (all-NaN power) are skipped -- the
    ranking reflects what the monitoring actually shows, the paper's
    recurring caveat.
    """
    reports = []
    for hostname, series in traces.items():
        if len(series.valid()) < 2:
            continue
        reports.append(energy_report(series, label=hostname))
    reports.sort(key=lambda r: r.annualised_kwh, reverse=True)
    return reports[:top] if top is not None else reports
