"""Comparing the three power-data sources on the same device (§6.2).

For each externally-measured router the paper lines up, on a 30-minute
averaged time axis: (i) the PSU's self-reported power, (ii) the Autopower
external measurement (ground truth), and (iii) the power-model prediction
driven by the module inventory and the SNMP traffic counters.  The
questions are *precision* (does the shape track?) and *accuracy* (is
there an offset?) -- the paper's finding being that models are precise
with a constant offset, while PSU telemetry ranges from offset-but-precise
to useless.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import units
from repro.core.model import PowerModel
from repro.core.prediction import DeployedInterface, predict_trace
from repro.telemetry.snmp import RouterTrace
from repro.telemetry.traces import TimeSeries

#: Fig. 4's smoothing window.
AVERAGING_WINDOW_S = 30 * units.SECONDS_PER_MINUTE


def trace_to_interfaces(trace: RouterTrace,
                        ) -> Tuple[np.ndarray, List[DeployedInterface]]:
    """Counter traces + inventory -> the prediction pipeline's inputs.

    Returns the shared rate-timestamp grid and one
    :class:`DeployedInterface` per inventory-listed interface.  A router
    whose interfaces are all missing from the inventory still yields the
    grid (from its first counter trace) with an empty interface list, so
    the prediction downstream reports base power instead of silently
    producing an empty series.
    """
    raw: List[Tuple[str, str, List[np.ndarray]]] = []
    grid: Optional[np.ndarray] = None
    for name, iface in sorted(trace.interfaces.items()):
        trx_name = trace.inventory.get(name)
        if trx_name is None:
            continue
        rx_oct, tx_oct = iface.octet_rates()
        rx_pkt, tx_pkt = iface.packet_rates()
        if grid is None:
            grid = rx_oct.timestamps
        n = len(grid)

        def fit_grid(series: TimeSeries) -> np.ndarray:
            if len(series) == n:
                return series.values
            # Interfaces plugged mid-campaign have shorter traces; align
            # by padding the head with zeros (no traffic before plug-in).
            values = np.zeros(n)
            if len(series) > 0:
                values[n - len(series):] = series.values
            return values

        raw.append((name, trx_name, [fit_grid(rx_oct), fit_grid(tx_oct),
                                     fit_grid(rx_pkt), fit_grid(tx_pkt)]))
    if grid is None:
        # No inventory-listed interface: fall back to the first counter
        # trace's grid so base power still has a time axis.
        for _name, iface in sorted(trace.interfaces.items()):
            rx_oct, _tx_oct = iface.octet_rates()
            grid = rx_oct.timestamps
            break
        if grid is None:
            return np.array([]), []
        return grid, []

    # Poll intervals spanning a reboot yield NaN rates (counter reset);
    # a careful analyst excludes those samples rather than mistaking
    # them for idle interfaces, so we drop the affected time points.
    valid = np.ones(len(grid), dtype=bool)
    for _name, _trx, arrays in raw:
        for array in arrays:
            valid &= ~np.isnan(array)
    interfaces = [
        DeployedInterface(
            name=name, trx_name=trx_name,
            octet_rate_rx=arrays[0][valid], octet_rate_tx=arrays[1][valid],
            packet_rate_rx=arrays[2][valid], packet_rate_tx=arrays[3][valid])
        for name, trx_name, arrays in raw
    ]
    return grid[valid], interfaces


def predict_from_trace(model: PowerModel, trace: RouterTrace,
                       assume_unplugged_when_idle: bool = True) -> TimeSeries:
    """Model-predicted power series for one monitored router (§6.2)."""
    grid, interfaces = trace_to_interfaces(trace)
    if len(grid) == 0:
        return TimeSeries(np.array([]), np.array([]))
    values = predict_trace(
        model, interfaces,
        assume_unplugged_when_idle=assume_unplugged_when_idle,
        n_samples=len(grid))
    return TimeSeries(grid, values)


@dataclass(frozen=True)
class WindowedResiduals:
    """The Fig. 4 averaging/offset math on two aligned series.

    This is the §6.2 core shared by the offline comparison
    (:func:`compare_series`) and the live drift detector
    (:mod:`repro.monitor.drift`): both series bin-averaged onto the same
    ``window_s`` grid anchored at the later of the two start times, then
    the robust offset (median of the difference) and residual spread
    (1.4826 x MAD, the normal-consistent scale) of the overlap.
    """

    offset_w: float          # median(candidate - reference)
    residual_std_w: float    # robust spread of the offset-corrected diff
    n_windows: int           # averaged samples the stats are computed on
    #: The aligned, NaN-masked window averages the stats came from.
    candidate_avg: np.ndarray
    reference_avg: np.ndarray

    @property
    def empty(self) -> bool:
        """Whether the two series had no usable overlap."""
        return self.n_windows == 0


_EMPTY_WINDOWED = WindowedResiduals(
    offset_w=float("nan"), residual_std_w=float("nan"), n_windows=0,
    candidate_avg=np.array([]), reference_avg=np.array([]))


def windowed_residuals(candidate: TimeSeries, reference: TimeSeries,
                       window_s: float = AVERAGING_WINDOW_S,
                       ) -> WindowedResiduals:
    """Average two series onto a shared window grid and take residuals.

    The exact alignment recipe of Fig. 4: clip both series to their
    overlap, bin-average each onto ``window_s`` bins anchored at the
    overlap start, truncate to the shorter of the two, and drop windows
    where either side is NaN.
    """
    if len(candidate) == 0 or len(reference) == 0:
        return _EMPTY_WINDOWED
    t0 = max(candidate.timestamps[0], reference.timestamps[0])
    t1 = min(candidate.timestamps[-1], reference.timestamps[-1])
    if t1 <= t0:
        return _EMPTY_WINDOWED
    cand = candidate.slice(t0, t1 + 1).resample(window_s, t0=t0)
    ref = reference.slice(t0, t1 + 1).resample(window_s, t0=t0)
    n = min(len(cand), len(ref))
    c = cand.values[:n]
    r = ref.values[:n]
    mask = ~(np.isnan(c) | np.isnan(r))
    c, r = c[mask], r[mask]
    if len(c) == 0:
        return _EMPTY_WINDOWED
    diff = c - r
    offset = float(np.median(diff))
    # Robust spread: isolated artifacts (a reboot-spanning poll window,
    # a meter glitch) must not drown the precision assessment.
    residual_std = float(1.4826 * np.median(np.abs(diff - offset)))
    return WindowedResiduals(offset_w=offset, residual_std_w=residual_std,
                             n_windows=len(c), candidate_avg=c,
                             reference_avg=r)


class TelemetryVerdict(enum.Enum):
    """The paper's qualitative classification of a power data source."""

    TRUSTWORTHY = "precise and accurate"
    PRECISE_NOT_ACCURATE = "precise but offset"
    UNINFORMATIVE = "pseudo-constant / shape mismatch"
    ABSENT = "no data"


@dataclass(frozen=True)
class ComparisonStats:
    """How one candidate series relates to a reference (ground truth)."""

    offset_w: float          # median(candidate - reference)
    residual_std_w: float    # robust spread of the offset-corrected diff
    correlation: float       # Pearson r on the averaged, aligned series
    reference_std_w: float   # variability of the reference itself
    reference_level_w: float  # median level of the reference
    n_samples: int
    #: Variability of the candidate itself (flat-liner detection).
    candidate_std_w: float = float("nan")

    @property
    def precise(self) -> bool:
        """Shape tracks the reference.

        Either the correlation is strong, or the offset-corrected residual
        is small -- relative both to the reference's own variability and
        to its absolute level (two near-flat series that agree to a few
        tenths of a percent are precise even though correlation is
        meaningless on pure noise).
        """
        if self.n_samples < 4:
            return False
        if self.correlation > 0.8:
            return True
        # A flat-lining candidate against a visibly varying reference is
        # the pseudo-constant failure mode (Fig. 4b), whatever the
        # residual numbers say.
        if (np.isfinite(self.candidate_std_w)
                and self.reference_std_w > 0.3
                and self.candidate_std_w < 0.25 * self.reference_std_w):
            return False
        # The absolute floor reflects what no model can track: ambient
        # control-plane noise and the meter's own noise sit at a couple
        # of tenths of a watt, so agreement at that scale is precise.
        floor = max(0.5 * self.reference_std_w,
                    0.003 * abs(self.reference_level_w), 0.25)
        return self.residual_std_w < floor

    def accurate_within(self, threshold_w: float = 5.0) -> bool:
        """No constant offset to the reference beyond ``threshold_w``."""
        return abs(self.offset_w) < threshold_w

    def verdict(self) -> TelemetryVerdict:
        """The paper's qualitative label for this data source."""
        if self.n_samples == 0:
            return TelemetryVerdict.ABSENT
        if self.precise:
            if abs(self.offset_w) < 5.0:
                return TelemetryVerdict.TRUSTWORTHY
            return TelemetryVerdict.PRECISE_NOT_ACCURATE
        return TelemetryVerdict.UNINFORMATIVE


def compare_series(candidate: TimeSeries, reference: TimeSeries,
                   window_s: float = AVERAGING_WINDOW_S) -> ComparisonStats:
    """Align two series on a shared averaged grid and compare (Fig. 4)."""
    windowed = windowed_residuals(candidate, reference, window_s=window_s)
    if windowed.empty:
        return ComparisonStats(offset_w=float("nan"),
                               residual_std_w=float("nan"),
                               correlation=float("nan"),
                               reference_std_w=float("nan"),
                               reference_level_w=float("nan"), n_samples=0)
    c, r = windowed.candidate_avg, windowed.reference_avg
    if len(c) > 2 and np.std(c) > 1e-9 and np.std(r) > 1e-9:
        correlation = float(np.corrcoef(c, r)[0, 1])
    else:
        correlation = 0.0
    return ComparisonStats(offset_w=windowed.offset_w,
                           residual_std_w=windowed.residual_std_w,
                           correlation=correlation,
                           reference_std_w=float(np.std(r)),
                           reference_level_w=float(np.median(r)),
                           n_samples=windowed.n_windows,
                           candidate_std_w=float(np.std(c)))


@dataclass
class ValidationReport:
    """The full §6.2 comparison for one router."""

    hostname: str
    router_model: str
    psu_stats: Optional[ComparisonStats]
    model_stats: ComparisonStats
    autopower: TimeSeries
    psu_series: Optional[TimeSeries]
    model_series: TimeSeries

    def psu_verdict(self) -> TelemetryVerdict:
        """Verdict on the PSU telemetry (Q2)."""
        if self.psu_stats is None:
            return TelemetryVerdict.ABSENT
        return self.psu_stats.verdict()

    def model_verdict(self) -> TelemetryVerdict:
        """Verdict on the power-model prediction (Q3)."""
        return self.model_stats.verdict()

    def offset_corrected_model(self) -> TimeSeries:
        """The Fig. 9 view: the prediction shifted onto the measurement."""
        return self.model_series.shifted(-self.model_stats.offset_w)


def validate_router(hostname: str, trace: RouterTrace,
                    autopower: TimeSeries, model: PowerModel,
                    assume_unplugged_when_idle: bool = True,
                    ) -> ValidationReport:
    """Run the full three-way §6.2 comparison for one router."""
    psu_series = trace.power.valid()
    psu_stats = (compare_series(psu_series, autopower)
                 if len(psu_series) else None)
    model_series = predict_from_trace(
        model, trace, assume_unplugged_when_idle=assume_unplugged_when_idle)
    model_stats = compare_series(model_series, autopower)
    return ValidationReport(
        hostname=hostname, router_model=trace.router_model,
        psu_stats=psu_stats, model_stats=model_stats,
        autopower=autopower,
        psu_series=psu_series if len(psu_series) else None,
        model_series=model_series)
