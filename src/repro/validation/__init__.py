"""Validation of power data sources against external measurements (§6)."""

from repro.validation.summary import (
    SummaryRow,
    ValidationSummary,
)
from repro.validation.compare import (
    AVERAGING_WINDOW_S,
    ComparisonStats,
    TelemetryVerdict,
    ValidationReport,
    WindowedResiduals,
    compare_series,
    predict_from_trace,
    trace_to_interfaces,
    validate_router,
    windowed_residuals,
)

__all__ = [
    "SummaryRow",
    "ValidationSummary",
    "AVERAGING_WINDOW_S",
    "ComparisonStats",
    "TelemetryVerdict",
    "ValidationReport",
    "WindowedResiduals",
    "compare_series",
    "predict_from_trace",
    "trace_to_interfaces",
    "validate_router",
    "windowed_residuals",
]
