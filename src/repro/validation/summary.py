"""Fleet-level validation summaries (the §6 'Summary' box as data).

Turns a set of per-router :class:`ValidationReport` objects into the
aggregate statements the paper makes -- how many platforms have usable
PSU telemetry, how precise the models are overall, what the offsets look
like -- in a form the CLI and benches can print and tests can assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

import numpy as np

from repro.validation.compare import TelemetryVerdict, ValidationReport


@dataclass(frozen=True)
class SummaryRow:
    """One router's line in the summary table."""

    hostname: str
    router_model: str
    psu_verdict: TelemetryVerdict
    psu_offset_w: float
    model_verdict: TelemetryVerdict
    model_offset_w: float
    model_residual_w: float


@dataclass
class ValidationSummary:
    """The cross-router aggregation of a §6.2 study."""

    rows: List[SummaryRow] = field(default_factory=list)

    @classmethod
    def from_reports(cls, reports: Mapping[str, ValidationReport],
                     ) -> "ValidationSummary":
        """Summarise a hostname -> report mapping."""
        rows = []
        for report in reports.values():
            psu_offset = (report.psu_stats.offset_w
                          if report.psu_stats is not None else float("nan"))
            rows.append(SummaryRow(
                hostname=report.hostname,
                router_model=report.router_model,
                psu_verdict=report.psu_verdict(),
                psu_offset_w=psu_offset,
                model_verdict=report.model_verdict(),
                model_offset_w=report.model_stats.offset_w,
                model_residual_w=report.model_stats.residual_std_w))
        rows.sort(key=lambda r: r.hostname)
        return cls(rows=rows)

    # -- the paper's aggregate claims -----------------------------------------

    def psu_verdict_census(self) -> Dict[TelemetryVerdict, int]:
        """How many platforms fall into each PSU-telemetry class."""
        census: Dict[TelemetryVerdict, int] = {}
        for row in self.rows:
            census[row.psu_verdict] = census.get(row.psu_verdict, 0) + 1
        return census

    def models_all_precise(self) -> bool:
        """Q3's headline: every model prediction tracks the shape."""
        return all(row.model_verdict in (
            TelemetryVerdict.TRUSTWORTHY,
            TelemetryVerdict.PRECISE_NOT_ACCURATE)
            for row in self.rows)

    def psu_universally_trustworthy(self) -> bool:
        """Q2's headline (expected False): PSU telemetry can't be trusted
        across the board."""
        return all(row.psu_verdict == TelemetryVerdict.TRUSTWORTHY
                   for row in self.rows)

    def median_model_offset_w(self) -> float:
        """Central tendency of the model offsets (the constant error)."""
        offsets = [abs(row.model_offset_w) for row in self.rows
                   if np.isfinite(row.model_offset_w)]
        return float(np.median(offsets)) if offsets else float("nan")

    # -- rendering -------------------------------------------------------------

    def to_text(self) -> str:
        """A printable summary table."""
        lines = [
            f"{'router':14s} {'model':20s} {'PSU telemetry':26s} "
            f"{'model prediction':26s} {'offset':>8s}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.hostname:14s} {row.router_model:20s} "
                f"{row.psu_verdict.value:26s} "
                f"{row.model_verdict.value:26s} "
                f"{row.model_offset_w:+7.1f} W")
        census = self.psu_verdict_census()
        census_text = ", ".join(
            f"{verdict.value}: {count}"
            for verdict, count in sorted(census.items(),
                                         key=lambda kv: kv[0].value))
        lines.append(f"PSU telemetry census -- {census_text}")
        lines.append(
            f"models precise on all routers: {self.models_all_precise()}; "
            f"median |offset| {self.median_model_offset_w():.1f} W")
        return "\n".join(lines)
