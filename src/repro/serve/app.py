"""The ``netpower serve`` HTTP server (stdlib ``asyncio`` only).

A deliberately small HTTP/1.1 implementation: request line + headers
via ``readuntil``, body via ``readexactly(Content-Length)``,
keep-alive by default.  Endpoints:

========  ======  ==================================================
path      method  behaviour
========  ======  ==================================================
/healthz  GET     liveness (200 as soon as the socket is bound)
/readyz   GET     readiness (503 until models + fleet are loaded)
/metrics  GET     Prometheus text from the obs registry (404 if off)
/fleet    GET     the warmed fleet snapshot with attribution block
/predict  POST    per-router + fleet power from posted rates
/whatif   POST    admin-state / link-sleep counterfactual deltas
========  ======  ==================================================

``/predict`` classifies each router entry: a full cache hit is served
from the cheap tier, anything else goes through the per-tick batcher
(:mod:`repro.serve.batching`) and back-fills the cache.  The two
tiers are bit-equal, so the response *bytes* never depend on the
route taken; the route is reported in the ``X-Netpower-Tier`` header
(``cached``, ``full``, or ``mixed``).
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.ioutil import atomic_write_text
from repro.obs import metrics
from repro.obs.export import render_prometheus
from repro.serve.batching import PredictBatcher
from repro.serve.cache import DEFAULT_CAPACITY, PredictionCache
from repro.serve.schemas import (DEFAULT_OCTET_QUANTUM,
                                 DEFAULT_PACKET_QUANTUM, SERVE_SCHEMA,
                                 RequestError, canonical_json, error_body,
                                 parse_predict_request,
                                 parse_whatif_request, predict_response)
from repro.serve.state import FleetService

#: Largest accepted request body.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Stream buffer limit (headers must fit well within this).
STREAM_LIMIT = 1024 * 1024

M_REQUESTS = metrics.counter(
    "netpower_serve_requests_total",
    "HTTP requests served, by endpoint and status.",
    labels=("endpoint", "status"))
M_TIER = metrics.counter(
    "netpower_serve_predict_tier_total",
    "Predict router entries by serving tier.",
    labels=("tier",))
M_LATENCY = metrics.histogram(
    "netpower_serve_request_seconds",
    "Wall-clock request handling latency.",
    labels=("endpoint",))
M_READY = metrics.gauge(
    "netpower_serve_ready",
    "1 once the fleet and models are loaded.")
M_CONNECTIONS = metrics.gauge(
    "netpower_serve_open_connections",
    "Currently open client connections.")


@dataclass
class ServeConfig:
    """Everything ``netpower serve`` needs to boot."""

    preset: str = "synth-200"
    seed: int = 42
    host: str = "127.0.0.1"
    port: int = 8080
    warmup_steps: int = 8
    warmup_step_s: float = 300.0
    octet_quantum: float = DEFAULT_OCTET_QUANTUM
    packet_quantum: float = DEFAULT_PACKET_QUANTUM
    cache_capacity: int = DEFAULT_CAPACITY
    metrics_enabled: bool = True
    snapshot_out: Optional[str] = None


class NetpowerServer:
    """One serving process: load task, batcher, and the HTTP loop."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.cache = PredictionCache(capacity=config.cache_capacity)
        self.service: Optional[FleetService] = None
        self.batcher: Optional[PredictBatcher] = None
        self.load_error: Optional[str] = None
        self._ready = asyncio.Event()
        self._stop = asyncio.Event()
        self._whatif_lock = asyncio.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._load_task: Optional["asyncio.Task[None]"] = None
        self.bound_port: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, then begin loading the fleet off-loop."""
        config = self.config
        self._server = await asyncio.start_server(
            self._handle_client, host=config.host, port=config.port,
            limit=STREAM_LIMIT)
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.bound_port = sock.getsockname()[1]
            break
        # Keep the handle: a task the loop holds no strong reference
        # to can be garbage-collected mid-flight, and shutdown() needs
        # something to cancel if loading is still underway.
        self._load_task = \
            asyncio.get_running_loop().create_task(self._load())

    async def _load(self) -> None:
        config = self.config
        loop = asyncio.get_running_loop()
        try:
            service = await loop.run_in_executor(
                None, lambda: FleetService.load(
                    config.preset, config.seed,
                    warmup_steps=config.warmup_steps,
                    warmup_step_s=config.warmup_step_s))
        except Exception as exc:
            self.load_error = f"{type(exc).__name__}: {exc}"
            self._stop.set()
            return
        self.service = service
        self.batcher = PredictBatcher(service.models)
        self.batcher.start()
        if config.snapshot_out:
            # Disk I/O stays off-loop: the snapshot can be megabytes,
            # and /healthz must keep answering while it lands.
            await loop.run_in_executor(
                None, atomic_write_text, config.snapshot_out,
                canonical_json(service.fleet_doc).decode())
        M_READY.set(1.0)
        self._ready.set()

    async def run_until_stopped(self) -> int:
        """Serve until a signal or fatal load error; returns exit code."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._stop.set)
            except NotImplementedError:  # non-Unix event loops
                pass
        await self._stop.wait()
        await self.shutdown()
        return 1 if self.load_error else 0

    def request_stop(self) -> None:
        """Ask the serve loop to exit (test hook and /shutdown-free)."""
        self._stop.set()

    async def shutdown(self) -> None:
        """Close the listener, stop the loader, drain the batcher."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._load_task is not None:
            if not self._load_task.done():
                self._load_task.cancel()
            try:
                await self._load_task
            except asyncio.CancelledError:
                pass
            self._load_task = None
        if self.batcher is not None:
            await self.batcher.stop()
        M_READY.set(0.0)

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        M_CONNECTIONS.inc()
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionResetError, BrokenPipeError):
            pass
        finally:
            M_CONNECTIONS.dec()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> bool:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise
            return False  # clean EOF between requests
        request_line, _, header_block = head.partition(b"\r\n")
        try:
            method, target, _version = \
                request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._respond(writer, 400, error_body("bad request line"),
                                endpoint="<bad>", started=time.perf_counter())
            return False
        headers = self._parse_headers(header_block)
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            await self._respond(writer, 413, error_body("body too large"),
                                endpoint=target, started=time.perf_counter())
            return False
        body = await reader.readexactly(length) if length else b""
        started = time.perf_counter()
        path = target.split("?", 1)[0]
        status, payload, content_type, extra = await self._route(
            method, path, body)
        keep_alive = headers.get("connection", "").lower() != "close"
        await self._respond(writer, status, payload, endpoint=path,
                            started=started, content_type=content_type,
                            keep_alive=keep_alive, extra=extra)
        return keep_alive

    @staticmethod
    def _parse_headers(block: bytes) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        for line in block.split(b"\r\n"):
            if not line:
                continue
            name, _, value = line.partition(b":")
            headers[name.decode("latin-1").strip().lower()] = \
                value.decode("latin-1").strip()
        return headers

    _REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                500: "Internal Server Error", 503: "Service Unavailable"}

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: bytes, endpoint: str, started: float,
                       content_type: str = "application/json",
                       keep_alive: bool = True,
                       extra: Tuple[Tuple[str, str], ...] = ()) -> None:
        reason = self._REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(payload)}",
                 f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        lines.extend(f"{name}: {value}" for name, value in extra)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
        M_REQUESTS.labels(endpoint=endpoint, status=str(status)).inc()
        M_LATENCY.labels(endpoint=endpoint).observe(
            time.perf_counter() - started)

    # -- routing ------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes
                     ) -> Tuple[int, bytes, str,
                                Tuple[Tuple[str, str], ...]]:
        json_type = "application/json"
        if path == "/healthz":
            if method != "GET":
                return 405, error_body("GET only"), json_type, ()
            return 200, canonical_json(
                {"schema": SERVE_SCHEMA, "kind": "health",
                 "ok": True}), json_type, ()
        if path == "/readyz":
            if method != "GET":
                return 405, error_body("GET only"), json_type, ()
            if self.load_error:
                return 503, error_body(self.load_error), json_type, ()
            ready = self._ready.is_set()
            return (200 if ready else 503), canonical_json(
                {"schema": SERVE_SCHEMA, "kind": "ready",
                 "ready": ready}), json_type, ()
        if path == "/metrics":
            if method != "GET":
                return 405, error_body("GET only"), json_type, ()
            registry = metrics.get_registry()
            if registry is None:
                return 404, error_body("metrics disabled"), json_type, ()
            text = render_prometheus(registry)
            return 200, text.encode(), "text/plain; version=0.0.4", ()
        if path == "/fleet":
            if method != "GET":
                return 405, error_body("GET only"), json_type, ()
            if not self._ready.is_set():
                return 503, error_body("fleet still loading"), json_type, ()
            assert self.service is not None
            return 200, canonical_json(self.service.fleet_doc), \
                json_type, ()
        if path == "/predict":
            if method != "POST":
                return 405, error_body("POST only"), json_type, ()
            return await self._predict(body)
        if path == "/whatif":
            if method != "POST":
                return 405, error_body("POST only"), json_type, ()
            return await self._whatif(body)
        return 404, error_body(f"no such endpoint {path}"), json_type, ()

    # -- /predict -----------------------------------------------------------

    async def _predict(self, body: bytes
                       ) -> Tuple[int, bytes, str,
                                  Tuple[Tuple[str, str], ...]]:
        json_type = "application/json"
        if not self._ready.is_set():
            return 503, error_body("models still loading"), json_type, ()
        assert self.service is not None and self.batcher is not None
        try:
            request = parse_predict_request(
                _load_json(body),
                octet_quantum=self.config.octet_quantum,
                packet_quantum=self.config.packet_quantum)
        except RequestError as exc:
            return 400, error_body(str(exc)), json_type, ()
        models = self.service.models
        for query in request.routers:
            if query.router_model not in models:
                return 400, error_body(
                    f"no power model for router model "
                    f"{query.router_model!r}"), json_type, ()
        tiers: List[str] = []
        powers: List[Optional[float]] = [None] * len(request.routers)
        submitted = []
        for index, query in enumerate(request.routers):
            model = models[query.router_model]
            cached = self.cache.lookup(query, model)
            if cached is not None:
                powers[index] = cached
                tiers.append("cached")
                M_TIER.labels(tier="cached").inc()
            else:
                submitted.append(
                    (index, query, self.batcher.submit(query)))
                tiers.append("full")
                M_TIER.labels(tier="full").inc()
        for index, query, awaitable in submitted:
            powers[index] = await awaitable
            self.cache.insert(query, models[query.router_model])
        entries = []
        fleet_power = 0.0
        for query, power in zip(request.routers, powers):
            assert power is not None
            fleet_power = fleet_power + power
            entries.append({
                "router_model": query.router_model,
                "power_w": power,
                "n_interfaces": len(query.interfaces),
                "unresolved_interfaces":
                    len(query.interfaces) - len(query.resolved),
            })
        tier = tiers[0] if len(set(tiers)) == 1 else "mixed"
        return 200, canonical_json(
            predict_response(entries, fleet_power)), json_type, \
            (("X-Netpower-Tier", tier),)

    # -- /whatif ------------------------------------------------------------

    async def _whatif(self, body: bytes
                      ) -> Tuple[int, bytes, str,
                                 Tuple[Tuple[str, str], ...]]:
        json_type = "application/json"
        if not self._ready.is_set():
            return 503, error_body("fleet still loading"), json_type, ()
        assert self.service is not None
        try:
            request = parse_whatif_request(_load_json(body))
        except RequestError as exc:
            return 400, error_body(str(exc)), json_type, ()
        async with self._whatif_lock:
            loop = asyncio.get_running_loop()
            try:
                document = await loop.run_in_executor(
                    None, self.service.whatif, request)
            except RequestError as exc:
                return 400, error_body(str(exc)), json_type, ()
        return 200, canonical_json(document), json_type, ()


def _load_json(body: bytes) -> object:
    """Parse a request body, mapping failures to :class:`RequestError`."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestError(f"invalid JSON body: {exc}") from None


async def serve_forever(config: ServeConfig,
                        announce: Callable[[str], None] = print) -> int:
    """Boot a :class:`NetpowerServer` and run until stopped."""
    server = NetpowerServer(config)
    await server.start()
    announce(f"netpower serve: listening on "
             f"http://{config.host}:{server.bound_port} "
             f"(preset {config.preset}, seed {config.seed})")
    return await server.run_until_stopped()
