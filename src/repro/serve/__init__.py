"""``netpower serve``: the async fleet-power query service.

The package turns the batch prediction stack into a long-running
HTTP+JSON service (stdlib ``asyncio`` only):

* :mod:`repro.serve.schemas` -- request/response documents, canonical
  JSON, and rate quantisation (``repro.serve/v1``);
* :mod:`repro.serve.cache` -- the cheap tier: per-interface-class
  contribution cache keyed on class + quantised rates;
* :mod:`repro.serve.batching` -- the full tier: per-event-loop-tick
  batching of structurally identical requests into one
  :func:`~repro.core.prediction.predict_trace` matrix call;
* :mod:`repro.serve.state` -- fleet loading, lab-model derivation,
  the warmup simulation behind ``/fleet``, and what-if evaluation on
  the vector engine;
* :mod:`repro.serve.app` -- the HTTP server and endpoint routing.

Both tiers are bit-equal by construction and every response is
byte-deterministic for identical request bodies.
"""

from repro.serve.app import NetpowerServer, ServeConfig
from repro.serve.schemas import SERVE_SCHEMA

__all__ = ["NetpowerServer", "ServeConfig", "SERVE_SCHEMA"]
