"""Request/response documents for the ``repro.serve/v1`` wire format.

Everything the server emits is canonical JSON: keys sorted, compact
separators, one trailing newline.  Two properties follow:

* **Byte determinism** -- the same request body always renders the
  same response bytes, across restarts and regardless of which tier
  (cached or full) evaluated it.  Tier information therefore never
  enters a body; it travels in the ``X-Netpower-Tier`` header.
* **Schema stamping** -- every body carries ``"schema":
  "repro.serve/v1"`` so clients can reject version skew.

Rates are quantised *at admission*, before either tier sees them, so
the cache key and the matrix column are derived from exactly the same
floats.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.activity import ACTIVE_PPS_THRESHOLD
from repro.core.model import InterfaceClassKey
from repro.core.prediction import resolve_class_key

#: The wire-format version stamped into every response body.
SERVE_SCHEMA = "repro.serve/v1"

#: Default admission quanta: rates are snapped to this grid before
#: evaluation so near-identical polls share a cache entry.
DEFAULT_OCTET_QUANTUM = 125.0   # bytes/s, i.e. 1 kbit/s
DEFAULT_PACKET_QUANTUM = 1.0    # packets/s


class RequestError(ValueError):
    """A malformed request body; rendered as an HTTP 400."""


def canonical_json(document: Dict) -> bytes:
    """The one true rendering: sorted keys, compact, newline-terminated."""
    return (json.dumps(document, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def error_body(message: str) -> bytes:
    """A schema-stamped error document."""
    return canonical_json({"schema": SERVE_SCHEMA, "kind": "error",
                           "error": message})


def quantize(value: float, quantum: float) -> float:
    """Snap ``value`` to the admission grid (identity when disabled)."""
    if quantum <= 0.0:
        return float(value)
    return round(value / quantum) * quantum


def _number(raw: object, what: str) -> float:
    """A finite, non-negative JSON number or a :class:`RequestError`."""
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise RequestError(f"{what} must be a number")
    value = float(raw)
    if value != value or value in (float("inf"), float("-inf")):
        raise RequestError(f"{what} must be finite")
    if value < 0:
        raise RequestError(f"{what} must be non-negative")
    return value


@dataclass(frozen=True)
class InterfaceQuery:
    """One canonicalised interface of a ``/predict`` router entry.

    ``oct_rate`` / ``pkt_rate`` are the two-direction sums of the
    quantised per-direction rates -- the only traffic numbers the
    power model consumes.  ``sort_key`` orders members canonically so
    the float fold order is a pure function of the request content.
    """

    name: str
    trx_name: str
    speed_gbps: Optional[float]
    class_key: Optional[InterfaceClassKey]
    oct_rx: float
    oct_tx: float
    pkt_rx: float
    pkt_tx: float

    @property
    def oct_rate(self) -> float:
        """Two-direction octet rate (bytes/s)."""
        return self.oct_rx + self.oct_tx

    @property
    def pkt_rate(self) -> float:
        """Two-direction packet rate (packets/s)."""
        return self.pkt_rx + self.pkt_tx

    @property
    def sort_key(self) -> Tuple:
        """Canonical member order: resolved class first, then name."""
        if self.class_key is None:
            return (1, "", "", 0.0, self.name)
        return (0, self.class_key.port_type, self.class_key.reach,
                self.class_key.speed_gbps, self.name)


@dataclass(frozen=True)
class RouterQuery:
    """One canonicalised router entry of a ``/predict`` request."""

    router_model: str
    interfaces: Tuple[InterfaceQuery, ...]
    assume_unplugged_when_idle: bool
    active_pps_threshold: float

    @property
    def resolved(self) -> Tuple[InterfaceQuery, ...]:
        """The members that actually contribute (known class, in order)."""
        return tuple(i for i in self.interfaces if i.class_key is not None)

    @property
    def signature(self) -> Tuple:
        """The batching group key.

        Two router entries with the same signature evaluate as columns
        of one matrix: same model, same flags, and the same multiset of
        interface classes in the same canonical order, so every member
        row and every group fold aligns bit-for-bit.
        """
        classes = tuple(i.class_key for i in self.resolved)
        return (self.router_model, self.assume_unplugged_when_idle,
                self.active_pps_threshold, classes)


@dataclass(frozen=True)
class PredictRequest:
    """A parsed, canonicalised ``/predict`` request."""

    routers: Tuple[RouterQuery, ...] = field(default_factory=tuple)


def parse_predict_request(document: object,
                          octet_quantum: float = DEFAULT_OCTET_QUANTUM,
                          packet_quantum: float = DEFAULT_PACKET_QUANTUM,
                          max_routers: int = 1024,
                          max_interfaces: int = 4096) -> PredictRequest:
    """Validate, quantise, and canonicalise a ``/predict`` body.

    Canonicalisation sorts each router's interfaces by (resolved
    class, name): group order and member fold order then depend only
    on the request *content*, never on arrival order -- the keystone
    of the cached-tier == full-tier bit-equality contract.
    """
    if not isinstance(document, dict):
        raise RequestError("body must be a JSON object")
    routers_raw = document.get("routers")
    if not isinstance(routers_raw, list) or not routers_raw:
        raise RequestError("'routers' must be a non-empty array")
    if len(routers_raw) > max_routers:
        raise RequestError(f"at most {max_routers} routers per request")
    unplugged = document.get("assume_unplugged_when_idle", True)
    if not isinstance(unplugged, bool):
        raise RequestError("'assume_unplugged_when_idle' must be a boolean")

    routers: List[RouterQuery] = []
    for r, entry in enumerate(routers_raw):
        if not isinstance(entry, dict):
            raise RequestError(f"routers[{r}] must be an object")
        model_name = entry.get("router_model")
        if not isinstance(model_name, str) or not model_name:
            raise RequestError(f"routers[{r}].router_model must be a string")
        ifaces_raw = entry.get("interfaces", [])
        if not isinstance(ifaces_raw, list):
            raise RequestError(f"routers[{r}].interfaces must be an array")
        if len(ifaces_raw) > max_interfaces:
            raise RequestError(
                f"at most {max_interfaces} interfaces per router")
        members: List[InterfaceQuery] = []
        for i, iface in enumerate(ifaces_raw):
            where = f"routers[{r}].interfaces[{i}]"
            if not isinstance(iface, dict):
                raise RequestError(f"{where} must be an object")
            trx = iface.get("trx")
            if not isinstance(trx, str) or not trx:
                raise RequestError(f"{where}.trx must be a string")
            speed = iface.get("speed_gbps")
            if speed is not None:
                speed = _number(speed, f"{where}.speed_gbps")
            name = iface.get("name", f"if{i}")
            if not isinstance(name, str):
                raise RequestError(f"{where}.name must be a string")
            members.append(InterfaceQuery(
                name=name, trx_name=trx, speed_gbps=speed,
                class_key=resolve_class_key(trx, speed),
                oct_rx=quantize(_number(iface.get("octet_rate_rx", 0.0),
                                        f"{where}.octet_rate_rx"),
                                octet_quantum),
                oct_tx=quantize(_number(iface.get("octet_rate_tx", 0.0),
                                        f"{where}.octet_rate_tx"),
                                octet_quantum),
                pkt_rx=quantize(_number(iface.get("packet_rate_rx", 0.0),
                                        f"{where}.packet_rate_rx"),
                                packet_quantum),
                pkt_tx=quantize(_number(iface.get("packet_rate_tx", 0.0),
                                        f"{where}.packet_rate_tx"),
                                packet_quantum)))
        members.sort(key=lambda m: m.sort_key)
        routers.append(RouterQuery(
            router_model=model_name, interfaces=tuple(members),
            assume_unplugged_when_idle=unplugged,
            active_pps_threshold=ACTIVE_PPS_THRESHOLD))
    return PredictRequest(routers=tuple(routers))


def predict_response(entries: List[Dict], fleet_power_w: float) -> Dict:
    """The ``/predict`` response document (tier-free by contract)."""
    return {"schema": SERVE_SCHEMA, "kind": "predict",
            "fleet_power_w": fleet_power_w, "routers": entries}


@dataclass(frozen=True)
class WhatIfChange:
    """One admin-state toggle of a ``/whatif`` request."""

    hostname: str
    port_index: int
    admin_up: bool


@dataclass(frozen=True)
class WhatIfRequest:
    """A parsed ``/whatif`` body: explicit toggles plus link sleeps."""

    changes: Tuple[WhatIfChange, ...]
    sleep_links: Tuple[int, ...]


def parse_whatif_request(document: object,
                         max_changes: int = 4096) -> WhatIfRequest:
    """Validate a ``/whatif`` body."""
    if not isinstance(document, dict):
        raise RequestError("body must be a JSON object")
    changes_raw = document.get("changes", [])
    links_raw = document.get("sleep_links", [])
    if not isinstance(changes_raw, list):
        raise RequestError("'changes' must be an array")
    if not isinstance(links_raw, list):
        raise RequestError("'sleep_links' must be an array")
    if not changes_raw and not links_raw:
        raise RequestError("need at least one change or sleep_links entry")
    if len(changes_raw) + len(links_raw) > max_changes:
        raise RequestError(f"at most {max_changes} changes per request")
    changes: List[WhatIfChange] = []
    for c, entry in enumerate(changes_raw):
        if not isinstance(entry, dict):
            raise RequestError(f"changes[{c}] must be an object")
        hostname = entry.get("hostname")
        if not isinstance(hostname, str) or not hostname:
            raise RequestError(f"changes[{c}].hostname must be a string")
        port_index = entry.get("port_index")
        if isinstance(port_index, bool) or not isinstance(port_index, int) \
                or port_index < 0:
            raise RequestError(
                f"changes[{c}].port_index must be a non-negative integer")
        admin_up = entry.get("admin_up")
        if not isinstance(admin_up, bool):
            raise RequestError(f"changes[{c}].admin_up must be a boolean")
        changes.append(WhatIfChange(hostname=hostname,
                                    port_index=port_index,
                                    admin_up=admin_up))
    links: List[int] = []
    for j, raw in enumerate(links_raw):
        if isinstance(raw, bool) or not isinstance(raw, int) or raw < 0:
            raise RequestError(
                f"sleep_links[{j}] must be a non-negative integer")
        links.append(raw)
    return WhatIfRequest(changes=tuple(changes), sleep_links=tuple(links))
