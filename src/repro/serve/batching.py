"""The full tier: per-event-loop-tick matrix batching.

Router entries that miss the cache are queued; once per event-loop
tick the batcher drains the queue, groups entries by
:attr:`~repro.serve.schemas.RouterQuery.signature`, and evaluates each
group as **one** :func:`~repro.core.prediction.predict_trace` call
whose sample axis is the batch -- column ``k`` is request ``k``.

Bit-determinism across batch widths
-----------------------------------

numpy's ``sum(axis=0)`` over a C-contiguous ``(members, K)`` matrix is
a sequential row fold for ``K >= 2`` but switches to pairwise
summation when ``K == 1`` -- which would make a request's floats
depend on who else arrived in the same tick.  The batcher therefore
pads every single-entry batch with a duplicate column so the fold is
*always* the ``K >= 2`` sequential one; a column is then a pure
function of its own entry, and the cheap tier's scalar fold
(:mod:`repro.serve.cache`) reproduces it bit-for-bit.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import PowerModel
from repro.core.prediction import DeployedInterface, predict_trace
from repro.obs import metrics
from repro.serve.schemas import RouterQuery

M_BATCH_SIZE = metrics.histogram(
    "netpower_serve_batch_size",
    "Router entries per full-tier flush batch.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024))
M_GROUPS = metrics.counter(
    "netpower_serve_batch_groups_total",
    "Signature groups evaluated (one matrix call each).")


def evaluate_group(model: PowerModel,
                   entries: List[RouterQuery]) -> List[float]:
    """One matrix call for a batch of structurally identical entries."""
    first = entries[0]
    members = first.resolved
    n = len(entries)
    padded = entries if n >= 2 else entries + [entries[0]]
    if not members:
        values = predict_trace(
            model, [],
            assume_unplugged_when_idle=first.assume_unplugged_when_idle,
            active_pps_threshold=first.active_pps_threshold,
            n_samples=len(padded))
        return [float(v) for v in values[:n]]
    interfaces = []
    for j, member in enumerate(members):
        columns = [entry.resolved[j] for entry in padded]
        interfaces.append(DeployedInterface(
            name=f"m{j}", trx_name=member.trx_name,
            octet_rate_rx=np.array([c.oct_rx for c in columns]),
            octet_rate_tx=np.array([c.oct_tx for c in columns]),
            packet_rate_rx=np.array([c.pkt_rx for c in columns]),
            packet_rate_tx=np.array([c.pkt_tx for c in columns]),
            speed_gbps=member.speed_gbps))
    values = predict_trace(
        model, interfaces,
        assume_unplugged_when_idle=first.assume_unplugged_when_idle,
        active_pps_threshold=first.active_pps_threshold)
    return [float(v) for v in values[:n]]


class PredictBatcher:
    """Collects full-tier entries and flushes them once per tick."""

    def __init__(self, models: Dict[str, PowerModel]):
        self.models = models
        self._pending: List[Tuple[RouterQuery, asyncio.Future]] = []
        self._task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        #: Batch sizes flushed so far (for the metrics histogram).
        self.flushed_batches = 0
        self.flushed_entries = 0

    def start(self) -> None:
        """Spawn the flush task on the running loop."""
        self._wake = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Cancel the flush task and fail any stranded waiters."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for _entry, future in self._pending:
            if not future.done():
                future.cancel()
        self._pending.clear()

    async def submit(self, query: RouterQuery) -> float:
        """Queue one router entry; resolves to its power in watts."""
        future: asyncio.Future = \
            asyncio.get_running_loop().create_future()
        self._pending.append((query, future))
        assert self._wake is not None, "batcher not started"
        self._wake.set()
        return await future

    async def _run(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            # Yield once so every coroutine runnable this tick gets to
            # enqueue before the flush -- that is what makes the batch
            # "per event-loop tick" rather than "first come alone".
            await asyncio.sleep(0)
            while self._pending:
                batch, self._pending = self._pending, []
                self._flush(batch)
                await asyncio.sleep(0)

    def _flush(self,
               batch: List[Tuple[RouterQuery, asyncio.Future]]) -> None:
        M_BATCH_SIZE.observe(len(batch))
        groups: Dict[Tuple, List[Tuple[RouterQuery, asyncio.Future]]] = {}
        for query, future in batch:
            if future.done():
                continue
            groups.setdefault(query.signature, []).append((query, future))
        for signature, entries in groups.items():
            model = self.models.get(signature[0])
            queries = [query for query, _future in entries]
            try:
                if model is None:
                    raise KeyError(
                        f"no power model for router model "
                        f"{signature[0]!r}")
                values = evaluate_group(model, queries)
            except Exception as exc:  # surface to every waiter
                for _query, future in entries:
                    if not future.done():
                        future.set_exception(exc)
                continue
            M_GROUPS.inc()
            self.flushed_batches += 1
            self.flushed_entries += len(entries)
            for (_query, future), value in zip(entries, values):
                if not future.done():
                    future.set_result(value)
