"""The cheap tier: a per-interface-class prediction cache.

A cache entry is the scalar power contribution of one interface --
``(router model, resolved class, flags, quantised two-direction
rates) -> watts`` -- computed with exactly the IEEE operation sequence
:func:`~repro.core.prediction.predict_trace` applies elementwise to a
matrix column.  Assembly then replays the matrix call's reduction
order (a sequential row fold per class group, groups in canonical
order, base power first), so a cache-served response is bit-equal to
the full tier's.  See :mod:`repro.serve.batching` for why the fold is
sequential.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import units
from repro.activity import prediction_active
from repro.core.model import PowerModel
from repro.serve.schemas import InterfaceQuery, RouterQuery

#: Cache capacity (entries); least-recently-used beyond this.
DEFAULT_CAPACITY = 65536


def member_contribution(model: PowerModel, member: InterfaceQuery,
                        assume_unplugged_when_idle: bool,
                        active_pps_threshold: float) -> float:
    """One interface's scalar power term, matrix-bit-equal.

    Mirrors the elementwise expression inside ``predict_trace`` --
    same operand order, same IEEE doubles -- evaluated at this
    member's quantised rates.
    """
    iface_model = model.interface_model(member.class_key)
    octets = member.oct_rate
    packets = member.pkt_rate
    bps = units.BITS_PER_BYTE * (
        octets + units.ETHERNET_OVERHEAD_BYTES * packets)
    pps = packets
    if prediction_active(pps, active_pps_threshold):
        return (iface_model.p_trx_in_w.value + iface_model.p_port_w.value
                + iface_model.p_trx_up_w.value
                + iface_model.p_offset_w.value
                + iface_model.e_bit_j * bps + iface_model.e_pkt_j * pps)
    if assume_unplugged_when_idle:
        return 0.0
    return iface_model.p_trx_in_w.value


def _member_key(query: RouterQuery, member: InterfaceQuery) -> Tuple:
    """The cache key of one resolved member.

    Rates enter as their exact float bit patterns (``hex()``): the
    quantised sums are all the model consumes, so two differently
    split but equal-sum polls share an entry.
    """
    return (query.router_model, query.assume_unplugged_when_idle,
            query.active_pps_threshold, member.class_key,
            member.oct_rate.hex(), member.pkt_rate.hex())


class PredictionCache:
    """LRU cache of per-member contributions with fold-order assembly."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, query: RouterQuery,
               model: PowerModel) -> Optional[float]:
        """The router's power if *every* member is cached, else ``None``.

        Replays the full tier's float fold: start from base power,
        then add each class group's sequential member fold in
        canonical group order.  A single missing member routes the
        whole entry to the full tier (which back-fills the cache).
        """
        members = query.resolved
        keys = [_member_key(query, m) for m in members]
        if any(key not in self._entries for key in keys):
            self.misses += 1
            return None
        self.hits += 1
        # Group members by class in first-appearance (canonical) order,
        # exactly like predict_trace's grouping dict.
        groups: Dict[object, list] = {}
        for member, key in zip(members, keys):
            value = self._entries[key]
            self._entries.move_to_end(key)
            groups.setdefault(member.class_key, []).append(value)
        total = float(model.p_base_w.value)
        for values in groups.values():
            group_sum = values[0]
            for value in values[1:]:
                group_sum = group_sum + value
            total = total + group_sum
        return total

    def insert(self, query: RouterQuery, model: PowerModel) -> None:
        """Back-fill every member contribution after a full-tier eval."""
        for member in query.resolved:
            key = _member_key(query, member)
            if key in self._entries:
                self._entries.move_to_end(key)
                continue
            self._entries[key] = member_contribution(
                model, member, query.assume_unplugged_when_idle,
                query.active_pps_threshold)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
