"""Server-side fleet state: models, warmup simulation, what-if engine.

Loading happens once at startup (the ``/readyz`` 503 window):

1. generate the synth fleet for the configured preset;
2. derive a quick lab power model per distinct platform in the fleet
   (the same orchestrator pipeline as ``netpower zoo``, shortened);
3. run a short warmup simulation with attribution to produce the
   ``/fleet`` snapshot document;
4. build a :class:`~repro.network.engine.FleetState` over the warmed
   fleet for ``/whatif`` vector-engine evaluation.

Everything is seeded, so two servers loaded with the same preset and
seed serve byte-identical ``/fleet`` documents and what-if deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import units
from repro.core import derive_power_model
from repro.core.model import PowerModel
from repro.hardware import TRANSCEIVER_CATALOG, VirtualRouter, router_spec
from repro.lab import ExperimentPlan, Orchestrator
from repro.network import (FleetTrafficModel, NetworkSimulation,
                           generate_synth_network, synth_config)
from repro.network.engine import FleetState
from repro.serve.schemas import SERVE_SCHEMA, RequestError, WhatIfRequest

#: Preferred lab module per port form factor for quick derivations.
DEFAULT_TRX_BY_PORT = {
    "QSFP-DD": "QSFP-DD-400G-DAC",
    "QSFP28": "QSFP28-100G-DAC",
    "QSFP": "QSFP-100G-DAC",
    "SFP28": "SFP28-25G-DAC",
    "SFP+": "SFP+-10G-DAC",
    "SFP": "SFP-1G-LX",
    "RJ45": "RJ45-1G-T",
}

#: The pair-count ladder quick derivations try per port type.
_PAIR_LADDER = (1, 2, 4)

#: Utilisation fractions swept per rate point.
_RATE_FRACTIONS = (0.2, 0.5, 0.95)

#: Rates above this are clamped to it (the lab generator's ceiling).
_MAX_LAB_RATE_GBPS = 100.0


def quick_lab_model(model_name: str, seed: int) -> Optional[PowerModel]:
    """A shortened lab derivation for one platform.

    One experiment suite per distinct port form factor, using the
    preferred DAC/optic for that form factor and a pair ladder trimmed
    to what the platform physically offers.  Returns ``None`` when no
    port type yields at least two feasible pair counts (nothing to
    regress on).
    """
    spec = router_spec(model_name)
    rng = np.random.default_rng(seed)
    dut = VirtualRouter(spec, rng=rng, noise_std_w=0.2)
    orchestrator = Orchestrator(dut, rng=rng)
    suites = []
    seen = set()
    for group in spec.port_groups:
        port_type = group.port_type.value
        if port_type in seen:
            continue
        seen.add(port_type)
        trx_name = DEFAULT_TRX_BY_PORT.get(port_type)
        if trx_name is None:
            continue
        max_pairs = sum(g.count for g in spec.port_groups
                        if g.port_type.value == port_type) // 2
        pairs = tuple(p for p in _PAIR_LADDER if p <= max_pairs)
        if len(pairs) < 2:
            continue
        speed = TRANSCEIVER_CATALOG[trx_name].speed_gbps
        top = min(speed, _MAX_LAB_RATE_GBPS)
        plan = ExperimentPlan(
            trx_name=trx_name, n_pairs_values=pairs,
            rates_gbps=tuple(round(f * top, 3) for f in _RATE_FRACTIONS),
            packet_sizes=(256, 1500),
            measure_duration_s=10, settle_time_s=1)
        suites.append(orchestrator.run_suite(plan))
    if not suites:
        return None
    model, _reports = derive_power_model(suites)
    return model


@dataclass
class FleetService:
    """The loaded fleet and everything the endpoints read from it."""

    preset: str
    seed: int
    models: Dict[str, PowerModel] = field(default_factory=dict)
    fleet_doc: Dict = field(default_factory=dict)
    _network: Optional[object] = None
    _state: Optional[FleetState] = None
    _internal_links: Dict[int, object] = field(default_factory=dict)

    @classmethod
    def load(cls, preset: str, seed: int,
             warmup_steps: int = 8,
             warmup_step_s: float = 300.0) -> "FleetService":
        """Build the whole serving state (blocking; runs off-loop)."""
        service = cls(preset=preset, seed=seed)
        config = synth_config(preset)
        network = generate_synth_network(
            config, rng=np.random.default_rng(seed))
        for index, model_name in enumerate(sorted(set(config.models()))):
            model = quick_lab_model(model_name, seed + 100 + index)
            if model is not None:
                service.models[model_name] = model
        traffic = FleetTrafficModel(
            network, rng=np.random.default_rng(seed + 1))
        sim = NetworkSimulation(
            network, traffic, rng=np.random.default_rng(seed + 2))
        result = sim.run(duration_s=warmup_steps * warmup_step_s,
                         step_s=warmup_step_s, engine="auto",
                         attribution=True)
        service._network = network
        service._internal_links = {
            link.link_id: link for link in network.links
            if link.is_internal}
        service._state = FleetState(network, traffic)
        service.fleet_doc = service._build_fleet_doc(result, warmup_step_s)
        return service

    # -- /fleet -------------------------------------------------------------

    def _build_fleet_doc(self, result, step_s: float) -> Dict:
        """The ``/fleet`` snapshot document (wall-clock free)."""
        network = self._network
        power = result.total_power
        traffic_bps = result.total_traffic_bps
        doc = {
            "schema": SERVE_SCHEMA,
            "kind": "fleet",
            "preset": self.preset,
            "seed": self.seed,
            "n_routers": len(network.routers),
            "n_links": len(network.links),
            "n_internal_links": len(self._internal_links),
            "n_pops": len(network.pops),
            "models": sorted(self.models),
            "warmup": {
                "steps": len(power),
                "step_s": step_s,
                "total_power_w": round(float(power.values[-1]), 6),
                "mean_power_w": round(float(power.values.mean()), 6),
                "total_traffic_gbps": round(
                    units.bps_to_gbps(float(traffic_bps.values[-1])), 6),
            },
        }
        if result.ledger is not None:
            doc["attribution"] = result.ledger.to_dict()
        return doc

    # -- /whatif ------------------------------------------------------------

    def whatif(self, request: WhatIfRequest) -> Dict:
        """Evaluate a counterfactual admin-state change on the fleet.

        First-order delta: port admin states are toggled, the affected
        routers' configuration columns are re-patched, and wall power
        is re-read from the vector engine -- traffic is *not*
        re-routed.  The fleet is restored (and re-patched) before
        returning, so what-if requests never perturb each other or the
        ``/fleet`` snapshot; the caller must serialise calls.
        """
        state = self._state
        network = self._network
        assert state is not None and network is not None
        toggles: List[Tuple[object, bool]] = []

        def plan_toggle(hostname: str, port_index: int,
                        admin_up: bool) -> None:
            router = network.routers.get(hostname)
            if router is None:
                raise RequestError(f"unknown router {hostname!r}")
            if not 0 <= port_index < len(router.ports):
                raise RequestError(
                    f"{hostname} has no port {port_index}")
            toggles.append((router.ports[port_index], admin_up))

        for change in request.changes:
            plan_toggle(change.hostname, change.port_index,
                        change.admin_up)
        for link_id in request.sleep_links:
            link = self._internal_links.get(link_id)
            if link is None:
                raise RequestError(f"unknown internal link {link_id}")
            plan_toggle(link.a.hostname, link.a.port_index, False)
            plan_toggle(link.b.hostname, link.b.port_index, False)

        hosts = sorted({port.router.hostname for port, _up in toggles})
        host_rows = [state.router_index[h] for h in hosts]
        # Flipping one end's admin state changes link_up on *both*
        # ends (mirrors events._port_link_hosts), so the patch set
        # must include internal-link peers or their columns go stale.
        patch_hosts = set(hosts)
        for port, _up in toggles:
            peer = port.peer
            if peer is not None and \
                    peer.router.hostname in state.router_index:
                patch_hosts.add(peer.router.hostname)
        patch_list = sorted(patch_hosts)
        baseline = state.wall_power()
        baseline_total = float(baseline.sum())
        saved = [(port, port.admin_up) for port, _up in toggles]
        try:
            for port, admin_up in toggles:
                port.set_admin(admin_up)
            state.patch_routers(patch_list)
            variant = state.wall_power()
        finally:
            for port, admin_up in saved:
                port.set_admin(admin_up)
            state.patch_routers(patch_list)
        variant_total = float(variant.sum())
        routers = [
            {"hostname": host,
             "baseline_w": round(float(baseline[row]), 6),
             "variant_w": round(float(variant[row]), 6),
             "delta_w": round(float(variant[row] - baseline[row]), 6)}
            for host, row in zip(hosts, host_rows)]
        return {
            "schema": SERVE_SCHEMA,
            "kind": "whatif",
            "changes_applied": len(toggles),
            "baseline_w": round(baseline_total, 6),
            "variant_w": round(variant_total, 6),
            "delta_w": round(variant_total - baseline_total, 6),
            "routers": routers,
        }
