"""``netpower`` -- the command-line face of the toolchain.

Mirrors how the paper's released artifacts are used from a shell:

* ``netpower derive``      -- NetPowerBench: characterise a device, emit
  its power model as JSON (the Zoo record format);
* ``netpower audit``       -- simulate the fleet briefly and print the
  §7/§9 energy audit;
* ``netpower sleep-study`` -- the §8 Hypnos savings analysis;
* ``netpower datasheets``  -- run the §3 corpus/extraction pipeline and
  print the trend and Table 1 statistics;
* ``netpower zoo``         -- derive every catalog device and export a
  Network Power Zoo JSON document;
* ``netpower bench``       -- time the object vs vectorized simulation
  engines and write ``BENCH_simulation.json``;
* ``netpower monitor``     -- run a small fleet with the continuous
  monitor attached and write a dashboard snapshot (JSON + HTML);
* ``netpower topo``        -- generate a deterministic synthetic
  multi-tier fleet and export its inventory (docs/TOPOLOGY.md);
* ``netpower sweep``       -- run a scenario matrix across worker
  processes and write a deterministic sweep report (docs/SWEEP.md);
* ``netpower explain``     -- run a fleet with the energy attribution
  ledger attached and print the fleet -> region -> router -> port
  drill-down (docs/OBSERVABILITY.md);
* ``netpower profile``     -- run a synthetic fleet with the kernel
  profiler attached and print the per-kernel time table
  (docs/OBSERVABILITY.md);
* ``netpower check``       -- the AST-based invariant checker behind the
  repository's determinism, unit, and schema conventions
  (docs/STATIC_ANALYSIS.md).

Every command takes ``--seed`` and is deterministic given it, plus the
shared observability flags (docs/OBSERVABILITY.md): ``--log-level`` /
``--log-json`` control the diagnostics channel on stderr,
``--metrics-out`` snapshots the metrics registry (Prometheus text, or
JSON for ``.json`` paths), ``--trace-out`` writes the span tree, and
``--profile-out`` writes the kernel profile (JSON, folded flamegraph
text, or speedscope, by extension).
Command *output* goes through report channels that print byte-identical
text by default and JSON lines under ``--log-json``.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

import numpy as np

from repro.ioutil import atomic_write_text
from repro.obs import metrics as obs_metrics
from repro.obs.logging import _LEVELS, configure, configure_reporter

M_COMMANDS = obs_metrics.counter(
    "netpower_cli_commands_total",
    "netpower CLI commands executed", labels=("command",))

#: Report channels: stdout carries command output, stderr carries
#: errors and progress.  Unlike diagnostics they are always on.
_OUT_NAME = "netpower.report.out"
_ERR_NAME = "netpower.report.err"


def _reporter(name: str, target: str) -> logging.Logger:
    logger = logging.getLogger(name)
    if not any(getattr(h, "_repro_obs", False) for h in logger.handlers):
        configure_reporter(name, target)
    return logger


def _out(message: str) -> None:
    """Print a report line to stdout (JSON record under ``--log-json``)."""
    _reporter(_OUT_NAME, "stdout").info(message)


def _err(message: str) -> None:
    """Print an error line to stderr (JSON record under ``--log-json``)."""
    _reporter(_ERR_NAME, "stderr").error(message)


def _progress(message: str) -> None:
    """Print a progress line to stderr without claiming error severity."""
    _reporter(_ERR_NAME, "stderr").info(message)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="netpower",
        description="Router power modeling and optimisation "
                    "(IMC'25 reproduction)")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=7,
                        help="root RNG seed (default: 7)")
    common.add_argument("--log-level", default="warning", choices=_LEVELS,
                        help="diagnostics verbosity on stderr "
                             "(default: %(default)s)")
    common.add_argument("--log-json", action="store_true",
                        help="emit diagnostics and report output as "
                             "JSON lines")
    common.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write a metrics snapshot here (Prometheus "
                             "text; .json for a JSON snapshot)")
    common.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write the span trace tree here as JSON")
    common.add_argument("--profile-out", metavar="PATH", default=None,
                        help="write the kernel profile here (JSON "
                             "document; .folded for flamegraph text, "
                             ".speedscope.json for speedscope)")
    sub = parser.add_subparsers(dest="command", required=True)

    derive = sub.add_parser(
        "derive", parents=[common],
        help="derive a power model on the virtual lab bench")
    derive.add_argument("device", help="router model, e.g. NCS-55A1-24H")
    derive.add_argument("transceiver", nargs="+",
                        help="module product(s), e.g. QSFP28-100G-DAC")
    derive.add_argument("--output", "-o", default=None,
                        help="write the model JSON here (default: stdout)")
    derive.add_argument("--quick", action="store_true",
                        help="short measurements (coarser fits)")

    audit = sub.add_parser("audit", parents=[common],
                           help="fleet energy audit (§7/§9)")
    audit.add_argument("--days", type=float, default=2.0,
                       help="simulated days (default: 2)")
    audit.add_argument("--autopower", type=int, default=2, metavar="N",
                       help="deploy Autopower meters on the first N "
                            "routers (default: 2)")
    audit.add_argument("--no-model-check", action="store_true",
                       help="skip the quick lab-derivation cross-check")

    sleep = sub.add_parser("sleep-study", parents=[common],
                           help="Hypnos link-sleeping savings (§8)")
    sleep.add_argument("--days", type=float, default=7.0,
                       help="planned days (default: 7)")
    sleep.add_argument("--max-utilisation", type=float, default=0.5,
                       help="post-rerouting cap (default: 0.5)")

    sheets = sub.add_parser("datasheets", parents=[common],
                            help="datasheet corpus & extraction (§3)")
    sheets.add_argument("--models", type=int, default=777,
                        help="corpus size (default: 777)")

    zoo = sub.add_parser("zoo", parents=[common],
                         help="export a Network Power Zoo document")
    zoo.add_argument("--output", "-o", default=None,
                     help="write the Zoo JSON here (default: stdout)")
    zoo.add_argument("--contributor", default="netpower-cli")

    validate = sub.add_parser(
        "validate", parents=[common],
        help="the §6 three-way validation on a small deployment")
    validate.add_argument("--days", type=float, default=3.0,
                          help="monitored days (default: 3)")

    rate = sub.add_parser(
        "rate-study", parents=[common],
        help="rate-adaptation savings (the sleeping alternative)")
    rate.add_argument("--headroom", type=float, default=4.0,
                      help="capacity headroom over peak load (default: 4)")

    bench = sub.add_parser(
        "bench", parents=[common],
        help="benchmark the object vs vectorized simulation engines")
    bench.add_argument("--quick", action="store_true",
                       help="run only the small case (a few seconds)")
    bench.add_argument("--cases", nargs="+", metavar="CASE",
                       help="cases to run: small, medium, large, "
                            "xl, xxl, xxxl")
    bench.add_argument("--steps", type=int, default=None,
                       help="override the per-case step count")
    bench.add_argument("--output", "-o", default="BENCH_simulation.json",
                       help="report path (default: %(default)s)")
    bench.add_argument("--compare", metavar="BASELINE", default=None,
                       help="diff the report against this baseline "
                            "report; exit 1 on regression")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="fractional slowdown tolerated by --compare "
                            "(default: repro.bench.DEFAULT_TOLERANCE)")
    bench.add_argument("--min-kernel-ms", type=float, default=None,
                       help="skip kernels whose baseline total is below "
                            "this in --compare")
    bench.add_argument("--history", metavar="PATH", default=None,
                       help="trajectory file to append to (default: "
                            "BENCH_history.jsonl next to the report; "
                            "'-' disables)")

    prof = sub.add_parser(
        "profile", parents=[common],
        help="profile the simulation kernels on a synthetic fleet "
             "(docs/OBSERVABILITY.md)")
    prof.add_argument("--preset", default="synth-200",
                      help="synth fleet preset (default: %(default)s)")
    prof.add_argument("--steps", type=int, default=200,
                      help="simulation steps (default: %(default)s)")
    prof.add_argument("--step", type=float, default=300.0,
                      help="step size in seconds (default: %(default)s)")
    prof.add_argument("--engine", default="vector",
                      choices=("auto", "object", "vector"),
                      help="simulation engine (default: %(default)s)")
    prof.add_argument("--attribution", action="store_true",
                      help="attach the energy ledger so its kernel "
                           "shows up in the profile")
    prof.add_argument("--top", type=int, default=15,
                      help="kernels in the summary table "
                           "(default: %(default)s)")
    prof.add_argument("--out", "-o", default=None,
                      help="write the profile here (JSON; .folded / "
                           ".speedscope.json switch formats)")

    monitor = sub.add_parser(
        "monitor", parents=[common],
        help="continuous fleet monitoring: rollups, drift, alerts")
    monitor.add_argument("--days", type=float, default=1.0,
                         help="simulated days (default: 1)")
    monitor.add_argument("--step", type=float, default=900,
                         help="simulation step in seconds (default: 900)")
    monitor.add_argument("--engine", default="auto",
                         choices=("auto", "object", "vector"),
                         help="simulation engine (default: %(default)s)")
    monitor.add_argument("--out", "-o", default="dashboard.json",
                         help="dashboard snapshot path; the HTML page is "
                              "written next to it (default: %(default)s)")
    monitor.add_argument("--inject-psu-fault", action="store_true",
                         help="degrade one PSU mid-run to exercise the "
                              "alerting pipeline")

    explain = sub.add_parser(
        "explain", parents=[common],
        help="energy attribution drill-down: fleet -> region -> router "
             "-> port (docs/OBSERVABILITY.md)")
    explain.add_argument("--preset", default="synth-200",
                         help="synth fleet preset (default: %(default)s)")
    explain.add_argument("--steps", type=int, default=50,
                         help="simulation steps (default: %(default)s)")
    explain.add_argument("--step", type=float, default=300.0,
                         help="step size in seconds (default: %(default)s)")
    explain.add_argument("--engine", default="auto",
                         choices=("auto", "object", "vector"),
                         help="simulation engine (default: %(default)s)")
    explain.add_argument("--host", default=None,
                         help="add a port-level drill-down for this router")
    explain.add_argument("--top", type=int, default=10,
                         help="routers in the per-router section "
                              "(default: %(default)s)")
    explain.add_argument("--format", dest="format", default="text",
                         choices=("text", "json"),
                         help="report format (default: %(default)s)")
    explain.add_argument("--out", "-o", default=None,
                         help="write the report here (default: stdout)")

    check = sub.add_parser(
        "check", parents=[common],
        help="static invariant checks (docs/STATIC_ANALYSIS.md)")
    check.add_argument("paths", nargs="*", default=["src"],
                       help="files or directories to check "
                            "(default: src)")
    check.add_argument("--format", dest="format", default="text",
                       choices=("text", "json"),
                       help="report format (default: %(default)s)")
    check.add_argument("--select", metavar="RULES", default=None,
                       help="comma-separated rule ids or family "
                            "prefixes to run (default: all)")
    check.add_argument("--verbose", action="store_true",
                       help="also list suppressed findings")
    check.add_argument("--list-rules", action="store_true",
                       help="list every registered rule and exit")
    check.add_argument("--no-cache", action="store_true",
                       help="skip the incremental result cache")
    check.add_argument("--cache-file", metavar="PATH", default=None,
                       help="incremental cache location (default: "
                            ".netpower-check-cache.json)")
    check.add_argument("--explain", metavar="RULE", default=None,
                       help="print one rule's documentation and an "
                            "example finding, then exit")

    topo = sub.add_parser(
        "topo", parents=[common],
        help="generate a deterministic synthetic multi-tier fleet "
             "(docs/TOPOLOGY.md)")
    topo.add_argument("--preset", default="synth-1k",
                      help="synth preset: synth-200, synth-1k, "
                           "synth-10k, synth-100k (default: %(default)s)")
    topo.add_argument("--routers", type=int, default=None,
                      help="override the preset's total router count")
    topo.add_argument("--backbone", type=int, default=None,
                      help="override the preset's backbone router count")
    topo.add_argument("--output", "-o", metavar="PATH", default=None,
                      help="write the fleet inventory JSON here "
                           "(default: summary only)")

    serve = sub.add_parser(
        "serve", parents=[common],
        help="async fleet-power query service (docs/SERVE.md)")
    serve.add_argument("--preset", default="synth-200",
                       help="synth fleet preset to load "
                            "(default: %(default)s)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: %(default)s)")
    serve.add_argument("--warmup-steps", type=int, default=8,
                       help="warmup simulation steps behind /fleet "
                            "(default: %(default)s)")
    serve.add_argument("--warmup-step", type=float, default=300.0,
                       help="warmup step size in seconds "
                            "(default: %(default)s)")
    serve.add_argument("--octet-quantum", type=float, default=125.0,
                       help="admission quantum for octet rates, bytes/s "
                            "(0 disables; default: %(default)s)")
    serve.add_argument("--packet-quantum", type=float, default=1.0,
                       help="admission quantum for packet rates, pkt/s "
                            "(0 disables; default: %(default)s)")
    serve.add_argument("--no-metrics", action="store_true",
                       help="serve without a metrics registry "
                            "(/metrics returns 404)")
    serve.add_argument("--snapshot-out", metavar="PATH", default=None,
                       help="write the /fleet snapshot JSON here once "
                            "loaded (atomic replace)")

    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="sharded multiprocess scenario sweep (docs/SWEEP.md)")
    sweep.add_argument("--preset", default=None,
                       help="built-in matrix: demo, sleep-policy, psu, "
                            "topo-xl (default: demo unless --matrix is "
                            "given)")
    sweep.add_argument("--matrix", metavar="PATH", default=None,
                       help="JSON scenario matrix file (docs/SWEEP.md)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (default: 1; the report "
                            "is identical for any value)")
    sweep.add_argument("--shard", metavar="I/M", default=None,
                       help="run only the I-th of M round-robin shards "
                            "of the job list")
    sweep.add_argument("--resume", action="store_true",
                       help="skip jobs already present in the output "
                            "report")
    sweep.add_argument("--engine", default="auto",
                       choices=("auto", "object", "vector"),
                       help="simulation engine (default: %(default)s)")
    sweep.add_argument("--attribution", action="store_true",
                       help="attach the energy attribution ledger to "
                            "every job and include its rollup in the "
                            "report")
    sweep.add_argument("--output", "-o", default="sweep.json",
                       help="report path (default: %(default)s)")
    sweep.add_argument("--bench-output", metavar="PATH", default=None,
                       help="per-job timing rows path (default: "
                            "<output stem>.bench.json)")
    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _cmd_derive(args) -> int:
    from repro.core import derive_power_model
    from repro.hardware import VirtualRouter, router_spec
    from repro.lab import ExperimentPlan, Orchestrator

    rng = np.random.default_rng(args.seed)
    try:
        spec = router_spec(args.device)
    except KeyError as exc:
        _err(f"error: {exc}")
        return 2
    dut = VirtualRouter(spec, rng=rng, noise_std_w=0.2)
    orchestrator = Orchestrator(dut, rng=rng)
    if args.quick:
        extra = dict(n_pairs_values=(1, 2, 4), rates_gbps=(10, 50, 100),
                     packet_sizes=(256, 1500), measure_duration_s=10,
                     settle_time_s=1)
    else:
        extra = {}
    suites = []
    for trx in args.transceiver:
        try:
            plan = ExperimentPlan(trx_name=trx, **extra)
            suites.append(orchestrator.run_suite(plan))
        except (KeyError, ValueError) as exc:
            _err(f"error: {exc}")
            return 2
    model, reports = derive_power_model(suites)
    # netpower: ignore[NP-SCHEMA-001] -- the document is
    # PowerModel.to_dict(), the Network Power Zoo record layout; its
    # schema is owned and versioned by repro.zoo.database (ZOO_SCHEMA).
    document = json.dumps(model.to_dict(), indent=2)
    if args.output:
        atomic_write_text(args.output, document + "\n")
        _out(f"wrote {args.output}")
    else:
        _out(document)
    for key, report in reports.items():
        for warning in report.warnings:
            _err(f"warning [{key}]: {warning}")
    return 0


def _cmd_audit(args) -> int:
    from repro import units
    from repro.hardware import EightyPlus
    from repro.network import (FleetTrafficModel, NetworkSimulation,
                               build_switch_like_network)
    from repro.psu_opt import (clean_exports, single_psu_savings,
                               upgrade_savings)

    rng = np.random.default_rng(args.seed)
    network = build_switch_like_network(rng=rng)
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(args.seed + 1))
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(args.seed + 2))
    hosts = sorted(network.routers)[:max(0, args.autopower)]
    for hostname in hosts:
        sim.deploy_autopower(hostname)
    result = sim.run(duration_s=units.days(args.days), step_s=1800)
    total = result.total_power.mean()
    _out(f"routers            : {len(network.routers)}")
    _out(f"mean total power   : {total:,.0f} W")
    _out(f"mean total traffic : "
         f"{units.bps_to_tbps(result.total_traffic_bps.mean()):.2f} Tbps")
    if hosts:
        n_samples = sum(len(series) for series in result.autopower.values())
        _out(f"autopower units    : {len(hosts)} "
             f"({n_samples} samples uploaded)")
    points = clean_exports(result.sensor_exports)
    for std in (EightyPlus.BRONZE, EightyPlus.PLATINUM,
                EightyPlus.TITANIUM):
        saving = upgrade_savings(points, std)
        _out(f"upgrade >= {std.value:9s}: {100 * saving.fraction:5.1f} % "
             f"({saving.saved_w:6,.0f} W)")
    single = single_psu_savings(points)
    _out(f"single PSU          : {100 * single.fraction:5.1f} % "
         f"({single.saved_w:6,.0f} W)")
    if not args.no_model_check:
        model, trx_fit = _audit_model_check(args.seed + 3)
        _out(f"model check        : {model.router_model} p_base "
             f"{model.p_base_w.value:.0f} W "
             f"(trx fit r^2 {trx_fit.r_squared:.3f})")
    return 0


def _audit_model_check(seed: int):
    """A quick lab derivation so the audit exercises the model pipeline.

    Deterministic in its own seed; returns the fitted model and the Trx
    fit whose r² the audit reports as a derivation health check.
    """
    from repro.core import derive_power_model
    from repro.hardware import VirtualRouter, router_spec
    from repro.lab import ExperimentPlan, Orchestrator

    rng = np.random.default_rng(seed)
    dut = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                        noise_std_w=0.2)
    orchestrator = Orchestrator(dut, rng=rng)
    plan = ExperimentPlan(
        trx_name="QSFP28-100G-DAC", n_pairs_values=(1, 2, 4),
        rates_gbps=(10, 50, 100), packet_sizes=(256, 1500),
        measure_duration_s=10, settle_time_s=1)
    model, reports = derive_power_model([orchestrator.run_suite(plan)])
    report = next(iter(reports.values()))
    return model, report.trx_fit


def _cmd_sleep_study(args) -> int:
    from repro import units
    from repro.network import FleetTrafficModel, build_switch_like_network
    from repro.sleep import Hypnos, HypnosConfig, plan_savings

    rng = np.random.default_rng(args.seed)
    network = build_switch_like_network(rng=rng)
    traffic = FleetTrafficModel(network,
                                rng=np.random.default_rng(args.seed + 1),
                                n_demands=800)
    hypnos = Hypnos(network, traffic.matrix,
                    HypnosConfig(max_utilisation=args.max_utilisation))
    plan = hypnos.plan(0, units.days(args.days))
    reference = network.total_wall_power_w()
    estimate = plan_savings(network, plan, reference)
    sleeping = plan.ever_sleeping()
    _out(f"internal links     : {len(network.internal_links())}")
    _out(f"ever asleep        : {len(sleeping)}")
    _out(f"estimated savings  : {estimate}")
    return 0


def _cmd_datasheets(args) -> int:
    from repro.datasheets import (build_corpus, datasheet_vs_measured,
                                  efficiency_trend, measure_accuracy,
                                  parse_corpus, trend_fit)
    from repro.hardware import TABLE1_MEASURED_MEDIAN_W

    rng = np.random.default_rng(args.seed)
    corpus = build_corpus(args.models, rng)
    parsed = parse_corpus(corpus)
    accuracy = measure_accuracy(corpus, parsed)
    _out(f"corpus             : {len(corpus)} datasheets")
    _out(f"extraction accuracy: typical {100 * accuracy.typical_rate:.0f} %, "
         f"max {100 * accuracy.max_rate:.0f} %, "
         f"bandwidth {100 * accuracy.bandwidth_rate:.0f} %")
    years = {m: d.truth.release_year
             for m, d in corpus.documents.items() if d.truth.release_year}
    points = efficiency_trend(parsed, release_years=years)
    if len(points) >= 2:
        fit = trend_fit(points)
        _out(f"efficiency trend   : {fit.slope:+.2f} W/100G/yr "
             f"over {len(points)} routers (r^2 = {fit.r_squared:.2f})")
    rows = datasheet_vs_measured(parsed, TABLE1_MEASURED_MEDIAN_W)
    for row in rows:
        _out(f"  {row.router_model:22s} typical "
             f"{row.datasheet_typical_w:5.0f} W vs measured "
             f"{row.measured_median_w:5.0f} W "
             f"({100 * row.relative_overestimate:+.0f} %)")
    return 0


def _cmd_zoo(args) -> int:
    from repro.core import derive_power_model
    from repro.hardware import MODELLED_DEVICES, VirtualRouter, router_spec
    from repro.lab import ExperimentPlan, Orchestrator
    from repro.zoo import NetworkPowerZoo, PowerModelRecord, Provenance

    zoo = NetworkPowerZoo()
    provenance = Provenance(contributor=args.contributor,
                            method="lab-measurement")
    default_trx = {
        "NCS-55A1-24H": "QSFP28-100G-DAC",
        "Nexus9336-FX2": "QSFP28-100G-DAC",
        "8201-32FH": "QSFP-100G-DAC",
        "N540X-8Z16G-SYS-A": "SFP-1G-T",
        "Wedge 100BF-32X": "QSFP28-100G-DAC",
        "Nexus 93108TC-FX3P": "QSFP28-100G-DAC",
        "VSP-4900": "SFP+-10G-T",
        "Catalyst 3560": "RJ45-100M-T",
    }
    for i, device in enumerate(MODELLED_DEVICES):
        rng = np.random.default_rng(args.seed + i)
        dut = VirtualRouter(router_spec(device), rng=rng, noise_std_w=0.2)
        orchestrator = Orchestrator(dut, rng=rng)
        from repro.hardware import TRANSCEIVER_CATALOG
        speed = TRANSCEIVER_CATALOG[default_trx[device]].speed_gbps
        plan = ExperimentPlan(
            trx_name=default_trx[device],
            n_pairs_values=(1, 2, 4),
            rates_gbps=tuple(round(f * min(speed, 100), 3)
                             for f in (0.2, 0.5, 0.95)),
            packet_sizes=(256, 1500),
            measure_duration_s=10, settle_time_s=1)
        model, _ = derive_power_model([orchestrator.run_suite(plan)])
        zoo.add(PowerModelRecord(vendor=router_spec(device).vendor,
                                 model=device, power_model=model,
                                 provenance=provenance))
        _progress(f"derived {device}")
    document = zoo.to_json()
    if args.output:
        atomic_write_text(args.output, document + "\n")
        _out(f"wrote {args.output}")
    else:
        _out(document)
    return 0


def _cmd_validate(args) -> int:
    from repro import units
    from repro.core import derive_power_model
    from repro.hardware import VirtualRouter, router_spec
    from repro.lab import ExperimentPlan, Orchestrator
    from repro.network import (DeployAutopower, FleetConfig,
                               FleetTrafficModel, NetworkSimulation,
                               build_switch_like_network)
    from repro.validation import ValidationSummary, validate_router

    config = FleetConfig(
        model_counts=(("8201-32FH", 2), ("NCS-55A1-24H", 3),
                      ("NCS-55A1-24Q6H-SS", 3), ("ASR-920-24SZ-M", 6)),
        n_regional_pops=3, core_core_links=2)
    network = build_switch_like_network(
        config, rng=np.random.default_rng(args.seed))
    targets = {}
    for model_name in ("8201-32FH", "NCS-55A1-24H"):
        targets[model_name] = next(
            h for h in sorted(network.routers)
            if network.routers[h].model_name == model_name)
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(args.seed + 1),
        mean_external_utilisation=0.05, internal_utilisation_scale=6.0)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(args.seed + 2))
    result = sim.run(
        duration_s=units.days(args.days), step_s=900,
        events=[DeployAutopower(at_s=units.hours(6), hostname=h)
                for h in targets.values()],
        detailed_hosts=sorted(targets.values()))

    def lab_model(device, trx_names, seed):
        rng = np.random.default_rng(seed)
        dut = VirtualRouter(router_spec(device), rng=rng, noise_std_w=0.2)
        orchestrator = Orchestrator(dut, rng=rng)
        suites = [orchestrator.run_suite(ExperimentPlan(
            trx_name=trx, n_pairs_values=(1, 2, 4),
            rates_gbps=(10, 50, 100), packet_sizes=(256, 1500),
            measure_duration_s=10, settle_time_s=1))
            for trx in trx_names]
        model, _ = derive_power_model(suites)
        return model

    models = {
        "8201-32FH": lab_model(
            "8201-32FH", ("QSFP-DD-400G-FR4", "QSFP-DD-400G-LR4",
                          "QSFP-DD-400G-DAC", "QSFP28-100G-LR4"),
            args.seed + 10),
        "NCS-55A1-24H": lab_model(
            "NCS-55A1-24H", ("QSFP28-100G-DAC", "QSFP28-100G-LR4",
                             "QSFP28-100G-SR4"), args.seed + 11),
    }
    reports = {
        hostname: validate_router(
            hostname=hostname, trace=result.snmp[hostname],
            autopower=result.autopower[hostname],
            model=models[model_name])
        for model_name, hostname in targets.items()
    }
    _out(ValidationSummary.from_reports(reports).to_text())
    return 0


def _monitor_scenario(args):
    """Build the small monitored deployment ``netpower monitor`` runs.

    Shared with the test-suite so the CLI smoke test and the e2e tests
    exercise the same scenario.  Returns ``(sim, monitor, events,
    targets)`` ready for ``sim.run``.
    """
    from repro import units
    from repro.core import derive_power_model
    from repro.hardware import VirtualRouter, router_spec
    from repro.lab import ExperimentPlan, Orchestrator
    from repro.monitor import FleetMonitor
    from repro.network import (DegradePsu, FleetConfig, FleetTrafficModel,
                               NetworkSimulation,
                               build_switch_like_network)

    config = FleetConfig(
        model_counts=(("8201-32FH", 1), ("NCS-55A1-24H", 2),
                      ("ASR-920-24SZ-M", 2)),
        n_regional_pops=1, core_core_links=1)
    network = build_switch_like_network(
        config, rng=np.random.default_rng(args.seed))
    targets = {}
    for model_name in ("8201-32FH", "NCS-55A1-24H"):
        targets[model_name] = next(
            h for h in sorted(network.routers)
            if network.routers[h].model_name == model_name)
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(args.seed + 1),
        mean_external_utilisation=0.05, internal_utilisation_scale=6.0)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(args.seed + 2))
    for hostname in targets.values():
        sim.deploy_autopower(hostname)

    def lab_model(device, trx_names, seed):
        rng = np.random.default_rng(seed)
        dut = VirtualRouter(router_spec(device), rng=rng, noise_std_w=0.2)
        orchestrator = Orchestrator(dut, rng=rng)
        suites = [orchestrator.run_suite(ExperimentPlan(
            trx_name=trx, n_pairs_values=(1, 2, 4),
            rates_gbps=(10, 50, 100), packet_sizes=(256, 1500),
            measure_duration_s=10, settle_time_s=1))
            for trx in trx_names]
        model, _ = derive_power_model(suites)
        return model

    models = {
        "8201-32FH": lab_model(
            "8201-32FH", ("QSFP-DD-400G-FR4", "QSFP-DD-400G-LR4",
                          "QSFP-DD-400G-DAC", "QSFP28-100G-LR4"),
            args.seed + 10),
        "NCS-55A1-24H": lab_model(
            "NCS-55A1-24H", ("QSFP28-100G-DAC", "QSFP28-100G-LR4",
                             "QSFP28-100G-SR4"), args.seed + 11),
    }
    monitor = FleetMonitor(models=models)
    sim.add_observer(monitor)
    events = []
    if args.inject_psu_fault:
        events.append(DegradePsu(
            at_s=units.days(args.days) / 2,
            hostname=targets["8201-32FH"], psu_index=0,
            efficiency_delta=-0.05))
    return sim, monitor, events, targets


def _cmd_monitor(args) -> int:
    from repro import units
    from repro.monitor import write_dashboard

    if args.days <= 0 or args.step <= 0:
        _err("error: --days and --step must be positive")
        return 2
    _progress("deriving lab models for the monitored products ...")
    sim, monitor, events, targets = _monitor_scenario(args)
    _progress(f"simulating {args.days:g} day(s) "
              f"({args.engine} engine) ...")
    sim.run(duration_s=units.days(args.days), step_s=args.step,
            events=events, detailed_hosts=sorted(targets.values()),
            engine=args.engine, attribution=True)
    write_dashboard(monitor, args.out)
    _out(f"monitored routers  : {len(monitor.hosts)}")
    fleet = monitor.store.get("fleet/total_power_w")
    if fleet is not None and fleet.raw.count:
        _out(f"fleet power (last) : {fleet.raw.last()[1]:,.0f} W")
    for host in sorted(monitor.drift):
        estimate = monitor.drift[host].estimate()
        if estimate is None:
            _out(f"  {host:12s}: drift pending (not enough windows)")
            continue
        _out(f"  {host:12s}: offset {estimate.offset_w:+8.2f} W  "
             f"sigma {estimate.stats.residual_std_w:6.2f} W  "
             f"verdict {estimate.verdict()}")
    alerts = monitor.alerts.alerts
    _out(f"alerts fired       : {len(alerts)} "
         f"({len(monitor.alerts.active())} active)")
    for alert in alerts:
        status = "active" if alert.active else "resolved"
        _out(f"  [{alert.severity.value:8s}] {alert.rule} "
             f"on {alert.signal} at t={alert.fired_at_s:,.0f}s "
             f"({status})")
    _out(f"wrote {args.out}")
    return 0


def _cmd_explain(args) -> int:
    from repro.network import (FleetTrafficModel, NetworkSimulation,
                               generate_synth_network, supports_vectorized,
                               synth_config)
    from repro.network.attribution import (build_explain_document,
                                           explain_to_json,
                                           render_explain_text)

    if args.steps <= 0 or args.step <= 0:
        _err("error: --steps and --step must be positive")
        return 2
    try:
        config = synth_config(args.preset)
    except ValueError as exc:
        _err(f"error: {exc}")
        return 2
    network = generate_synth_network(
        config, rng=np.random.default_rng(args.seed))
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(args.seed + 1), n_demands=60)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(args.seed + 2))
    engine = args.engine
    if engine == "auto":
        engine = ("vector" if supports_vectorized(network) else "object")
    _progress(f"simulating {args.steps} steps of {args.preset} "
              f"({engine} engine) with the energy ledger attached ...")
    try:
        result = sim.run(duration_s=args.steps * args.step,
                         step_s=args.step, engine=engine,
                         attribution=True)
        document = build_explain_document(
            result.ledger, network, engine=engine,
            scenario={"preset": args.preset, "seed": args.seed,
                      "steps": args.steps, "step_s": args.step},
            host=args.host, top=args.top)
    except ValueError as exc:
        _err(f"error: {exc}")
        return 2
    rendered = (explain_to_json(document) if args.format == "json"
                else render_explain_text(document))
    if args.out:
        atomic_write_text(args.out, rendered + "\n")
        _out(f"wrote {args.out}")
    else:
        _out(rendered)
    if not document["conservation"]["ok"]:
        _err("error: conservation violated (residual above tolerance)")
        return 1
    return 0


def _cmd_rate_study(args) -> int:
    from repro.network import FleetTrafficModel, build_switch_like_network
    from repro.sleep import plan_rate_adaptation

    network = build_switch_like_network(
        rng=np.random.default_rng(args.seed))
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(args.seed + 1), n_demands=800)
    plan = plan_rate_adaptation(network, traffic.matrix,
                                headroom=args.headroom)
    reference = network.total_wall_power_w()
    downgraded = plan.downgraded()
    _out(f"internal links      : {len(network.internal_links())}")
    _out(f"links clocked down  : {len(downgraded)}")
    _out(f"estimated savings   : {plan.total_saving_w:.0f} W "
         f"({100 * plan.total_saving_w / reference:.2f} % of "
         f"{reference:,.0f} W)")
    for decision in downgraded[:10]:
        _out(f"  link {decision.link_id:4d}: "
             f"{decision.old_speed_gbps:g}G -> "
             f"{decision.new_speed_gbps:g}G  "
             f"(-{decision.saving_w:.2f} W)")
    if len(downgraded) > 10:
        _out(f"  ... and {len(downgraded) - 10} more")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro import bench

    if args.quick:
        case_names = ("small",)
    elif args.cases:
        unknown = [c for c in args.cases if c not in bench.CASES]
        if unknown:
            _err(f"error: unknown bench cases {unknown}; "
                 f"choose from {sorted(bench.CASES)}")
            return 2
        case_names = args.cases
    else:
        case_names = bench.DEFAULT_CASES
    if args.steps is not None and args.steps <= 0:
        _err("error: --steps must be positive")
        return 2
    output = Path(args.output)
    if output.parent and not output.parent.is_dir():
        _err(f"error: output directory {output.parent} does not exist")
        return 2
    tolerance = (args.tolerance if args.tolerance is not None
                 else bench.DEFAULT_TOLERANCE)
    min_kernel_ms = (args.min_kernel_ms if args.min_kernel_ms is not None
                     else bench.DEFAULT_MIN_KERNEL_MS)
    if tolerance <= 0:
        _err("error: --tolerance must be positive")
        return 2
    baseline = None
    if args.compare is not None:
        # Fail on a bad baseline before minutes of timing.
        try:
            baseline = json.loads(Path(args.compare).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            _err(f"error: cannot read baseline {args.compare}: {exc}")
            return 2
        if (not isinstance(baseline, dict)
                or baseline.get("schema") != bench.SCHEMA):
            _err(f"error: baseline {args.compare} is not a "
                 f"{bench.SCHEMA} report")
            return 2
    if args.history is None:
        history = output.parent / "BENCH_history.jsonl"
    elif args.history == "-":
        history = None
    else:
        history = Path(args.history)
    report = bench.run_benchmarks(case_names, seed=args.seed,
                                  output=output,
                                  steps_override=args.steps,
                                  history=history)
    if baseline is not None:
        comparison = bench.compare_reports(report, baseline,
                                           tolerance=tolerance,
                                           min_kernel_ms=min_kernel_ms)
        bench.render_comparison(comparison, sys.stdout)
        if comparison["regressions"]:
            return 1
    return 0


def _cmd_profile(args) -> int:
    from pathlib import Path

    from repro import units
    from repro.network import (FleetTrafficModel, NetworkSimulation,
                               generate_synth_network, synth_config)
    from repro.obs import profile as obs_profile

    if args.steps <= 0:
        _err("error: --steps must be positive")
        return 2
    if args.step <= 0:
        _err("error: --step must be positive")
        return 2
    try:
        config = synth_config(args.preset)
    except (KeyError, ValueError) as exc:
        _err(f"error: {exc}")
        return 2
    network = generate_synth_network(
        config, rng=np.random.default_rng(args.seed))
    traffic = FleetTrafficModel(network,
                                rng=np.random.default_rng(args.seed + 1))
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(args.seed + 2))
    # Reuse the session profiler (--profile-out) when one is installed,
    # so both flags write the same accumulated data.
    session = obs_profile.get_profiler()
    profiler = session if session is not None else obs_profile.Profiler()
    with obs_profile.use_profiler(profiler):
        sim.run(duration_s=args.steps * args.step, step_s=args.step,
                engine=args.engine, attribution=args.attribution)
    kernels = sorted(profiler.to_dict()["kernels"].items(),
                     key=lambda item: (-item[1]["self_s"], item[0]))
    _out(f"{args.preset}: {len(network.routers)} routers, "
         f"{args.steps} steps, engine {args.engine}")
    _out(f"{'kernel':<28} {'calls':>8} {'cum_ms':>10} {'self_ms':>10}")
    for name, stats in kernels[:max(args.top, 0)]:
        _out(f"{name:<28} {stats['calls']:>8} "
             f"{units.s_to_ms(stats['cum_s']):>10.2f} "
             f"{units.s_to_ms(stats['self_s']):>10.2f}")
    if args.out:
        path = obs_profile.write_profile(Path(args.out), profiler)
        _out(f"profile written to {path}")
    return 0


def _cmd_sweep(args) -> int:
    from pathlib import Path

    from repro.sweep import (MATRIX_PRESETS, ScenarioMatrix, expand,
                             parse_shard, run_sweep, shard_jobs)

    if args.preset is not None and args.matrix is not None:
        _err("error: --preset and --matrix are mutually exclusive")
        return 2
    if args.workers < 1:
        _err("error: --workers must be >= 1")
        return 2
    if args.matrix is not None:
        try:
            matrix = ScenarioMatrix.from_dict(
                json.loads(Path(args.matrix).read_text()))
        except (OSError, json.JSONDecodeError, TypeError,
                ValueError) as exc:
            _err(f"error: bad matrix file {args.matrix}: {exc}")
            return 2
    else:
        preset = args.preset if args.preset is not None else "demo"
        if preset not in MATRIX_PRESETS:
            _err(f"error: unknown preset {preset!r}; "
                 f"choose from {sorted(MATRIX_PRESETS)}")
            return 2
        matrix = MATRIX_PRESETS[preset]
    jobs = expand(matrix)
    if args.shard is not None:
        try:
            index, count = parse_shard(args.shard)
        except ValueError as exc:
            _err(f"error: {exc}")
            return 2
        jobs = shard_jobs(jobs, index, count)
    output = Path(args.output)
    if output.parent and not output.parent.is_dir():
        _err(f"error: output directory {output.parent} does not exist")
        return 2
    _progress(f"sweeping {len(jobs)} of {matrix.n_jobs} job(s) with "
              f"{args.workers} worker(s) ...")
    try:
        document = run_sweep(
            matrix, root_seed=args.seed, workers=args.workers,
            jobs=jobs, resume=args.resume, output=output,
            bench_output=(Path(args.bench_output)
                          if args.bench_output else None),
            engine=args.engine, attribution=args.attribution,
            progress=_progress)
    except (RuntimeError, ValueError) as exc:
        _err(f"error: {exc}")
        return 1
    for job in document["jobs"]:
        aggregates = job["aggregates"]
        sleep = job["sleep"]
        saving = (f"  sleep {sleep['saving_lower_w']:,.0f}-"
                  f"{sleep['saving_upper_w']:,.0f} W"
                  if sleep is not None else "")
        _out(f"  {job['key']:40s} mean "
             f"{aggregates['mean_power_w']:10,.1f} W  "
             f"energy {aggregates['energy_kwh']:8,.2f} kWh"
             f"{saving}")
    _out(f"jobs in report     : {len(document['jobs'])}/{matrix.n_jobs}")
    _out(f"wrote {output}")
    return 0


def _cmd_topo(args) -> int:
    import dataclasses

    from repro.network import (FleetInventory, generate_synth_network,
                               synth_config)

    try:
        config = synth_config(args.preset)
    except ValueError as exc:
        _err(f"error: {exc}")
        return 2
    overrides = {}
    if args.routers is not None:
        overrides["n_routers"] = args.routers
    if args.backbone is not None:
        overrides["n_backbone"] = args.backbone
    if overrides:
        config = dataclasses.replace(config, **overrides)
    try:
        network = generate_synth_network(
            config, rng=np.random.default_rng(args.seed))
    except ValueError as exc:
        _err(f"error: {exc}")
        return 2
    stats = network.interface_stats()
    share = (stats["external_interfaces"] / stats["total_interfaces"]
             if stats["total_interfaces"] else 0.0)
    _out(f"preset             : {args.preset}")
    _out(f"routers            : {len(network.routers)}")
    _out(f"pops               : {len(network.pops)}")
    _out(f"links              : {len(network.links)} "
         f"({len(network.internal_links())} internal, "
         f"{len(network.external_links())} external)")
    _out(f"external share     : {100 * share:.1f} % of interfaces")
    _out(f"total wall power   : {network.total_wall_power_w():,.0f} W")
    if args.output:
        document = FleetInventory.capture(network).to_json()
        atomic_write_text(args.output, document + "\n")
        _out(f"wrote {args.output}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import ServeConfig
    from repro.serve.app import serve_forever

    config = ServeConfig(
        preset=args.preset, seed=args.seed,
        host=args.host, port=args.port,
        warmup_steps=args.warmup_steps,
        warmup_step_s=args.warmup_step,
        octet_quantum=args.octet_quantum,
        packet_quantum=args.packet_quantum,
        metrics_enabled=not args.no_metrics,
        snapshot_out=args.snapshot_out)
    if config.metrics_enabled and obs_metrics.get_registry() is None:
        # A live /metrics endpoint needs a registry even when no
        # --metrics-out snapshot was requested.
        from repro.obs import load_instrument_catalog
        load_instrument_catalog()
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()):
            return asyncio.run(serve_forever(config, announce=_out))
    return asyncio.run(serve_forever(config, announce=_out))


def _cmd_check(args) -> int:
    from pathlib import Path

    from repro.analysis import (CheckConfig, check_paths,
                                check_paths_cached, render_explain,
                                render_json, render_rule_listing,
                                render_text)

    if args.list_rules:
        _out(render_rule_listing())
        return 0
    if args.explain:
        text = render_explain(args.explain)
        if text is None:
            _err(f"error: no such rule {args.explain!r} "
                 f"(see --list-rules)")
            return 2
        _out(text)
        return 0
    select = None
    if args.select:
        select = tuple(sorted({token.strip()
                               for token in args.select.split(",")
                               if token.strip()}))
        if not select:
            _err("error: --select given but names no rules")
            return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        _err(f"error: no such path(s): {', '.join(sorted(missing))}")
        return 2
    config = CheckConfig(select=select)
    if args.no_cache:
        result = check_paths(args.paths, config)
    else:
        result, _warm = check_paths_cached(
            args.paths, config, cache_file=args.cache_file)
    if args.format == "json":
        _out(render_json(result))
    else:
        _out(render_text(result, verbose=args.verbose))
    return 0 if result.clean else 1


_COMMANDS = {
    "derive": _cmd_derive,
    "audit": _cmd_audit,
    "sleep-study": _cmd_sleep_study,
    "datasheets": _cmd_datasheets,
    "zoo": _cmd_zoo,
    "validate": _cmd_validate,
    "rate-study": _cmd_rate_study,
    "explain": _cmd_explain,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "topo": _cmd_topo,
    "serve": _cmd_serve,
    "monitor": _cmd_monitor,
    "sweep": _cmd_sweep,
    "check": _cmd_check,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _parser().parse_args(argv)

    from repro.obs import export, load_instrument_catalog, tracing
    from repro.obs import profile as obs_profile

    configure(level=args.log_level, json_mode=args.log_json)
    configure_reporter(_OUT_NAME, "stdout", json_mode=args.log_json)
    configure_reporter(_ERR_NAME, "stderr", json_mode=args.log_json)

    registry = None
    tracer = None
    profiler = None
    if args.metrics_out:
        # Import every instrumented module first so never-touched
        # instruments still register (and export an explicit zero).
        load_instrument_catalog()
        registry = obs_metrics.MetricsRegistry()
    if args.trace_out:
        tracer = tracing.Tracer()
    if args.profile_out:
        profiler = obs_profile.Profiler()

    prev_registry = obs_metrics.set_registry(registry) \
        if registry is not None else None
    prev_tracer = tracing.set_tracer(tracer) if tracer is not None else None
    prev_profiler = obs_profile.set_profiler(profiler) \
        if profiler is not None else None
    try:
        M_COMMANDS.labels(command=args.command).inc()
        # netpower: ignore[NP-OBS-001] -- the command name comes from a
        # closed argparse choice set, so the span-name cardinality is
        # fixed even though the literal is assembled here.
        with tracing.span(f"cli.{args.command}", seed=args.seed):
            code = _COMMANDS[args.command](args)
    finally:
        if registry is not None:
            obs_metrics.set_registry(prev_registry)
        if tracer is not None:
            tracing.set_tracer(prev_tracer)
        if profiler is not None:
            obs_profile.set_profiler(prev_profiler)
    if profiler is not None and registry is not None:
        # Fold kernel totals into the netpower_profile_* families
        # before the snapshot is written.
        with obs_metrics.use_registry(registry):
            profiler.publish_metrics()
    if registry is not None:
        export.write_metrics(args.metrics_out, registry)
    if tracer is not None:
        export.write_trace(args.trace_out, tracer)
    if profiler is not None:
        obs_profile.write_profile(args.profile_out, profiler)
    return code


if __name__ == "__main__":
    sys.exit(main())
