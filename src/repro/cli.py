"""``netpower`` -- the command-line face of the toolchain.

Mirrors how the paper's released artifacts are used from a shell:

* ``netpower derive``      -- NetPowerBench: characterise a device, emit
  its power model as JSON (the Zoo record format);
* ``netpower audit``       -- simulate the fleet briefly and print the
  §7/§9 energy audit;
* ``netpower sleep-study`` -- the §8 Hypnos savings analysis;
* ``netpower datasheets``  -- run the §3 corpus/extraction pipeline and
  print the trend and Table 1 statistics;
* ``netpower zoo``         -- derive every catalog device and export a
  Network Power Zoo JSON document;
* ``netpower bench``       -- time the object vs vectorized simulation
  engines and write ``BENCH_simulation.json``.

Every command takes ``--seed`` and is deterministic given it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="netpower",
        description="Router power modeling and optimisation "
                    "(IMC'25 reproduction)")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=7,
                        help="root RNG seed (default: 7)")
    sub = parser.add_subparsers(dest="command", required=True)

    derive = sub.add_parser(
        "derive", parents=[common],
        help="derive a power model on the virtual lab bench")
    derive.add_argument("device", help="router model, e.g. NCS-55A1-24H")
    derive.add_argument("transceiver", nargs="+",
                        help="module product(s), e.g. QSFP28-100G-DAC")
    derive.add_argument("--output", "-o", default=None,
                        help="write the model JSON here (default: stdout)")
    derive.add_argument("--quick", action="store_true",
                        help="short measurements (coarser fits)")

    audit = sub.add_parser("audit", parents=[common],
                           help="fleet energy audit (§7/§9)")
    audit.add_argument("--days", type=float, default=2.0,
                       help="simulated days (default: 2)")

    sleep = sub.add_parser("sleep-study", parents=[common],
                           help="Hypnos link-sleeping savings (§8)")
    sleep.add_argument("--days", type=float, default=7.0,
                       help="planned days (default: 7)")
    sleep.add_argument("--max-utilisation", type=float, default=0.5,
                       help="post-rerouting cap (default: 0.5)")

    sheets = sub.add_parser("datasheets", parents=[common],
                            help="datasheet corpus & extraction (§3)")
    sheets.add_argument("--models", type=int, default=777,
                        help="corpus size (default: 777)")

    zoo = sub.add_parser("zoo", parents=[common],
                         help="export a Network Power Zoo document")
    zoo.add_argument("--output", "-o", default=None,
                     help="write the Zoo JSON here (default: stdout)")
    zoo.add_argument("--contributor", default="netpower-cli")

    validate = sub.add_parser(
        "validate", parents=[common],
        help="the §6 three-way validation on a small deployment")
    validate.add_argument("--days", type=float, default=3.0,
                          help="monitored days (default: 3)")

    rate = sub.add_parser(
        "rate-study", parents=[common],
        help="rate-adaptation savings (the sleeping alternative)")
    rate.add_argument("--headroom", type=float, default=4.0,
                      help="capacity headroom over peak load (default: 4)")

    bench = sub.add_parser(
        "bench", parents=[common],
        help="benchmark the object vs vectorized simulation engines")
    bench.add_argument("--quick", action="store_true",
                       help="run only the small case (a few seconds)")
    bench.add_argument("--cases", nargs="+", metavar="CASE",
                       help="cases to run: small, medium, large")
    bench.add_argument("--steps", type=int, default=None,
                       help="override the per-case step count")
    bench.add_argument("--output", "-o", default="BENCH_simulation.json",
                       help="report path (default: %(default)s)")
    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _cmd_derive(args) -> int:
    from repro.core import derive_power_model
    from repro.hardware import VirtualRouter, router_spec
    from repro.lab import ExperimentPlan, Orchestrator

    rng = np.random.default_rng(args.seed)
    try:
        spec = router_spec(args.device)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dut = VirtualRouter(spec, rng=rng, noise_std_w=0.2)
    orchestrator = Orchestrator(dut, rng=rng)
    if args.quick:
        extra = dict(n_pairs_values=(1, 2, 4), rates_gbps=(10, 50, 100),
                     packet_sizes=(256, 1500), measure_duration_s=10,
                     settle_time_s=1)
    else:
        extra = {}
    suites = []
    for trx in args.transceiver:
        try:
            plan = ExperimentPlan(trx_name=trx, **extra)
            suites.append(orchestrator.run_suite(plan))
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    model, reports = derive_power_model(suites)
    document = json.dumps(model.to_dict(), indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(document + "\n")
        print(f"wrote {args.output}")
    else:
        print(document)
    for key, report in reports.items():
        for warning in report.warnings:
            print(f"warning [{key}]: {warning}", file=sys.stderr)
    return 0


def _cmd_audit(args) -> int:
    from repro import units
    from repro.hardware import EightyPlus
    from repro.network import (FleetTrafficModel, NetworkSimulation,
                               build_switch_like_network)
    from repro.psu_opt import (clean_exports, single_psu_savings,
                               upgrade_savings)

    rng = np.random.default_rng(args.seed)
    network = build_switch_like_network(rng=rng)
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(args.seed + 1))
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(args.seed + 2))
    result = sim.run(duration_s=units.days(args.days), step_s=1800)
    total = result.total_power.mean()
    print(f"routers            : {len(network.routers)}")
    print(f"mean total power   : {total:,.0f} W")
    print(f"mean total traffic : "
          f"{units.bps_to_tbps(result.total_traffic_bps.mean()):.2f} Tbps")
    points = clean_exports(result.sensor_exports)
    for std in (EightyPlus.BRONZE, EightyPlus.PLATINUM,
                EightyPlus.TITANIUM):
        saving = upgrade_savings(points, std)
        print(f"upgrade >= {std.value:9s}: {100 * saving.fraction:5.1f} % "
              f"({saving.saved_w:6,.0f} W)")
    single = single_psu_savings(points)
    print(f"single PSU          : {100 * single.fraction:5.1f} % "
          f"({single.saved_w:6,.0f} W)")
    return 0


def _cmd_sleep_study(args) -> int:
    from repro import units
    from repro.network import FleetTrafficModel, build_switch_like_network
    from repro.sleep import Hypnos, HypnosConfig, plan_savings

    rng = np.random.default_rng(args.seed)
    network = build_switch_like_network(rng=rng)
    traffic = FleetTrafficModel(network,
                                rng=np.random.default_rng(args.seed + 1),
                                n_demands=800)
    hypnos = Hypnos(network, traffic.matrix,
                    HypnosConfig(max_utilisation=args.max_utilisation))
    plan = hypnos.plan(0, units.days(args.days))
    reference = network.total_wall_power_w()
    estimate = plan_savings(network, plan, reference)
    sleeping = plan.ever_sleeping()
    print(f"internal links     : {len(network.internal_links())}")
    print(f"ever asleep        : {len(sleeping)}")
    print(f"estimated savings  : {estimate}")
    return 0


def _cmd_datasheets(args) -> int:
    from repro.datasheets import (build_corpus, datasheet_vs_measured,
                                  efficiency_trend, measure_accuracy,
                                  parse_corpus, trend_fit)
    from repro.hardware import TABLE1_MEASURED_MEDIAN_W

    rng = np.random.default_rng(args.seed)
    corpus = build_corpus(args.models, rng)
    parsed = parse_corpus(corpus)
    accuracy = measure_accuracy(corpus, parsed)
    print(f"corpus             : {len(corpus)} datasheets")
    print(f"extraction accuracy: typical {100 * accuracy.typical_rate:.0f} %, "
          f"max {100 * accuracy.max_rate:.0f} %, "
          f"bandwidth {100 * accuracy.bandwidth_rate:.0f} %")
    years = {m: d.truth.release_year
             for m, d in corpus.documents.items() if d.truth.release_year}
    points = efficiency_trend(parsed, release_years=years)
    if len(points) >= 2:
        fit = trend_fit(points)
        print(f"efficiency trend   : {fit.slope:+.2f} W/100G/yr "
              f"over {len(points)} routers (r^2 = {fit.r_squared:.2f})")
    rows = datasheet_vs_measured(parsed, TABLE1_MEASURED_MEDIAN_W)
    for row in rows:
        print(f"  {row.router_model:22s} typical "
              f"{row.datasheet_typical_w:5.0f} W vs measured "
              f"{row.measured_median_w:5.0f} W "
              f"({100 * row.relative_overestimate:+.0f} %)")
    return 0


def _cmd_zoo(args) -> int:
    from repro.core import derive_power_model
    from repro.hardware import MODELLED_DEVICES, VirtualRouter, router_spec
    from repro.lab import ExperimentPlan, Orchestrator
    from repro.zoo import NetworkPowerZoo, PowerModelRecord, Provenance

    zoo = NetworkPowerZoo()
    provenance = Provenance(contributor=args.contributor,
                            method="lab-measurement")
    default_trx = {
        "NCS-55A1-24H": "QSFP28-100G-DAC",
        "Nexus9336-FX2": "QSFP28-100G-DAC",
        "8201-32FH": "QSFP-100G-DAC",
        "N540X-8Z16G-SYS-A": "SFP-1G-T",
        "Wedge 100BF-32X": "QSFP28-100G-DAC",
        "Nexus 93108TC-FX3P": "QSFP28-100G-DAC",
        "VSP-4900": "SFP+-10G-T",
        "Catalyst 3560": "RJ45-100M-T",
    }
    for i, device in enumerate(MODELLED_DEVICES):
        rng = np.random.default_rng(args.seed + i)
        dut = VirtualRouter(router_spec(device), rng=rng, noise_std_w=0.2)
        orchestrator = Orchestrator(dut, rng=rng)
        from repro.hardware import TRANSCEIVER_CATALOG
        speed = TRANSCEIVER_CATALOG[default_trx[device]].speed_gbps
        plan = ExperimentPlan(
            trx_name=default_trx[device],
            n_pairs_values=(1, 2, 4),
            rates_gbps=tuple(round(f * min(speed, 100), 3)
                             for f in (0.2, 0.5, 0.95)),
            packet_sizes=(256, 1500),
            measure_duration_s=10, settle_time_s=1)
        model, _ = derive_power_model([orchestrator.run_suite(plan)])
        zoo.add(PowerModelRecord(vendor=router_spec(device).vendor,
                                 model=device, power_model=model,
                                 provenance=provenance))
        print(f"derived {device}", file=sys.stderr)
    document = zoo.to_json()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(document + "\n")
        print(f"wrote {args.output}")
    else:
        print(document)
    return 0


def _cmd_validate(args) -> int:
    from repro import units
    from repro.core import derive_power_model
    from repro.hardware import VirtualRouter, router_spec
    from repro.lab import ExperimentPlan, Orchestrator
    from repro.network import (DeployAutopower, FleetConfig,
                               FleetTrafficModel, NetworkSimulation,
                               build_switch_like_network)
    from repro.validation import ValidationSummary, validate_router

    config = FleetConfig(
        model_counts=(("8201-32FH", 2), ("NCS-55A1-24H", 3),
                      ("NCS-55A1-24Q6H-SS", 3), ("ASR-920-24SZ-M", 6)),
        n_regional_pops=3, core_core_links=2)
    network = build_switch_like_network(
        config, rng=np.random.default_rng(args.seed))
    targets = {}
    for model_name in ("8201-32FH", "NCS-55A1-24H"):
        targets[model_name] = next(
            h for h in sorted(network.routers)
            if network.routers[h].model_name == model_name)
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(args.seed + 1),
        mean_external_utilisation=0.05, internal_utilisation_scale=6.0)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(args.seed + 2))
    result = sim.run(
        duration_s=units.days(args.days), step_s=900,
        events=[DeployAutopower(at_s=units.hours(6), hostname=h)
                for h in targets.values()],
        detailed_hosts=sorted(targets.values()))

    def lab_model(device, trx_names, seed):
        rng = np.random.default_rng(seed)
        dut = VirtualRouter(router_spec(device), rng=rng, noise_std_w=0.2)
        orchestrator = Orchestrator(dut, rng=rng)
        suites = [orchestrator.run_suite(ExperimentPlan(
            trx_name=trx, n_pairs_values=(1, 2, 4),
            rates_gbps=(10, 50, 100), packet_sizes=(256, 1500),
            measure_duration_s=10, settle_time_s=1))
            for trx in trx_names]
        model, _ = derive_power_model(suites)
        return model

    models = {
        "8201-32FH": lab_model(
            "8201-32FH", ("QSFP-DD-400G-FR4", "QSFP-DD-400G-LR4",
                          "QSFP-DD-400G-DAC", "QSFP28-100G-LR4"),
            args.seed + 10),
        "NCS-55A1-24H": lab_model(
            "NCS-55A1-24H", ("QSFP28-100G-DAC", "QSFP28-100G-LR4",
                             "QSFP28-100G-SR4"), args.seed + 11),
    }
    reports = {
        hostname: validate_router(
            hostname=hostname, trace=result.snmp[hostname],
            autopower=result.autopower[hostname],
            model=models[model_name])
        for model_name, hostname in targets.items()
    }
    print(ValidationSummary.from_reports(reports).to_text())
    return 0


def _cmd_rate_study(args) -> int:
    from repro.network import FleetTrafficModel, build_switch_like_network
    from repro.sleep import plan_rate_adaptation

    network = build_switch_like_network(
        rng=np.random.default_rng(args.seed))
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(args.seed + 1), n_demands=800)
    plan = plan_rate_adaptation(network, traffic.matrix,
                                headroom=args.headroom)
    reference = network.total_wall_power_w()
    downgraded = plan.downgraded()
    print(f"internal links      : {len(network.internal_links())}")
    print(f"links clocked down  : {len(downgraded)}")
    print(f"estimated savings   : {plan.total_saving_w:.0f} W "
          f"({100 * plan.total_saving_w / reference:.2f} % of "
          f"{reference:,.0f} W)")
    for decision in downgraded[:10]:
        print(f"  link {decision.link_id:4d}: "
              f"{decision.old_speed_gbps:g}G -> "
              f"{decision.new_speed_gbps:g}G  "
              f"(-{decision.saving_w:.2f} W)")
    if len(downgraded) > 10:
        print(f"  ... and {len(downgraded) - 10} more")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro import bench

    if args.quick:
        case_names = ("small",)
    elif args.cases:
        unknown = [c for c in args.cases if c not in bench.CASES]
        if unknown:
            print(f"error: unknown bench cases {unknown}; "
                  f"choose from {sorted(bench.CASES)}", file=sys.stderr)
            return 2
        case_names = args.cases
    else:
        case_names = bench.DEFAULT_CASES
    if args.steps is not None and args.steps <= 0:
        print("error: --steps must be positive", file=sys.stderr)
        return 2
    output = Path(args.output)
    if output.parent and not output.parent.is_dir():
        print(f"error: output directory {output.parent} does not exist",
              file=sys.stderr)
        return 2
    bench.run_benchmarks(case_names, seed=args.seed, output=output,
                         steps_override=args.steps)
    return 0


_COMMANDS = {
    "derive": _cmd_derive,
    "audit": _cmd_audit,
    "sleep-study": _cmd_sleep_study,
    "datasheets": _cmd_datasheets,
    "zoo": _cmd_zoo,
    "validate": _cmd_validate,
    "rate-study": _cmd_rate_study,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
