"""Benchmark harness for the fleet-simulation engines.

Times the original per-object simulation loop against the vectorized
columnar engine (:mod:`repro.network.engine`) on fleets of increasing
size, checks that the two engines agree on the total-power trace, and
writes a machine-readable report (``BENCH_simulation.json`` by default).

Run it as a module::

    python -m repro.bench --quick          # small fleet only, seconds
    python -m repro.bench                  # small + medium, ~2 minutes
    python -m repro.bench --cases large    # 214 routers x 10k steps

or through the CLI: ``repro bench --quick``.

Each case builds two *independent* fleets from the same seeds (one per
engine) so neither run perturbs the other's RNG streams or object state;
equal seeds guarantee the fleets are identical, and the report records
the maximum relative difference between the two total-power traces.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import units
from repro.network import (
    FleetConfig,
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)
from repro.obs import tracing

#: Simulation step used by every benchmark case (the SNMP poll period).
STEP_S = 300.0

#: Report schema identifier, bumped on layout changes.  v2 added the
#: per-phase timings (build / run per engine, cross-check) taken from
#: the observability spans.  v3 records the seed on every case entry and
#: merges subset runs into an existing report instead of discarding the
#: cases that were not re-run.
SCHEMA = "repro.bench.simulation/v3"


@dataclass(frozen=True)
class BenchCase:
    """One fleet size / duration combination to time."""

    name: str
    config: FleetConfig
    n_steps: int
    #: Demands drawn by the traffic model (None = model default).
    n_demands: Optional[int] = None


def _scaled_counts(factor: int) -> tuple:
    return tuple((name, count * factor)
                 for name, count in FleetConfig.model_counts)


#: The benchmark suite, smallest first.  ``small`` finishes in seconds
#: and is what ``--quick`` (and the smoke test) runs; ``large`` is the
#: 2x-fleet, 10k-step case the >=10x speedup target is measured on.
CASES: Dict[str, BenchCase] = {
    "small": BenchCase(
        name="small",
        config=FleetConfig(
            model_counts=(
                ("8201-32FH", 2),
                ("NCS-55A1-24H", 2),
                ("NCS-55A1-24Q6H-SS", 2),
                ("ASR-920-24SZ-M", 4),
                ("N540-24Z8Q2C-M", 2),
            ),
            n_regional_pops=2,
            core_core_links=2,
        ),
        n_steps=300,
        n_demands=40,
    ),
    "medium": BenchCase(
        name="medium",
        config=FleetConfig(),
        n_steps=2000,
    ),
    "large": BenchCase(
        name="large",
        config=FleetConfig(
            model_counts=_scaled_counts(2),
            n_regional_pops=26,
            core_core_links=8,
        ),
        n_steps=10000,
    ),
}

DEFAULT_CASES = ("small", "medium")


def _build_simulation(case: BenchCase, seed: int) -> NetworkSimulation:
    """A fresh fleet + traffic + simulation from three derived seeds."""
    network = build_switch_like_network(
        case.config, rng=np.random.default_rng(seed))
    kwargs = {} if case.n_demands is None else {"n_demands": case.n_demands}
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(seed + 1), **kwargs)
    return NetworkSimulation(
        network, traffic, rng=np.random.default_rng(seed + 2))


def run_case(case: BenchCase, seed: int,
             steps_override: Optional[int] = None) -> Dict:
    """Time both engines on one case and return its report entry.

    Timing comes from :mod:`repro.obs.tracing` spans -- one ``bench.case``
    root with ``bench.build`` / ``bench.run`` children per engine and a
    ``bench.crosscheck`` tail -- so a ``--trace-out`` run shows the same
    numbers the report records.  A private tracer is installed when none
    is active, keeping the span durations available either way.
    """
    if tracing.enabled():
        return _run_case_traced(case, seed, steps_override)
    with tracing.use_tracer(tracing.Tracer()):
        return _run_case_traced(case, seed, steps_override)


def _run_case_traced(case: BenchCase, seed: int,
                     steps_override: Optional[int] = None) -> Dict:
    n_steps = steps_override if steps_override else case.n_steps
    duration_s = n_steps * STEP_S

    timings: Dict[str, Dict[str, float]] = {}
    phases: Dict = {}
    traces: Dict[str, np.ndarray] = {}
    fleet_shape: Dict[str, int] = {}
    with tracing.span("bench.case", case=case.name, n_steps=n_steps,
                      seed=seed):
        for engine in ("object", "vector"):
            with tracing.span("bench.build", engine=engine) as build_span:
                sim = _build_simulation(case, seed)
            if not fleet_shape:
                fleet_shape = {
                    "routers": len(sim.network.routers),
                    "ports": sum(len(r.ports)
                                 for r in sim.network.routers.values()),
                    "links": len(sim.network.links),
                }
            with tracing.span("bench.run", engine=engine) as run_span:
                result = sim.run(duration_s=duration_s, step_s=STEP_S,
                                 engine=engine)
            wall_s = run_span.duration_s
            timings[engine] = {
                "wall_s": round(wall_s, 4),
                "ms_per_step": round(units.s_to_ms(wall_s) / n_steps, 4),
            }
            phases[engine] = {
                "build_s": round(build_span.duration_s, 4),
                "run_s": round(run_span.duration_s, 4),
            }
            traces[engine] = result.total_power.values

        with tracing.span("bench.crosscheck") as check_span:
            obj, vec = traces["object"], traces["vector"]
            rel_err = float(np.max(
                np.abs(vec - obj) / np.maximum(np.abs(obj), 1e-12)))
        phases["crosscheck_s"] = round(check_span.duration_s, 6)
    return {
        "name": case.name,
        **fleet_shape,
        "seed": seed,
        "n_steps": n_steps,
        "step_s": STEP_S,
        "object": timings["object"],
        "vector": timings["vector"],
        "phases": phases,
        "speedup": round(
            timings["object"]["wall_s"] / timings["vector"]["wall_s"], 2),
        "total_power_max_rel_err": rel_err,
    }


def previous_cases(output: Path) -> Dict[str, Dict]:
    """Case entries from an existing same-schema report at ``output``.

    Empty when the file is missing, unreadable, or from another schema
    version -- a subset run must never graft entries whose layout (or
    semantics) no longer matches onto a fresh report.  Shared with the
    sweep runner, which writes its per-job timing rows in this schema.
    """
    if not output.exists():
        return {}
    try:
        previous = json.loads(output.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if not isinstance(previous, dict) or previous.get("schema") != SCHEMA:
        return {}
    cases = previous.get("cases")
    if not isinstance(cases, list):
        return {}
    return {c["name"]: c for c in cases
            if isinstance(c, dict) and isinstance(c.get("name"), str)}


def run_benchmarks(case_names: Sequence[str], seed: int,
                   output: Path,
                   steps_override: Optional[int] = None,
                   stream: Optional[object] = None) -> Dict:
    """Run the named cases, print a summary line each, write the report.

    A subset run (``--quick``, ``--cases small``) merges into an existing
    report at ``output``: re-run cases replace their previous entries,
    the rest are kept, and the result stays in suite order -- so timing
    one case never silently discards the ``large`` numbers from the last
    full run.
    """
    stream = stream if stream is not None else sys.stdout
    merged = previous_cases(output)
    kept = [name for name in merged if name not in case_names]
    entries: List[Dict] = []
    for name in case_names:
        case = CASES[name]
        print(f"[{name}] {case.config.n_routers} routers, "
              f"{steps_override or case.n_steps} steps ...",
              file=stream, flush=True)
        entry = run_case(case, seed, steps_override=steps_override)
        entries.append(entry)
        merged[name] = entry
        print(f"[{name}] object {entry['object']['wall_s']:.2f}s, "
              f"vector {entry['vector']['wall_s']:.2f}s "
              f"-> {entry['speedup']:.1f}x "
              f"(max rel err {entry['total_power_max_rel_err']:.2e})",
              file=stream, flush=True)
    order = {name: i for i, name in enumerate(CASES)}
    report = {
        "schema": SCHEMA,
        "generated_by": "python -m repro.bench",
        "seed": seed,
        "step_s": STEP_S,
        "cases": sorted(merged.values(),
                        key=lambda c: (order.get(c["name"], len(order)),
                                       c["name"])),
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    if kept:
        print(f"kept previous entries for: {', '.join(sorted(kept))}",
              file=stream)
    print(f"report written to {output}", file=stream)
    return report


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the object vs vectorized simulation engines.")
    parser.add_argument("--quick", action="store_true",
                        help="run only the small case (a few seconds)")
    parser.add_argument("--cases", nargs="+", choices=sorted(CASES),
                        metavar="CASE",
                        help=f"cases to run (default: {' '.join(DEFAULT_CASES)}"
                             "; choices: %(choices)s)")
    parser.add_argument("--steps", type=int, default=None,
                        help="override the per-case step count")
    parser.add_argument("--seed", type=int, default=7,
                        help="base RNG seed (default: %(default)s)")
    parser.add_argument("--output", "-o", type=Path,
                        default=Path("BENCH_simulation.json"),
                        help="report path (default: %(default)s)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for the engine benchmark harness."""
    args = _parser().parse_args(argv)
    if args.quick:
        case_names: Sequence[str] = ("small",)
    elif args.cases:
        case_names = args.cases
    else:
        case_names = DEFAULT_CASES
    if args.steps is not None and args.steps <= 0:
        print("--steps must be positive", file=sys.stderr)
        return 2
    parent = args.output.parent
    if parent and not parent.is_dir():
        # Fail before the benchmarks run, not after minutes of timing.
        print(f"output directory {parent} does not exist", file=sys.stderr)
        return 2
    run_benchmarks(case_names, seed=args.seed, output=args.output,
                   steps_override=args.steps)
    return 0


if __name__ == "__main__":
    sys.exit(main())
