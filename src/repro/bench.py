"""Benchmark harness for the fleet-simulation engines.

Times the original per-object simulation loop against the vectorized
columnar engine (:mod:`repro.network.engine`) on fleets of increasing
size, checks that the two engines agree on the total-power trace, and
writes a machine-readable report (``BENCH_simulation.json`` by default).

Run it as a module::

    python -m repro.bench --quick          # small fleet only, seconds
    python -m repro.bench                  # small + medium, ~2 minutes
    python -m repro.bench --cases large    # 214 routers x 10k steps
    python -m repro.bench --cases xl xxl   # synthetic 1k / 10k fleets

or through the CLI: ``repro bench --quick``.

Each case builds *independent* fleets from the same seeds (one per
engine) so neither run perturbs the other's RNG streams or object state;
equal seeds guarantee the fleets are identical, and the report records
the maximum relative difference between the two total-power traces.
Cases above ``xl`` run the vector engine only -- the object loop is
O(ports) of Python per step and would take the better part of an hour
at 10k routers -- and each entry records why in ``object_skipped``.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.network import (
    FleetConfig,
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
    generate_synth_network,
    synth_config,
)
from repro.obs import profile, tracing

#: Simulation step used by every benchmark case (the SNMP poll period).
STEP_S = 300.0

#: Report schema identifier, bumped on layout changes.  v2 added the
#: per-phase timings (build / run per engine, cross-check) taken from
#: the observability spans.  v3 records the seed on every case entry and
#: merges subset runs into an existing report instead of discarding the
#: cases that were not re-run.  v4 adds the synthetic-topology cases:
#: per-case engine lists (``object``/``vector`` entries are ``null`` for
#: engines that did not run), columnar memory-footprint fields, the SNMP
#: poll period, and a per-1k-router ms/step normalization.  v5 adds the
#: per-case ``attribution`` block (a second vector run with the energy
#: ledger attached: ms/step, the delta against the plain vector run, the
#: overhead fraction, and the ledger's conservation residual) on cases
#: flagged for it; unflagged cases carry ``null``.  v6 adds a
#: ``profile`` block to every engine entry -- per-kernel call counts and
#: cumulative/self milliseconds from the kernel profiler attached around
#: each timed run -- which the regression sentinel (``--compare``,
#: :func:`compare_reports`) diffs against a baseline report.
SCHEMA = "repro.bench.simulation/v6"

#: Schema identifier on ``BENCH_history.jsonl`` trajectory lines.
HISTORY_SCHEMA = "repro.bench.history/v1"

#: Default regression tolerance: a metric more than this fraction above
#: its baseline fails the comparison (0.15 trips on a 20% slowdown with
#: margin for timer noise; CI passes a looser value on shared runners).
DEFAULT_TOLERANCE = 0.15

#: Kernels whose baseline cumulative time is below this floor are
#: skipped by the comparison -- sub-millisecond kernels are timer noise.
DEFAULT_MIN_KERNEL_MS = 5.0


@dataclass(frozen=True)
class BenchCase:
    """One fleet size / duration combination to time."""

    name: str
    n_steps: int
    #: Paper fleet to build (mutually exclusive with ``synth``).
    config: Optional[FleetConfig] = None
    #: Synthetic preset name (:data:`repro.network.SYNTH_PRESETS`).
    synth: Optional[str] = None
    #: Demands drawn by the traffic model (None = model default).
    n_demands: Optional[int] = None
    #: Engines timed for this case, in run order.
    engines: Tuple[str, ...] = ("object", "vector")
    #: Recorded in the report when the object engine is not run.
    object_skipped: Optional[str] = None
    #: SNMP poll period override (None = every 300 s step).
    snmp_period_s: Optional[float] = None
    #: Also time a vector run with the energy ledger attached and
    #: record the attribution overhead block.
    attribution: bool = False


def _scaled_counts(factor: int) -> tuple:
    return tuple((name, count * factor)
                 for name, count in FleetConfig.model_counts)


_OBJECT_SKIP_REASON = (
    "object engine is O(ports) Python per step; estimated well over "
    "30 min at this size -- xl is the last cross-checked rung")

#: The benchmark suite, smallest first.  ``small`` finishes in seconds
#: and is what ``--quick`` (and the smoke test) runs; ``large`` is the
#: 2x-fleet, 10k-step case the >=10x speedup target is measured on; the
#: synthetic rungs (``xl``/``xxl``/``xxxl``) exercise the generator from
#: :mod:`repro.network.synth` at 1k/10k/100k routers.  ``xxxl`` is
#: opt-in (never in :data:`DEFAULT_CASES`): pass ``--cases xxxl``.
CASES: Dict[str, BenchCase] = {
    "small": BenchCase(
        name="small",
        config=FleetConfig(
            model_counts=(
                ("8201-32FH", 2),
                ("NCS-55A1-24H", 2),
                ("NCS-55A1-24Q6H-SS", 2),
                ("ASR-920-24SZ-M", 4),
                ("N540-24Z8Q2C-M", 2),
            ),
            n_regional_pops=2,
            core_core_links=2,
        ),
        n_steps=300,
        n_demands=40,
    ),
    "medium": BenchCase(
        name="medium",
        config=FleetConfig(),
        n_steps=2000,
    ),
    "large": BenchCase(
        name="large",
        config=FleetConfig(
            model_counts=_scaled_counts(2),
            n_regional_pops=26,
            core_core_links=8,
        ),
        n_steps=10000,
        attribution=True,
    ),
    "xl": BenchCase(
        name="xl",
        synth="synth-1k",
        n_steps=600,
    ),
    "xxl": BenchCase(
        name="xxl",
        synth="synth-10k",
        n_steps=2000,
        engines=("vector",),
        object_skipped=_OBJECT_SKIP_REASON,
        snmp_period_s=3600.0,
        attribution=True,
    ),
    "xxxl": BenchCase(
        name="xxxl",
        synth="synth-100k",
        n_steps=50,
        n_demands=400,
        engines=("vector",),
        object_skipped=_OBJECT_SKIP_REASON,
        snmp_period_s=7200.0,
    ),
}

DEFAULT_CASES = ("small", "medium")


def _case_routers(case: BenchCase) -> int:
    """Router count a case will build, for the progress line."""
    if case.synth is not None:
        return synth_config(case.synth).n_routers
    config = case.config if case.config is not None else FleetConfig()
    return config.n_routers


def _build_simulation(case: BenchCase, seed: int) -> NetworkSimulation:
    """A fresh fleet + traffic + simulation from three derived seeds."""
    if case.synth is not None:
        network = generate_synth_network(
            synth_config(case.synth), rng=np.random.default_rng(seed))
    else:
        network = build_switch_like_network(
            case.config, rng=np.random.default_rng(seed))
    kwargs = {} if case.n_demands is None else {"n_demands": case.n_demands}
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(seed + 1), **kwargs)
    return NetworkSimulation(
        network, traffic, rng=np.random.default_rng(seed + 2))


def run_case(case: BenchCase, seed: int,
             steps_override: Optional[int] = None) -> Dict:
    """Time a case's engines and return its report entry.

    Timing comes from :mod:`repro.obs.tracing` spans -- one ``bench.case``
    root with ``bench.build`` / ``bench.run`` children per engine and a
    ``bench.crosscheck`` tail -- so a ``--trace-out`` run shows the same
    numbers the report records.  A private tracer is installed when none
    is active, keeping the span durations available either way.
    """
    if tracing.enabled():
        return _run_case_traced(case, seed, steps_override)
    with tracing.use_tracer(tracing.Tracer()):
        return _run_case_traced(case, seed, steps_override)


def _engine_entry(wall_s: float, n_steps: int, routers: int,
                  prof: Optional[profile.Profiler] = None) -> Dict:
    """Timing dict for one engine run.

    ``ms_per_step`` is wall time over the step count, so one-time costs
    (fleet build happens outside this span, but columnar init and the
    final sensor export do not) amortize across the run the same way
    they do in production sweeps.  ``ms_per_step_per_1k_routers``
    normalizes by fleet size -- the number that must hold roughly flat
    (or shrink) up the ladder for scaling to be sublinear.  With a
    profiler, the entry carries a per-kernel ``profile`` block (calls,
    cumulative and self milliseconds) the regression sentinel diffs.
    """
    ms_per_step = units.s_to_ms(wall_s) / n_steps
    entry = {
        "wall_s": round(wall_s, 4),
        "ms_per_step": round(ms_per_step, 4),
        "ms_per_step_per_1k_routers": round(
            ms_per_step * units.KILO / routers, 4),
    }
    if prof is not None:
        entry["profile"] = {
            name: {
                "calls": stats["calls"],
                "cum_ms": round(units.s_to_ms(stats["cum_s"]), 3),
                "self_ms": round(units.s_to_ms(stats["self_s"]), 3),
            }
            for name, stats in prof.to_dict()["kernels"].items()
        }
    return entry


def _run_case_traced(case: BenchCase, seed: int,
                     steps_override: Optional[int] = None) -> Dict:
    n_steps = steps_override if steps_override else case.n_steps
    duration_s = n_steps * STEP_S
    snmp_period_s = float(case.snmp_period_s if case.snmp_period_s is not None
                          else units.SNMP_POLL_PERIOD_S)

    timings: Dict[str, Optional[Dict]] = {"object": None, "vector": None}
    phases: Dict = {}
    traces: Dict[str, np.ndarray] = {}
    fleet_shape: Dict[str, int] = {}
    memory: Optional[Dict] = None
    session_prof = profile.get_profiler()
    with tracing.span("bench.case", case=case.name, n_steps=n_steps,
                      seed=seed):
        for engine in case.engines:
            with tracing.span("bench.build", engine=engine) as build_span:
                sim = _build_simulation(case, seed)
            if not fleet_shape:
                fleet_shape = {
                    "routers": len(sim.network.routers),
                    "ports": sum(len(r.ports)
                                 for r in sim.network.routers.values()),
                    "links": len(sim.network.links),
                }
            # Each timed run gets a private profiler so its per-kernel
            # totals land in the report entry; stats merge into the
            # session profiler (--profile-out) afterwards.
            prof = profile.Profiler()
            with tracing.span("bench.run", engine=engine) as run_span:
                with profile.use_profiler(prof):
                    result = sim.run(duration_s=duration_s, step_s=STEP_S,
                                     snmp_period_s=snmp_period_s,
                                     engine=engine)
            if session_prof is not None:
                session_prof.merge(prof)
            timings[engine] = _engine_entry(run_span.duration_s, n_steps,
                                            fleet_shape["routers"], prof)
            phases[engine] = {
                "build_s": round(build_span.duration_s, 4),
                "run_s": round(run_span.duration_s, 4),
            }
            traces[engine] = result.total_power.values
            if engine == "vector" and sim.last_vector_engine is not None:
                footprint = sim.last_vector_engine.state.memory_footprint()
                # ru_maxrss is KiB on Linux; a process-lifetime high-water
                # mark, so it includes the object fleet and earlier cases.
                peak_rss = resource.getrusage(
                    resource.RUSAGE_SELF).ru_maxrss * 1024
                memory = {
                    "state_bytes": int(footprint["bytes_total"]),
                    "state_bytes_per_router": round(
                        footprint["bytes_per_router"], 1),
                    "peak_rss_bytes": int(peak_rss),
                }

        rel_err: Optional[float] = None
        if "object" in traces and "vector" in traces:
            with tracing.span("bench.crosscheck") as check_span:
                obj, vec = traces["object"], traces["vector"]
                rel_err = float(np.max(
                    np.abs(vec - obj) / np.maximum(np.abs(obj), 1e-12)))
            phases["crosscheck_s"] = round(check_span.duration_s, 6)

        attribution: Optional[Dict] = None
        if case.attribution and timings["vector"] is not None:
            # A second vector run with the energy ledger attached; the
            # delta against the plain run is the attribution overhead.
            with tracing.span("bench.build", engine="vector+ledger"):
                sim = _build_simulation(case, seed)
            # Private profiler here too, so the attribution delta
            # compares two runs carrying the same profiling overhead.
            attr_prof = profile.Profiler()
            with tracing.span("bench.run",
                              engine="vector+ledger") as attr_span:
                with profile.use_profiler(attr_prof):
                    attr_result = sim.run(duration_s=duration_s,
                                          step_s=STEP_S,
                                          snmp_period_s=snmp_period_s,
                                          engine="vector",
                                          attribution=True)
            if session_prof is not None:
                session_prof.merge(attr_prof)
            ms_on = units.s_to_ms(attr_span.duration_s) / n_steps
            ms_off = timings["vector"]["ms_per_step"]
            ledger = attr_result.ledger
            assert ledger is not None
            attribution = {
                "ms_per_step": round(ms_on, 4),
                "ms_per_step_delta": round(ms_on - ms_off, 4),
                "overhead_fraction": (round(ms_on / ms_off - 1.0, 4)
                                      if ms_off > 0 else None),
                "max_residual_w": ledger.max_residual_w,
                "conserved": ledger.conserved(),
                "power_bitwise_identical": bool(np.array_equal(
                    attr_result.total_power.values, traces["vector"])),
            }
            phases["attribution_s"] = round(attr_span.duration_s, 4)
    obj_t, vec_t = timings["object"], timings["vector"]
    entry = {
        "name": case.name,
        **fleet_shape,
        "seed": seed,
        "n_steps": n_steps,
        "step_s": STEP_S,
        "snmp_period_s": snmp_period_s,
        "engines": list(case.engines),
        "object": obj_t,
        "vector": vec_t,
        "memory": memory,
        "phases": phases,
        "speedup": (round(obj_t["wall_s"] / vec_t["wall_s"], 2)
                    if obj_t and vec_t else None),
        "total_power_max_rel_err": rel_err,
        "attribution": attribution,
    }
    if case.object_skipped is not None:
        entry["object_skipped"] = case.object_skipped
    return entry


def previous_cases(output: Path) -> Dict[str, Dict]:
    """Case entries from an existing same-schema report at ``output``.

    Empty when the file is missing, unreadable, or from another schema
    version -- a subset run must never graft entries whose layout (or
    semantics) no longer matches onto a fresh report.  Shared with the
    sweep runner, which writes its per-job timing rows in this schema.
    """
    if not output.exists():
        return {}
    try:
        previous = json.loads(output.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if not isinstance(previous, dict) or previous.get("schema") != SCHEMA:
        return {}
    cases = previous.get("cases")
    if not isinstance(cases, list):
        return {}
    return {c["name"]: c for c in cases
            if isinstance(c, dict) and isinstance(c.get("name"), str)}


def _compare_metric(regressions: List[Dict], improvements: List[Dict],
                    case: str, engine: str, metric: str,
                    base_value: Optional[float],
                    cur_value: Optional[float],
                    tolerance: float) -> int:
    """Classify one metric pair; returns 1 if it was comparable."""
    if not base_value or cur_value is None:
        return 0
    ratio = cur_value / base_value
    entry = {
        "case": case, "engine": engine, "metric": metric,
        "baseline": base_value, "current": cur_value,
        "ratio": round(ratio, 4),
    }
    if ratio > 1.0 + tolerance:
        regressions.append(entry)
    elif ratio < 1.0 / (1.0 + tolerance):
        improvements.append(entry)
    return 1


def compare_reports(current: Dict, baseline: Dict,
                    tolerance: float = DEFAULT_TOLERANCE,
                    min_kernel_ms: float = DEFAULT_MIN_KERNEL_MS) -> Dict:
    """Diff a bench report against a baseline report.

    Compares ``ms_per_step`` and ``ms_per_step_per_1k_routers`` per
    case and engine, plus per-kernel cumulative milliseconds from the
    v6 ``profile`` blocks (kernels whose baseline total is under
    ``min_kernel_ms`` are skipped as timer noise).  A metric more than
    ``tolerance`` (fractional) above its baseline is a regression; more
    than the inverse below, an improvement.  Cases or kernels present
    on only one side are ignored -- the sentinel guards what both runs
    measured.

    Raises :class:`ValueError` when either report is from a different
    schema version; a layout change invalidates the comparison.
    """
    for label, report in (("current", current), ("baseline", baseline)):
        if report.get("schema") != SCHEMA:
            raise ValueError(
                f"{label} report schema {report.get('schema')!r} != "
                f"{SCHEMA!r}; regenerate the baseline")
    base_cases = {c["name"]: c for c in baseline.get("cases", [])}
    regressions: List[Dict] = []
    improvements: List[Dict] = []
    checked = 0
    for entry in current.get("cases", []):
        base = base_cases.get(entry["name"])
        if base is None:
            continue
        for engine in ("object", "vector"):
            cur_t, base_t = entry.get(engine), base.get(engine)
            if not cur_t or not base_t:
                continue
            for metric in ("ms_per_step", "ms_per_step_per_1k_routers"):
                checked += _compare_metric(
                    regressions, improvements, entry["name"], engine,
                    metric, base_t.get(metric), cur_t.get(metric),
                    tolerance)
            cur_prof = cur_t.get("profile") or {}
            base_prof = base_t.get("profile") or {}
            for kernel in sorted(set(cur_prof) & set(base_prof)):
                base_ms = base_prof[kernel].get("cum_ms")
                if base_ms is None or base_ms < min_kernel_ms:
                    continue
                checked += _compare_metric(
                    regressions, improvements, entry["name"], engine,
                    f"kernel:{kernel}", base_ms,
                    cur_prof[kernel].get("cum_ms"), tolerance)
    return {
        "tolerance": tolerance,
        "min_kernel_ms": min_kernel_ms,
        "checked": checked,
        "regressions": regressions,
        "improvements": improvements,
    }


def render_comparison(comparison: Dict, stream: object) -> None:
    """Print a comparison result as human-readable lines."""
    for kind in ("regressions", "improvements"):
        for item in comparison[kind]:
            arrow = "REGRESSION" if kind == "regressions" else "improved"
            print(f"{arrow}: [{item['case']}] {item['engine']} "
                  f"{item['metric']}: {item['baseline']} -> "
                  f"{item['current']} ({item['ratio']:.2f}x)",
                  file=stream)
    print(f"compared {comparison['checked']} metrics at "
          f"+/-{comparison['tolerance']:.0%} tolerance: "
          f"{len(comparison['regressions'])} regressions, "
          f"{len(comparison['improvements'])} improvements",
          file=stream)


def _history_entry(report: Dict) -> Dict:
    """One compact trajectory line for ``BENCH_history.jsonl``.

    Per case and engine: the two normalized step timings plus per-kernel
    cumulative milliseconds.  No wall-clock date -- the file is
    append-only, so line order *is* the trajectory, and the surrounding
    commit supplies the calendar.
    """
    cases: Dict[str, Dict] = {}
    for entry in report.get("cases", []):
        engines: Dict[str, Dict] = {}
        for engine in ("object", "vector"):
            timing = entry.get(engine)
            if not timing:
                continue
            engines[engine] = {
                "ms_per_step": timing.get("ms_per_step"),
                "ms_per_step_per_1k_routers": timing.get(
                    "ms_per_step_per_1k_routers"),
                "kernel_cum_ms": {
                    name: stats.get("cum_ms")
                    for name, stats in (timing.get("profile")
                                        or {}).items()},
            }
        cases[entry["name"]] = engines
    return {"schema": HISTORY_SCHEMA, "seed": report.get("seed"),
            "cases": cases}


def append_history(history_path: Path, report: Dict) -> Path:
    """Append the report's trajectory line to ``history_path``."""
    line = json.dumps(_history_entry(report), sort_keys=True)
    with history_path.open("a") as fh:
        fh.write(line + "\n")
    return history_path


def _summary_line(entry: Dict) -> str:
    """One human line per finished case, engines present or not."""
    parts = []
    for engine in ("object", "vector"):
        timing = entry.get(engine)
        if timing:
            parts.append(f"{engine} {timing['wall_s']:.2f}s "
                         f"({timing['ms_per_step']:.2f} ms/step)")
    line = ", ".join(parts)
    if entry.get("speedup") is not None:
        line += f" -> {entry['speedup']:.1f}x"
    if entry.get("total_power_max_rel_err") is not None:
        line += f" (max rel err {entry['total_power_max_rel_err']:.2e})"
    memory = entry.get("memory")
    if memory:
        line += (f", columnar state "
                 f"{memory['state_bytes'] / units.MEGA:.1f} MB")
    attribution = entry.get("attribution")
    if attribution:
        line += (f", ledger +{attribution['ms_per_step_delta']:.2f} ms/step "
                 f"({attribution['overhead_fraction']:+.1%})")
    return line


def run_benchmarks(case_names: Sequence[str], seed: int,
                   output: Path,
                   steps_override: Optional[int] = None,
                   stream: Optional[object] = None,
                   history: Optional[Path] = None) -> Dict:
    """Run the named cases, print a summary line each, write the report.

    A subset run (``--quick``, ``--cases small``) merges into an existing
    report at ``output``: re-run cases replace their previous entries,
    the rest are kept, and the result stays in suite order -- so timing
    one case never silently discards the ``large`` numbers from the last
    full run.  With ``history``, a compact trajectory line is appended
    there as well (``BENCH_history.jsonl`` by convention).
    """
    stream = stream if stream is not None else sys.stdout
    merged = previous_cases(output)
    kept = [name for name in merged if name not in case_names]
    entries: List[Dict] = []
    for name in case_names:
        case = CASES[name]
        print(f"[{name}] {_case_routers(case)} routers, "
              f"{steps_override or case.n_steps} steps, "
              f"engines {'+'.join(case.engines)} ...",
              file=stream, flush=True)
        entry = run_case(case, seed, steps_override=steps_override)
        entries.append(entry)
        merged[name] = entry
        print(f"[{name}] {_summary_line(entry)}", file=stream, flush=True)
    order = {name: i for i, name in enumerate(CASES)}
    report = {
        "schema": SCHEMA,
        "generated_by": "python -m repro.bench",
        "seed": seed,
        "step_s": STEP_S,
        "cases": sorted(merged.values(),
                        key=lambda c: (order.get(c["name"], len(order)),
                                       c["name"])),
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    if history is not None:
        append_history(history, report)
        print(f"trajectory appended to {history}", file=stream)
    if kept:
        print(f"kept previous entries for: {', '.join(sorted(kept))}",
              file=stream)
    print(f"report written to {output}", file=stream)
    return report


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the object vs vectorized simulation engines.")
    parser.add_argument("--quick", action="store_true",
                        help="run only the small case (a few seconds)")
    parser.add_argument("--cases", nargs="+", choices=sorted(CASES),
                        metavar="CASE",
                        help=f"cases to run (default: {' '.join(DEFAULT_CASES)}"
                             "; choices: %(choices)s)")
    parser.add_argument("--steps", type=int, default=None,
                        help="override the per-case step count")
    parser.add_argument("--seed", type=int, default=7,
                        help="base RNG seed (default: %(default)s)")
    parser.add_argument("--output", "-o", type=Path,
                        default=Path("BENCH_simulation.json"),
                        help="report path (default: %(default)s)")
    parser.add_argument("--compare", type=Path, default=None,
                        metavar="BASELINE",
                        help="after running, diff the report against this "
                             "baseline report; exit 1 on regression")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="fractional slowdown tolerated by --compare "
                             "(default: %(default)s)")
    parser.add_argument("--min-kernel-ms", type=float,
                        default=DEFAULT_MIN_KERNEL_MS,
                        help="skip kernels whose baseline total is below "
                             "this in --compare (default: %(default)s)")
    parser.add_argument("--history", type=Path, default=None,
                        help="trajectory file to append to (default: "
                             "BENCH_history.jsonl next to the report; "
                             "'-' disables)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for the engine benchmark harness."""
    args = _parser().parse_args(argv)
    if args.quick:
        case_names: Sequence[str] = ("small",)
    elif args.cases:
        case_names = args.cases
    else:
        case_names = DEFAULT_CASES
    if args.steps is not None and args.steps <= 0:
        print("--steps must be positive", file=sys.stderr)
        return 2
    parent = args.output.parent
    if parent and not parent.is_dir():
        # Fail before the benchmarks run, not after minutes of timing.
        print(f"output directory {parent} does not exist", file=sys.stderr)
        return 2
    if args.tolerance <= 0:
        print("--tolerance must be positive", file=sys.stderr)
        return 2
    baseline: Optional[Dict] = None
    if args.compare is not None:
        # Fail on a bad baseline before the benchmarks run.
        try:
            baseline = json.loads(args.compare.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            print(f"cannot read baseline {args.compare}: {exc}",
                  file=sys.stderr)
            return 2
        if (not isinstance(baseline, dict)
                or baseline.get("schema") != SCHEMA):
            print(f"baseline {args.compare} is not a {SCHEMA} report",
                  file=sys.stderr)
            return 2
    if args.history is None:
        history: Optional[Path] = args.output.parent / "BENCH_history.jsonl"
    elif str(args.history) == "-":
        history = None
    else:
        history = args.history
    report = run_benchmarks(case_names, seed=args.seed, output=args.output,
                            steps_override=args.steps, history=history)
    if baseline is not None:
        comparison = compare_reports(report, baseline,
                                     tolerance=args.tolerance,
                                     min_kernel_ms=args.min_kernel_ms)
        render_comparison(comparison, sys.stdout)
        if comparison["regressions"]:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
