"""Figure-data generators: every paper figure as plain, plottable data.

The benchmarks *verify* each figure's shape; this module *exports* the
underlying series so downstream users can plot them with whatever they
like (the environment here has no plotting stack on purpose).  Each
generator returns a :class:`FigureData`: named columns of equal length,
writable as CSV.

Heavy inputs (a simulated campaign, fitted models, the datasheet corpus)
are passed in -- see ``benchmarks/conftest.py`` for how they are built.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro import units
from repro.datasheets import asic_trend_points, efficiency_trend
from repro.hardware.psu import EIGHTY_PLUS_SET_POINTS, PFE600_CURVE
from repro.psu_opt import PsuPoint, efficiency_scatter
from repro.telemetry.traces import TimeSeries


@dataclass
class FigureData:
    """Columnar data behind one figure."""

    name: str
    columns: Dict[str, Sequence] = field(default_factory=dict)
    notes: str = ""

    def __post_init__(self):
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"{self.name}: columns have unequal lengths {sorted(lengths)}")

    @property
    def n_rows(self) -> int:
        """Rows in the figure's table."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def to_csv(self) -> str:
        """Render as CSV (header + rows)."""
        headers = list(self.columns)
        out = io.StringIO()
        out.write(",".join(headers) + "\n")
        for i in range(self.n_rows):
            row = []
            for header in headers:
                value = self.columns[header][i]
                if isinstance(value, float):
                    row.append(f"{value:.6g}")
                else:
                    row.append(str(value))
            out.write(",".join(row) + "\n")
        return out.getvalue()


def _series_columns(series: TimeSeries, value_name: str) -> Dict[str, list]:
    return {"t_s": series.timestamps.tolist(),
            value_name: series.values.tolist()}


def fig1_data(total_power: TimeSeries, total_traffic_bps: TimeSeries,
              window_s: float = units.hours(3)) -> FigureData:
    """Fig. 1: network total power and traffic, window-averaged."""
    power = total_power.resample(window_s)
    traffic = total_traffic_bps.resample(window_s)
    n = min(len(power), len(traffic))
    return FigureData(
        name="fig1_network_power_traffic",
        columns={
            "t_s": power.timestamps[:n].tolist(),
            "power_w": power.values[:n].tolist(),
            "traffic_tbps": units.bps_to_tbps(traffic.values[:n]).tolist(),
        },
        notes="paper: ~21.7 kW total, ~1.3 Tbps, correlation invisible")


def fig2a_data() -> FigureData:
    """Fig. 2a: the Broadcom ASIC efficiency trend (redrawn)."""
    points = asic_trend_points()
    return FigureData(
        name="fig2a_asic_efficiency",
        columns={"year": [p[0] for p in points],
                 "w_per_100g": [p[1] for p in points]})


def fig2b_data(parsed: Mapping, release_years: Mapping[str, int],
               ) -> FigureData:
    """Fig. 2b: datasheet efficiency by release year (>100G routers)."""
    points = efficiency_trend(parsed, release_years=release_years)
    return FigureData(
        name="fig2b_datasheet_efficiency",
        columns={
            "model": [p.model for p in points],
            "year": [p.year for p in points],
            "w_per_100g": [p.efficiency_w_per_100g for p in points],
        },
        notes="outliers above 250 W/100G excluded, like the paper's plot")


def fig4_data(autopower: TimeSeries, psu: Optional[TimeSeries],
              model: TimeSeries,
              window_s: float = 30 * units.SECONDS_PER_MINUTE,
              ) -> FigureData:
    """Fig. 4: the three traces for one router, 30-min averaged."""
    external = autopower.resample(window_s)
    grid = external.timestamps
    columns: Dict[str, list] = {
        "t_s": grid.tolist(),
        "autopower_w": external.values.tolist(),
        "model_w": model.valid().align_to(grid).values.tolist(),
    }
    if psu is not None and len(psu.valid()):
        columns["psu_w"] = psu.valid().align_to(grid).values.tolist()
    return FigureData(name="fig4_source_comparison", columns=columns)


def fig5_data(n_points: int = 50) -> FigureData:
    """Fig. 5: the PFE600 curve plus the 80 Plus set points."""
    loads = np.linspace(0.02, 1.0, n_points)
    columns: Dict[str, list] = {
        "load_pct": (100 * loads).tolist(),
        "pfe600_eff_pct": [100 * PFE600_CURVE.efficiency(l) for l in loads],
    }
    for standard, set_points in EIGHTY_PLUS_SET_POINTS.items():
        column = []
        for load in loads:
            exact = set_points.get(round(float(load), 2))
            column.append(100 * exact if exact is not None else "")
        columns[f"setpoint_{standard.value.lower()}"] = column
    return FigureData(name="fig5_psu_curve", columns=columns)


def fig6_data(psu_points: Sequence[PsuPoint],
              router_model: Optional[str] = None) -> FigureData:
    """Fig. 6: the PSU efficiency scatter (optionally one router model)."""
    loads, effs = efficiency_scatter(psu_points, router_model)
    suffix = (router_model or "all").replace(" ", "_")
    return FigureData(
        name=f"fig6_psu_scatter_{suffix}",
        columns={"load_pct": loads.tolist(),
                 "efficiency": effs.tolist()})


def fig8_data(power: TimeSeries,
              window_s: float = units.hours(6)) -> FigureData:
    """Fig. 8: one router's power across an OS update."""
    averaged = power.valid().resample(window_s)
    return FigureData(name="fig8_os_update",
                      columns=_series_columns(averaged, "power_w"))


def fig9_data(autopower: TimeSeries, model: TimeSeries,
              offset_w: float,
              window_s: float = 30 * units.SECONDS_PER_MINUTE,
              ) -> FigureData:
    """Fig. 9: the offset-corrected zoom of Fig. 4."""
    external = autopower.resample(window_s)
    grid = external.timestamps
    corrected = model.shifted(-offset_w).valid().align_to(grid)
    return FigureData(
        name="fig9_offset_corrected",
        columns={
            "t_s": grid.tolist(),
            "autopower_w": external.values.tolist(),
            "model_minus_offset_w": corrected.values.tolist(),
        },
        notes=f"model shifted by {-offset_w:+.2f} W to show precision")


def write_figures(figures: Sequence[FigureData],
                  directory: Union[str, Path]) -> List[str]:
    """Write each figure's CSV into a directory; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for figure in figures:
        path = directory / f"{figure.name}.csv"
        content = figure.to_csv()
        if figure.notes:
            content = f"# {figure.notes}\n" + content
        path.write_text(content)
        paths.append(str(path))
    return paths
