"""PSU efficiency analysis and optimisation estimates (§9).

All four of the paper's what-if estimates operate on the same input: the
one-time PSU sensor export (§9.2) giving, per PSU, one (load, efficiency)
point -- after capping physically impossible readings at 100 %.  The
modelling device is §9.3's assumption that *every PSU's efficiency curve
is the PFE600 curve plus a constant offset* fixed by its observed point.

Estimates implemented:

* :func:`upgrade_savings` -- raise every PSU to at least an 80 Plus level
  (§9.3.2, Table 3 row 1);
* :func:`resize_savings` -- re-provision PSU capacities near the actual
  demand (§9.3.3, Table 4);
* :func:`single_psu_savings` -- stop load-balancing, put the full load on
  one supply (§9.3.4, Table 3 row 2);
* :func:`combined_savings` -- both at once (§9.3.5, Table 3 row 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.psu import (
    EightyPlus,
    EfficiencyCurve,
    OffsetCurve,
    PFE600_CURVE,
    PSU_CAPACITIES_W,
    standard_curve,
)
from repro.obs import metrics
from repro.telemetry.snmp import PsuSensorExport

M_POINTS = metrics.gauge(
    "netpower_psu_points",
    "PSU sensor points surviving the §9.2 cleaning step")
M_POINTS_DROPPED = metrics.counter(
    "netpower_psu_points_dropped_total",
    "PSU sensor readings dropped as dead or inconsistent")
M_SAVINGS_W = metrics.gauge(
    "netpower_psu_savings_watts",
    "Estimated wall-power savings of the last what-if run, by scenario",
    labels=("scenario",))
M_SAVINGS_FRAC = metrics.gauge(
    "netpower_psu_savings_fraction",
    "Estimated fractional savings of the last what-if run, by scenario",
    labels=("scenario",))


@dataclass(frozen=True)
class PsuPoint:
    """One PSU's cleaned observation: load fraction and capped efficiency."""

    router: str
    router_model: str
    psu_index: int
    capacity_w: float
    output_w: float
    input_w: float
    efficiency: float          # capped at 1.0
    load_fraction: float

    def offset_curve(self, base: Optional[EfficiencyCurve] = None,
                     ) -> OffsetCurve:
        """This PSU's assumed curve: base (PFE600) through its point."""
        if base is None:
            base = PFE600_CURVE
        return OffsetCurve.through_point(base, self.load_fraction,
                                         self.efficiency)


def clean_exports(exports: Iterable[PsuSensorExport],
                  min_output_w: float = 1.0) -> List[PsuPoint]:
    """§9.2's data cleaning: cap efficiency at 100 %, drop dead readings."""
    points = []
    for export in exports:
        if export.output_w < min_output_w or export.input_w <= 0:
            M_POINTS_DROPPED.inc()
            continue
        efficiency = min(1.0, export.output_w / export.input_w)
        # Keep input consistent with the capped efficiency so the savings
        # arithmetic never credits physically impossible losses.
        input_w = max(export.input_w, export.output_w)
        points.append(PsuPoint(
            router=export.router, router_model=export.router_model,
            psu_index=export.psu_index, capacity_w=export.capacity_w,
            output_w=export.output_w, input_w=input_w,
            efficiency=efficiency,
            load_fraction=export.output_w / export.capacity_w))
    M_POINTS.set(len(points))
    return points


def total_input_power_w(points: Sequence[PsuPoint]) -> float:
    """Total wall power of the observed PSU population."""
    return sum(p.input_w for p in points)


@dataclass(frozen=True)
class PsuSavings:
    """Result of one what-if estimate."""

    scenario: str
    saved_w: float
    reference_w: float

    @property
    def fraction(self) -> float:
        """Savings as a fraction of the reference wall power."""
        return self.saved_w / self.reference_w if self.reference_w else 0.0

    def __str__(self) -> str:
        return (f"{self.scenario}: {100 * self.fraction:.0f} % "
                f"({self.saved_w:.0f} W)")


def _record(result: PsuSavings) -> PsuSavings:
    M_SAVINGS_W.labels(scenario=result.scenario).set(result.saved_w)
    M_SAVINGS_FRAC.labels(scenario=result.scenario).set(result.fraction)
    return result


# ---------------------------------------------------------------------------
# §9.3.2 -- more efficient PSUs
# ---------------------------------------------------------------------------


def upgrade_savings(points: Sequence[PsuPoint],
                    standard: EightyPlus) -> PsuSavings:
    """Raise every PSU to at least the given 80 Plus level's curve.

    Each PSU keeps its load; its efficiency becomes the maximum of its own
    observed efficiency and the standard's theoretical curve at that load.
    """
    reference = total_input_power_w(points)
    target_curve = standard_curve(standard)
    saved = 0.0
    for point in points:
        target_eff = max(point.efficiency,
                         target_curve.efficiency(point.load_fraction))
        new_input = point.output_w / target_eff
        saved += max(0.0, point.input_w - new_input)
    return _record(PsuSavings(scenario=f"upgrade-{standard.value}",
                              saved_w=saved, reference_w=reference))


# ---------------------------------------------------------------------------
# §9.3.3 -- better-sized PSUs
# ---------------------------------------------------------------------------


def _required_capacity(l_max_w: float, k: float,
                       options: Sequence[float]) -> float:
    """Smallest capacity option covering ``k * l_max`` (§9.3.3's C)."""
    feasible = [c for c in options if c >= k * l_max_w]
    if feasible:
        return min(feasible)
    return max(options)


def resize_savings(points: Sequence[PsuPoint], k: float,
                   min_capacity_w: float,
                   options: Sequence[float] = PSU_CAPACITIES_W) -> PsuSavings:
    """Re-provision every router's PSUs to capacity ``max(C, floor)``.

    ``C`` is the smallest option at least ``k`` times the router's maximum
    per-PSU load; ``k = 2`` keeps single-PSU-failure resilience.  Each PSU
    keeps its own offset curve (fixed by its observed point) and its load
    in watts; only the capacity -- hence the load *fraction* -- changes.
    Negative savings mean the floor over-provisions.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    reference = total_input_power_w(points)
    by_router: Dict[str, List[PsuPoint]] = {}
    for point in points:
        by_router.setdefault(point.router, []).append(point)
    saved = 0.0
    for router_points in by_router.values():
        l_max = max(p.output_w for p in router_points)
        capacity = max(_required_capacity(l_max, k, options), min_capacity_w)
        for point in router_points:
            curve = point.offset_curve()
            new_load = point.output_w / capacity
            new_eff = curve.efficiency(new_load)
            new_input = point.output_w / max(new_eff, 1e-6)
            saved += point.input_w - new_input
    return _record(PsuSavings(
        scenario=f"resize-k{k:g}-min{min_capacity_w:.0f}W",
        saved_w=saved, reference_w=reference))


# ---------------------------------------------------------------------------
# §9.3.4 -- only one PSU
# ---------------------------------------------------------------------------


def single_psu_savings(points: Sequence[PsuPoint],
                       standard: Optional[EightyPlus] = None) -> PsuSavings:
    """Put each router's whole load on its first PSU (§9.3.4).

    The carrying PSU operates at (roughly) the sum of the previous loads;
    its efficiency comes from its offset curve at the new load -- raised
    to an 80 Plus standard's curve when ``standard`` is given (§9.3.5).
    The idle PSU is assumed lossless, as in the paper.
    """
    reference = total_input_power_w(points)
    target_curve = standard_curve(standard) if standard is not None else None
    by_router: Dict[str, List[PsuPoint]] = {}
    for point in points:
        by_router.setdefault(point.router, []).append(point)
    saved = 0.0
    for router_points in by_router.values():
        total_out = sum(p.output_w for p in router_points)
        total_in = sum(p.input_w for p in router_points)
        carrier = router_points[0]
        new_load = min(total_out / carrier.capacity_w, 1.0)
        new_eff = carrier.offset_curve().efficiency(new_load)
        if target_curve is not None:
            new_eff = max(new_eff, target_curve.efficiency(new_load))
        new_input = total_out / max(new_eff, 1e-6)
        saved += total_in - new_input
    scenario = ("single-psu" if standard is None
                else f"single-psu+{standard.value}")
    return _record(PsuSavings(scenario=scenario, saved_w=saved,
                              reference_w=reference))


def combined_savings(points: Sequence[PsuPoint],
                     standard: EightyPlus) -> PsuSavings:
    """§9.3.5: one PSU *and* at least the given efficiency standard."""
    result = single_psu_savings(points, standard=standard)
    return _record(PsuSavings(
        scenario=f"combined-{standard.value}",
        saved_w=result.saved_w, reference_w=result.reference_w))


def hot_standby_savings(points: Sequence[PsuPoint],
                        standby_power_w: float = 5.0,
                        base: Optional[EfficiencyCurve] = None) -> PsuSavings:
    """§9.4's refinement of the single-PSU estimate: keep redundancy.

    The paper notes there is "no technical limitation to implementing
    hot stand-by" -- the second PSU stays powered (so a failover is
    instant) but delivers nothing.  Unlike §9.3.4's idealisation (a
    lossless spare), the standby supply's housekeeping draw is charged:
    a hot-standby converter keeps only its control circuitry and output
    stage alive, a few watts rather than its full idle conversion loss.
    """
    if base is None:
        base = PFE600_CURVE
    if standby_power_w < 0:
        raise ValueError(
            f"standby power must be >= 0, got {standby_power_w}")
    reference = total_input_power_w(points)
    by_router: Dict[str, List[PsuPoint]] = {}
    for point in points:
        by_router.setdefault(point.router, []).append(point)
    saved = 0.0
    for router_points in by_router.values():
        total_out = sum(p.output_w for p in router_points)
        total_in = sum(p.input_w for p in router_points)
        carrier = router_points[0]
        new_load = min(total_out / carrier.capacity_w, 1.0)
        new_eff = carrier.offset_curve(base).efficiency(new_load)
        new_input = total_out / max(new_eff, 1e-6)
        standby = standby_power_w * (len(router_points) - 1)
        saved += total_in - new_input - standby
    return _record(PsuSavings(scenario="hot-standby", saved_w=saved,
                              reference_w=reference))


# ---------------------------------------------------------------------------
# Table builders
# ---------------------------------------------------------------------------


def table3(points: Sequence[PsuPoint]) -> Dict[str, Dict[str, PsuSavings]]:
    """The three rows of Table 3 across the five 80 Plus standards."""
    upgrade_row = {std.value: upgrade_savings(points, std)
                   for std in EightyPlus}
    single = single_psu_savings(points)
    combined_row = {std.value: combined_savings(points, std)
                    for std in EightyPlus}
    return {
        "upgrade": upgrade_row,
        "single_psu": {"Bronze": single},
        "combined": combined_row,
    }


def table4(points: Sequence[PsuPoint],
           options: Sequence[float] = PSU_CAPACITIES_W,
           ) -> Dict[float, Dict[float, PsuSavings]]:
    """Table 4: resize savings for k in {1, 2} x minimum capacity."""
    return {
        k: {float(cap): resize_savings(points, k, cap, options)
            for cap in options}
        for k in (1.0, 2.0)
    }


def efficiency_scatter(points: Sequence[PsuPoint],
                       router_model: Optional[str] = None,
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """(load %, efficiency) arrays for the Fig. 6 scatter plots."""
    selected = [p for p in points
                if router_model is None or p.router_model == router_model]
    loads = np.array([100 * p.load_fraction for p in selected])
    effs = np.array([p.efficiency for p in selected])
    return loads, effs
