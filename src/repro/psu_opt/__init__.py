"""PSU efficiency optimisation (§9): upgrades, right-sizing, consolidation."""

from repro.psu_opt.analysis import (
    PsuPoint,
    PsuSavings,
    clean_exports,
    combined_savings,
    efficiency_scatter,
    hot_standby_savings,
    resize_savings,
    single_psu_savings,
    table3,
    table4,
    total_input_power_w,
    upgrade_savings,
)

__all__ = [
    "PsuPoint",
    "PsuSavings",
    "clean_exports",
    "combined_savings",
    "efficiency_scatter",
    "hot_standby_savings",
    "resize_savings",
    "single_psu_savings",
    "table3",
    "table4",
    "total_input_power_w",
    "upgrade_savings",
]
