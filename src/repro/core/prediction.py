"""Turning a fitted power model into deployed power predictions (§6.2).

The paper predicts the power of production routers by combining three
things: the lab-derived :class:`~repro.core.model.PowerModel`, the module
inventory file (which transceiver sits in which interface), and the SNMP
traffic counters.  This module implements that pipeline.

A faithful detail: the paper's analysis treats an interface with no
traffic counters as *unplugged* -- which is exactly why the model
over-reacted when an operator took a flapping interface down but left the
transceiver seated (Fig. 4a, Oct 22-25).  ``assume_unplugged_when_idle``
reproduces that behaviour by default; set it to ``False`` to keep
inventory-listed modules drawing ``P_trx,in`` when idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import units
from repro.activity import ACTIVE_PPS_THRESHOLD, prediction_active
from repro.core.model import InterfaceClassKey, PowerModel
from repro.hardware.transceiver import TRANSCEIVER_CATALOG


def resolve_class_key(trx_name: Optional[str],
                      speed_gbps: Optional[float] = None
                      ) -> Optional[InterfaceClassKey]:
    """The interface class implied by an inventory entry.

    ``None`` when the module name is missing or unknown to the catalog
    (such interfaces contribute nothing to a prediction).  The port
    speed defaults to the module's nominal rate; a configured
    ``speed_gbps`` overrides it (clocked-down DACs).
    """
    if trx_name is None:
        return None
    model = TRANSCEIVER_CATALOG.get(trx_name)
    if model is None:
        return None
    speed = speed_gbps if speed_gbps else model.speed_gbps
    return InterfaceClassKey(port_type=model.form_factor.value,
                             reach=model.reach.value, speed_gbps=speed)


@dataclass
class DeployedInterface:
    """One production interface: its module and its observed traffic rates.

    Rate arrays are aligned to a shared timestamp grid (one entry per SNMP
    poll).  Octet rates are layer-2 bytes per second (counter deltas over
    the poll interval); packet rates are packets per second.
    """

    name: str
    trx_name: Optional[str]
    octet_rate_rx: np.ndarray
    octet_rate_tx: np.ndarray
    packet_rate_rx: np.ndarray
    packet_rate_tx: np.ndarray
    speed_gbps: Optional[float] = None

    def __post_init__(self):
        lengths = {len(self.octet_rate_rx), len(self.octet_rate_tx),
                   len(self.packet_rate_rx), len(self.packet_rate_tx)}
        if len(lengths) != 1:
            raise ValueError(
                f"interface {self.name}: rate arrays have differing lengths "
                f"{sorted(lengths)}")
        self._class_key_memo = None

    @property
    def n_samples(self) -> int:
        """Number of time points."""
        return len(self.octet_rate_rx)

    @property
    def class_key(self) -> Optional[InterfaceClassKey]:
        """The interface class implied by the inventory entry.

        The catalog lookup is memoized on ``(trx_name, speed_gbps)`` --
        prediction loops resolve it once per interface rather than once
        per evaluation.
        """
        source = (self.trx_name, self.speed_gbps)
        if self._class_key_memo is None or self._class_key_memo[0] != source:
            self._class_key_memo = (source, self._resolve_class_key())
        return self._class_key_memo[1]

    def _resolve_class_key(self) -> Optional[InterfaceClassKey]:
        return resolve_class_key(self.trx_name, self.speed_gbps)

    def physical_bit_rate(self) -> np.ndarray:
        """Two-direction physical-layer bit rate from the counters.

        SNMP octet counters exclude preamble and inter-packet gap; the
        model's ``r_i`` is the physical rate, so we add the fixed 20 B of
        layer-1 overhead per counted packet.
        """
        octets = self.octet_rate_rx + self.octet_rate_tx
        packets = self.packet_rate_rx + self.packet_rate_tx
        return units.BITS_PER_BYTE * (
            octets + units.ETHERNET_OVERHEAD_BYTES * packets)

    def packet_rate(self) -> np.ndarray:
        """Two-direction packet rate (the model's ``p_i``)."""
        return self.packet_rate_rx + self.packet_rate_tx


def predict_trace(model: PowerModel,
                  interfaces: Sequence[DeployedInterface],
                  assume_unplugged_when_idle: bool = True,
                  active_pps_threshold: float = ACTIVE_PPS_THRESHOLD,
                  n_samples: Optional[int] = None) -> np.ndarray:
    """Predicted power time series for one deployed router.

    Parameters
    ----------
    model:
        The lab-derived power model for this router product.
    interfaces:
        Per-interface inventory and traffic rates on a shared time grid.
    assume_unplugged_when_idle:
        The paper's §6.2 behaviour: an interface with no traffic is
        treated as absent (its module assumed unplugged).  When ``False``,
        idle inventory-listed modules still contribute ``P_trx,in``.
    active_pps_threshold:
        Packet rate at or below which an interface counts as idle
        (:func:`repro.activity.prediction_active`).
    n_samples:
        Length of the time grid.  Required when ``interfaces`` is
        empty -- a router with no inventory still draws ``P_base``, so
        the caller must say how many samples of base power it wants;
        an empty sequence with no ``n_samples`` raises ``ValueError``
        rather than silently dropping the router from a fleet sum.
        When interfaces are given it is validated against their length.
    """
    if not interfaces:
        if n_samples is None:
            raise ValueError(
                "predict_trace with no interfaces needs n_samples: a "
                "router without inventory still draws P_base, and a "
                "zero-length trace would silently drop it")
        return np.full(n_samples, model.p_base_w.value, dtype=float)
    n = interfaces[0].n_samples
    if n_samples is not None and n_samples != n:
        raise ValueError(
            f"n_samples={n_samples} disagrees with the interface rate "
            f"arrays ({n} samples)")
    for iface in interfaces:
        if iface.n_samples != n:
            raise ValueError(
                f"interface {iface.name} has {iface.n_samples} samples, "
                f"expected {n}")

    # Group interfaces by class so each class's parameters are resolved
    # once and its members evaluate as one (members, samples) matrix.
    groups: dict = {}
    for iface in interfaces:
        key = iface.class_key
        if key is None:
            continue
        groups.setdefault(key, []).append(iface)

    total = np.full(n, model.p_base_w.value, dtype=float)
    for key, members in groups.items():
        iface_model = model.interface_model(key)
        bps = np.stack([m.physical_bit_rate() for m in members])
        pps = np.stack([m.packet_rate() for m in members])
        active = prediction_active(pps, active_pps_threshold)

        active_power = (
            iface_model.p_trx_in_w.value + iface_model.p_port_w.value
            + iface_model.p_trx_up_w.value + iface_model.p_offset_w.value
            + iface_model.e_bit_j * bps + iface_model.e_pkt_j * pps)
        if assume_unplugged_when_idle:
            idle_power = 0.0
        else:
            idle_power = iface_model.p_trx_in_w.value
        total += np.where(active, active_power, idle_power).sum(axis=0)
    return total


def predict_instant(model: PowerModel,
                    interfaces: Sequence[DeployedInterface],
                    index: int,
                    assume_unplugged_when_idle: bool = True,
                    n_samples: Optional[int] = None) -> float:
    """Predicted power at one time index.

    Slices every interface's rate arrays down to the requested sample
    before evaluating, so the cost is O(interfaces) rather than
    O(interfaces x samples).  Supports negative indices; raises
    ``IndexError`` when out of range, like indexing the full trace would.
    ``n_samples`` plays the same role as in :func:`predict_trace`: an
    inventory-less router needs it to bounds-check ``index`` and then
    reports plain base power.
    """
    if not interfaces:
        if n_samples is None:
            raise ValueError(
                "predict_instant with no interfaces needs n_samples")
        if not -n_samples <= index < n_samples:
            raise IndexError(
                f"index {index} out of range for {n_samples} samples")
        return float(model.p_base_w.value)
    sliced = [
        DeployedInterface(
            name=iface.name,
            trx_name=iface.trx_name,
            octet_rate_rx=np.atleast_1d(iface.octet_rate_rx[index]),
            octet_rate_tx=np.atleast_1d(iface.octet_rate_tx[index]),
            packet_rate_rx=np.atleast_1d(iface.packet_rate_rx[index]),
            packet_rate_tx=np.atleast_1d(iface.packet_rate_tx[index]),
            speed_gbps=iface.speed_gbps,
        )
        for iface in interfaces
    ]
    trace = predict_trace(model, sliced,
                          assume_unplugged_when_idle=assume_unplugged_when_idle)
    return float(trace[0])


def transceiver_power_w(model: PowerModel,
                        interfaces: Sequence[DeployedInterface]) -> float:
    """Total transceiver power of the plugged inventory (§7's ≈10 % figure).

    Sums ``P_trx,in + P_trx,up`` over every interface with a module listed
    in the inventory, regardless of traffic.
    """
    total = 0.0
    for iface in interfaces:
        key = iface.class_key
        if key is None:
            continue
        total += model.interface_model(key).p_trx_total_w
    return total
