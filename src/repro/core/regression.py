"""Ordinary least squares with the diagnostics the derivation needs.

Every parameter of the §5 methodology comes out of a straight-line fit:
``P_Port`` over the pair count, ``P_Snake`` over the bit rate, the
``alpha_L`` values over the wire packet size.  This module provides one
well-tested implementation with slope/intercept standard errors and R², so
the derivation code can propagate uncertainty instead of reporting bare
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares line fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    slope_stderr: float
    intercept_stderr: float
    r_squared: float
    residual_std: float
    n: int

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.slope * x + self.intercept

    def predict_many(self, x: Sequence[float]) -> np.ndarray:
        """Evaluate the fitted line at many points."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit ``y = slope * x + intercept`` by ordinary least squares.

    Requires at least two distinct x values.  With exactly two points the
    fit is exact and the standard errors are reported as 0.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(
            f"x and y must be 1-D arrays of equal length, got shapes "
            f"{x.shape} and {y.shape}")
    n = len(x)
    if n < 2:
        raise ValueError(f"need at least 2 points for a line fit, got {n}")
    if np.ptp(x) == 0:
        raise ValueError("all x values are identical; slope is undefined")

    x_mean = x.mean()
    y_mean = y.mean()
    sxx = float(np.sum((x - x_mean) ** 2))
    sxy = float(np.sum((x - x_mean) * (y - y_mean)))
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean

    residuals = y - (slope * x + intercept)
    ss_res = float(np.sum(residuals ** 2))
    ss_tot = float(np.sum((y - y_mean) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot

    if n > 2:
        residual_var = ss_res / (n - 2)
        residual_std = float(np.sqrt(residual_var))
        slope_stderr = float(np.sqrt(residual_var / sxx))
        intercept_stderr = float(
            np.sqrt(residual_var * (1.0 / n + x_mean ** 2 / sxx)))
    else:
        residual_std = 0.0
        slope_stderr = 0.0
        intercept_stderr = 0.0

    return LinearFit(slope=slope, intercept=intercept,
                     slope_stderr=slope_stderr,
                     intercept_stderr=intercept_stderr,
                     r_squared=r_squared, residual_std=residual_std, n=n)


def fit_through_points(points: Sequence[Sequence[float]]) -> LinearFit:
    """Convenience wrapper fitting a list of (x, y) pairs."""
    if not points:
        raise ValueError("no points to fit")
    x = [p[0] for p in points]
    y = [p[1] for p in points]
    return linear_fit(x, y)
