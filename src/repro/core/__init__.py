"""The paper's primary contribution: the router power model (§4-§5).

* :mod:`repro.core.model` -- the model itself (Eqs. 1-6), serialisable;
* :mod:`repro.core.regression` -- the OLS toolkit with diagnostics;
* :mod:`repro.core.derivation` -- the §5.2 regression chain that fits a
  model from NetPowerBench measurement suites;
* :mod:`repro.core.prediction` -- deployment predictions from a model,
  an inventory, and traffic counters (§6.2).
"""

from repro.core.model import (
    FittedValue,
    fitted,
    InterfaceClassKey,
    InterfaceModel,
    InterfaceState,
    PowerModel,
)
from repro.core.regression import LinearFit, linear_fit, fit_through_points
from repro.core.derivation import (
    ClassDerivationReport,
    DerivationError,
    derive_base,
    derive_class,
    derive_power_model,
)
from repro.core.prediction import (
    DeployedInterface,
    predict_trace,
    predict_instant,
    resolve_class_key,
    transceiver_power_w,
)

__all__ = [
    "FittedValue",
    "fitted",
    "InterfaceClassKey",
    "InterfaceModel",
    "InterfaceState",
    "PowerModel",
    "LinearFit",
    "linear_fit",
    "fit_through_points",
    "ClassDerivationReport",
    "DerivationError",
    "derive_base",
    "derive_class",
    "derive_power_model",
    "DeployedInterface",
    "predict_trace",
    "predict_instant",
    "resolve_class_key",
    "transceiver_power_w",
]
