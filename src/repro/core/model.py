"""The router power model of §4.

The model decomposes router power as

.. math::

    P = P_{sta}(C) + P_{dyn}(C, L)

with one constant term (``P_base``) and six terms per *interface class* --
a (port type, transceiver media, speed) combination:

* ``P_port``   -- router-side cost of an administratively-up port;
* ``P_trx,in`` -- transceiver cost paid from the moment the module is
  plugged in (§7: "down" does not mean "off");
* ``P_trx,up`` -- additional transceiver cost once the interface is up;
* ``E_bit``    -- energy per forwarded bit (pJ);
* ``E_pkt``    -- energy per processed packet (nJ);
* ``P_offset`` -- the power step between "no traffic at all" and "almost
  no traffic" (opportunistic component sleep, e.g. SerDes).

Models are vendor-agnostic plain data: every value is a
:class:`FittedValue` carrying its standard error from the derivation
regressions, and the whole model serialises to a JSON-able dict for the
Network Power Zoo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping

from repro import units


@dataclass(frozen=True)
class InterfaceClassKey:
    """Identifies one interface class: port cage, media, line rate."""

    port_type: str
    reach: str
    speed_gbps: float

    def __str__(self) -> str:
        return f"{self.port_type}/{self.reach}/{self.speed_gbps:g}G"

    @classmethod
    def parse(cls, text: str) -> "InterfaceClassKey":
        """Inverse of ``str()``: parse ``"QSFP28/Passive DAC/100G"``."""
        parts = text.rsplit("/", 2)
        if len(parts) != 3 or not parts[2].endswith("G"):
            raise ValueError(f"malformed interface class key: {text!r}")
        return cls(port_type=parts[0], reach=parts[1],
                   speed_gbps=float(parts[2][:-1]))


@dataclass(frozen=True)
class FittedValue:
    """A model parameter with its estimation uncertainty."""

    value: float
    stderr: float = float("nan")

    def __float__(self) -> float:
        return self.value

    @property
    def has_uncertainty(self) -> bool:
        """Whether a standard error was estimated."""
        return not math.isnan(self.stderr)


def fitted(value: float, stderr: float = float("nan")) -> FittedValue:
    """Shorthand constructor for :class:`FittedValue`."""
    return FittedValue(value=value, stderr=stderr)


@dataclass(frozen=True)
class InterfaceModel:
    """The six fitted per-interface terms for one interface class.

    Energy terms are stored in the paper's units (pJ/bit, nJ/packet);
    the ``e_bit_j``/``e_pkt_j`` properties convert to SI.
    """

    key: InterfaceClassKey
    p_port_w: FittedValue
    p_trx_in_w: FittedValue
    p_trx_up_w: FittedValue
    e_bit_pj: FittedValue
    e_pkt_nj: FittedValue
    p_offset_w: FittedValue

    @property
    def e_bit_j(self) -> float:
        """Energy per bit in joules."""
        return units.pj_to_joules(self.e_bit_pj.value)

    @property
    def e_pkt_j(self) -> float:
        """Energy per packet in joules."""
        return units.nj_to_joules(self.e_pkt_nj.value)

    @property
    def p_trx_total_w(self) -> float:
        """Total transceiver power ``P_trx,in + P_trx,up``."""
        return self.p_trx_in_w.value + self.p_trx_up_w.value

    def interface_power_w(self, *, plugged: bool, admin_up: bool,
                          link_up: bool, bps: float = 0.0,
                          pps: float = 0.0) -> float:
        """Power of one interface of this class in a given state.

        ``bps``/``pps`` are two-direction totals (the model's ``r_i`` and
        ``p_i``); the dynamic terms and ``P_offset`` only apply on an
        interface that is up and carrying traffic.
        """
        power = 0.0
        if plugged:
            power += self.p_trx_in_w.value
        if admin_up:
            power += self.p_port_w.value
        if link_up:
            power += self.p_trx_up_w.value
            if bps > 0 or pps > 0:
                power += self.p_offset_w.value
                power += self.e_bit_j * bps
                power += self.e_pkt_j * pps
        return power


@dataclass
class InterfaceState:
    """The state of one deployed interface at one instant, for prediction."""

    key: InterfaceClassKey
    plugged: bool = True
    admin_up: bool = True
    link_up: bool = True
    bps: float = 0.0
    pps: float = 0.0


@dataclass
class PowerModel:
    """A complete fitted power model for one router product.

    ``linecards`` holds the §4.3 extension's per-card ``P_linecard``
    terms for modular platforms; it stays empty on fixed-chassis models.
    """

    router_model: str
    p_base_w: FittedValue
    interfaces: Dict[InterfaceClassKey, InterfaceModel] = field(
        default_factory=dict)
    linecards: Dict[str, FittedValue] = field(default_factory=dict)
    notes: str = ""

    def add_interface_model(self, model: InterfaceModel) -> None:
        """Register (or replace) the model of one interface class."""
        self.interfaces[model.key] = model

    def add_linecard_model(self, card_name: str,
                           p_card: FittedValue) -> None:
        """Register the fitted ``P_linecard`` of one card product."""
        self.linecards[card_name] = p_card

    def linecard_power_w(self, cards: Iterable[str]) -> float:
        """Total ``P_linecard`` of an inserted card population."""
        total = 0.0
        for name in cards:
            try:
                total += self.linecards[name].value
            except KeyError:
                known = ", ".join(sorted(self.linecards)) or "none"
                raise KeyError(
                    f"no fitted P_linecard for {name!r} on "
                    f"{self.router_model}; known cards: {known}")
        return total

    def predict_modular_power_w(self, cards: Iterable[str],
                                states: Iterable["InterfaceState"]) -> float:
        """Eq. (1) extended with the per-linecard term (§4.3)."""
        return self.linecard_power_w(cards) + self.predict_power_w(states)

    def interface_model(self, key: InterfaceClassKey) -> InterfaceModel:
        """Look up the model for a class, with graceful fallbacks.

        Deployment inventories contain module types the lab never swept.
        The fallback chain mirrors what the paper's analysis has to do:
        exact class, then same port/speed with different media, then the
        same port type at the nearest characterised speed.
        """
        exact = self.interfaces.get(key)
        if exact is not None:
            return exact
        same_speed = [m for k, m in self.interfaces.items()
                      if k.port_type == key.port_type
                      and k.speed_gbps == key.speed_gbps]
        if same_speed:
            return replace(same_speed[0], key=key)
        same_port = [m for k, m in self.interfaces.items()
                     if k.port_type == key.port_type]
        if same_port:
            nearest = min(
                same_port,
                key=lambda m: abs(m.key.speed_gbps - key.speed_gbps))
            return replace(nearest, key=key)
        if self.interfaces:
            any_model = min(
                self.interfaces.values(),
                key=lambda m: abs(m.key.speed_gbps - key.speed_gbps))
            return replace(any_model, key=key)
        raise KeyError(
            f"power model for {self.router_model} has no interface classes; "
            f"cannot resolve {key}")

    # -- evaluation (Eqs. 1-6) -------------------------------------------------

    def static_power_w(self, states: Iterable[InterfaceState]) -> float:
        """``P_sta(C)``: base power plus per-interface static terms."""
        power = self.p_base_w.value
        for state in states:
            model = self.interface_model(state.key)
            power += model.interface_power_w(
                plugged=state.plugged, admin_up=state.admin_up,
                link_up=state.link_up, bps=0.0, pps=0.0)
        return power

    def dynamic_power_w(self, states: Iterable[InterfaceState]) -> float:
        """``P_dyn(C, L)``: the traffic-dependent part only."""
        power = 0.0
        for state in states:
            model = self.interface_model(state.key)
            full = model.interface_power_w(
                plugged=state.plugged, admin_up=state.admin_up,
                link_up=state.link_up, bps=state.bps, pps=state.pps)
            static = model.interface_power_w(
                plugged=state.plugged, admin_up=state.admin_up,
                link_up=state.link_up, bps=0.0, pps=0.0)
            power += full - static
        return power

    def predict_power_w(self, states: Iterable[InterfaceState]) -> float:
        """Total predicted power, Eq. (1)."""
        states = list(states)
        return self.static_power_w(states) + self.dynamic_power_w(states)

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able representation (the Network Power Zoo record format)."""
        def fv(v: FittedValue) -> dict:
            return {"value": v.value, "stderr": v.stderr}

        return {
            "router_model": self.router_model,
            "p_base_w": fv(self.p_base_w),
            "notes": self.notes,
            "linecards": {name: fv(value)
                          for name, value in sorted(self.linecards.items())},
            "interfaces": [
                {
                    "key": str(key),
                    "p_port_w": fv(m.p_port_w),
                    "p_trx_in_w": fv(m.p_trx_in_w),
                    "p_trx_up_w": fv(m.p_trx_up_w),
                    "e_bit_pj": fv(m.e_bit_pj),
                    "e_pkt_nj": fv(m.e_pkt_nj),
                    "p_offset_w": fv(m.p_offset_w),
                }
                for key, m in sorted(self.interfaces.items(),
                                     key=lambda kv: str(kv[0]))
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PowerModel":
        """Inverse of :meth:`to_dict`."""
        def fv(d: Mapping) -> FittedValue:
            return FittedValue(value=float(d["value"]),
                               stderr=float(d["stderr"]))

        model = cls(router_model=str(data["router_model"]),
                    p_base_w=fv(data["p_base_w"]),
                    notes=str(data.get("notes", "")))
        for name, entry in data.get("linecards", {}).items():
            model.add_linecard_model(name, fv(entry))
        for entry in data.get("interfaces", []):
            key = InterfaceClassKey.parse(entry["key"])
            model.add_interface_model(InterfaceModel(
                key=key,
                p_port_w=fv(entry["p_port_w"]),
                p_trx_in_w=fv(entry["p_trx_in_w"]),
                p_trx_up_w=fv(entry["p_trx_up_w"]),
                e_bit_pj=fv(entry["e_bit_pj"]),
                e_pkt_nj=fv(entry["e_pkt_nj"]),
                p_offset_w=fv(entry["p_offset_w"]),
            ))
        return model
