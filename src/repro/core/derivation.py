"""Derivation of power-model parameters from lab measurements (§5.2).

Given the measurement frames of a Base / Idle / Port / Trx / Snake suite,
this module runs the paper's regression chain:

1. ``P_base``    -- mean of the Base frames (Eq. 7);
2. ``P_trx,in``  -- half the slope of ``P_Idle`` over the pair count ``N``
   (Eq. 8: 2N modules are plugged);
3. ``P_port``    -- slope of ``P_Port`` over ``N`` (Eq. 9: one port per
   pair is admin-up, so N ports);
4. ``P_trx,up``  -- from the slope of ``P_Trx`` over ``N``.  With both
   ports of each pair up, the slope is ``2 (P_port + P_trx,up)``; the
   paper's Eq. (10) writes the per-pair count, we make the factor of two
   explicit;
5. ``E_bit``/``E_pkt`` -- the two-stage regression of Eqs. (12)-(17): per
   payload size ``L`` fit power over bit rate to get ``alpha_L``, then fit
   ``alpha_L * 8 (L + L_header)`` over ``8 (L + L_header)``; the slope is
   ``E_bit`` and the intercept ``E_pkt``;
6. ``P_offset``  -- Eq. (18): the zero-rate intercept of the snake
   regressions minus the static ``P_Trx`` level, per interface.

The paper's stated reason for regressing over ``N`` instead of dividing a
single measurement -- validating linearity and avoiding error accumulation
-- is preserved: every step reports its fit diagnostics so callers can see
*whether* the linear behaviour held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.core.model import (
    FittedValue,
    InterfaceClassKey,
    InterfaceModel,
    PowerModel,
)
from repro.core.regression import LinearFit, linear_fit
from repro.lab.orchestrator import ExperimentSuite, MeasurementFrame
from repro.obs import metrics, tracing
from repro.obs.logging import get_logger

_log = get_logger("core.derivation")

M_CLASSES = metrics.counter(
    "netpower_derivation_classes_total",
    "Interface-class derivations completed")
M_WARNINGS = metrics.counter(
    "netpower_derivation_warnings_total",
    "Methodology warnings recorded during derivation")
M_FRAMES_DROPPED = metrics.counter(
    "netpower_derivation_frames_dropped_total",
    "Snake payload sizes dropped for having < 2 rate points")
M_DEGENERATE = metrics.counter(
    "netpower_derivation_degenerate_total",
    "Derivations whose dynamic terms were unidentifiable")
M_FIT_R2 = metrics.gauge(
    "netpower_derivation_fit_r_squared",
    "R² of the most recent regression, by fit step and interface class",
    labels=("fit", "class"))
M_FIT_RESIDUAL = metrics.gauge(
    "netpower_derivation_fit_residual_w",
    "Residual std (W) of the most recent regression, by fit step and class",
    labels=("fit", "class"))


def _class_label(key: InterfaceClassKey) -> str:
    return f"{key.port_type}-{key.reach}-{key.speed_gbps:g}G"


def _record_fit(fit: LinearFit, step: str, key: InterfaceClassKey) -> None:
    M_FIT_R2.labels(fit=step, **{"class": _class_label(key)}).set(
        fit.r_squared)
    M_FIT_RESIDUAL.labels(fit=step, **{"class": _class_label(key)}).set(
        fit.residual_std)


@dataclass
class ClassDerivationReport:
    """Diagnostics of one interface class derivation."""

    key: InterfaceClassKey
    base_w: FittedValue
    idle_fit: Optional[LinearFit] = None
    port_fit: Optional[LinearFit] = None
    trx_fit: Optional[LinearFit] = None
    #: Per payload size: the power-over-rate fit of Eq. (15).
    snake_fits: Dict[float, LinearFit] = field(default_factory=dict)
    #: The (x, y) points of the Eq. (17) regression.
    alpha_points: List[Tuple[float, float]] = field(default_factory=list)
    energy_fit: Optional[LinearFit] = None
    warnings: List[str] = field(default_factory=list)

    def warn(self, message: str) -> None:
        """Record a methodology warning (kept, never printed)."""
        M_WARNINGS.inc()
        _log.debug("derivation warning", extra={
            "class": _class_label(self.key), "warning": message})
        self.warnings.append(message)


class DerivationError(ValueError):
    """The suite lacks the frames required for a derivation step."""


def _points(frames: Sequence[MeasurementFrame]) -> Tuple[np.ndarray, np.ndarray]:
    x = np.array([f.n_pairs for f in frames], dtype=float)
    y = np.array([f.summary.mean_w for f in frames], dtype=float)
    return x, y


def _class_key(suite: ExperimentSuite) -> InterfaceClassKey:
    from repro.hardware.transceiver import TRANSCEIVER_CATALOG

    reach = TRANSCEIVER_CATALOG[suite.trx_name].reach.value
    return InterfaceClassKey(port_type=suite.port_type.value,
                             reach=reach, speed_gbps=suite.speed_gbps)


def derive_base(suite: ExperimentSuite) -> FittedValue:
    """``P_base`` from the Base frames (Eq. 7)."""
    frames = suite.of("base")
    if not frames:
        raise DerivationError("suite has no Base frames")
    means = np.array([f.summary.mean_w for f in frames])
    sems = np.array([f.summary.sem_w for f in frames])
    stderr = float(np.sqrt(np.sum(sems ** 2)) / len(frames))
    return FittedValue(value=float(means.mean()), stderr=stderr)


def derive_class(suite: ExperimentSuite) -> Tuple[InterfaceModel,
                                                  ClassDerivationReport]:
    """Run the full §5.2 regression chain for one interface class."""
    key = _class_key(suite)
    with tracing.span("derive.class", cls=_class_label(key),
                      dut=suite.dut_model, frames=len(suite.frames)):
        model, report = _derive_class(suite, key)
    M_CLASSES.inc()
    return model, report


def _derive_class(suite: ExperimentSuite,
                  key: InterfaceClassKey) -> Tuple[InterfaceModel,
                                                   ClassDerivationReport]:
    base = derive_base(suite)
    report = ClassDerivationReport(key=key, base_w=base)

    # -- static terms -------------------------------------------------------
    idle_frames = suite.of("idle")
    if len(idle_frames) < 2:
        raise DerivationError(
            f"{key}: need Idle frames at >= 2 pair counts, got "
            f"{len(idle_frames)}")
    report.idle_fit = linear_fit(*_points(idle_frames))
    _record_fit(report.idle_fit, "idle", key)
    p_trx_in = FittedValue(value=report.idle_fit.slope / 2.0,
                           stderr=report.idle_fit.slope_stderr / 2.0)
    if abs(report.idle_fit.intercept - base.value) > max(
            5.0, 0.05 * base.value):
        report.warn(
            f"Idle regression intercept ({report.idle_fit.intercept:.1f} W) "
            f"far from measured P_base ({base.value:.1f} W)")

    port_frames = suite.of("port")
    if len(port_frames) < 2:
        raise DerivationError(
            f"{key}: need Port frames at >= 2 pair counts, got "
            f"{len(port_frames)}")
    report.port_fit = linear_fit(*_points(port_frames))
    _record_fit(report.port_fit, "port", key)
    # P_Port(N) = P_base + 2N P_trx,in + N P_port: the Idle component
    # grows with N as well, so the Idle slope must come off first.
    p_port = FittedValue(
        value=report.port_fit.slope - report.idle_fit.slope,
        stderr=float(np.hypot(report.port_fit.slope_stderr,
                              report.idle_fit.slope_stderr)))

    trx_frames = suite.of("trx")
    if len(trx_frames) < 2:
        raise DerivationError(
            f"{key}: need Trx frames at >= 2 pair counts, got "
            f"{len(trx_frames)}")
    report.trx_fit = linear_fit(*_points(trx_frames))
    _record_fit(report.trx_fit, "trx", key)
    # P_Trx(N) = P_base + 2N P_trx,in + 2N (P_port + P_trx,up): both
    # ports of each pair are up, so after removing the Idle slope the
    # per-interface increment is half the remainder.
    per_iface = (report.trx_fit.slope - report.idle_fit.slope) / 2.0
    p_trx_up = FittedValue(
        value=per_iface - p_port.value,
        stderr=float(np.hypot(report.trx_fit.slope_stderr / 2.0,
                              p_port.stderr)))

    # -- dynamic terms --------------------------------------------------------
    e_bit, e_pkt, p_offset = _derive_dynamic(
        suite, report, p_static_fit=report.trx_fit)

    model = InterfaceModel(
        key=key, p_port_w=p_port, p_trx_in_w=p_trx_in, p_trx_up_w=p_trx_up,
        e_bit_pj=e_bit, e_pkt_nj=e_pkt, p_offset_w=p_offset)
    return model, report


def _derive_dynamic(suite: ExperimentSuite, report: ClassDerivationReport,
                    p_static_fit: LinearFit) -> Tuple[FittedValue,
                                                      FittedValue,
                                                      FittedValue]:
    """``E_bit``, ``E_pkt``, ``P_offset`` from the Snake sweeps."""
    by_size = suite.snake_by_packet_size()
    if not by_size:
        M_DEGENERATE.inc()
        report.warn("no Snake frames; dynamic terms default to zero")
        zero = FittedValue(value=0.0, stderr=float("nan"))
        return zero, zero, zero

    alpha_points: List[Tuple[float, float]] = []
    offsets: List[float] = []
    for packet_bytes, frames in sorted(by_size.items()):
        if len(frames) < 2:
            M_FRAMES_DROPPED.inc(len(frames))
            report.warn(
                f"only {len(frames)} Snake rate point(s) at L={packet_bytes:g} B; "
                f"skipping this payload size")
            continue
        n_ifaces = 2 * frames[0].n_pairs
        rates = np.array([f.flow.bit_rate_bps for f in frames])
        powers = np.array([f.summary.mean_w for f in frames])
        fit = linear_fit(rates, powers)
        report.snake_fits[packet_bytes] = fit
        # Eq. (16): alpha_L is the per-interface slope.
        alpha = fit.slope / n_ifaces
        wire_bits = units.BITS_PER_BYTE * (packet_bytes + units.L_HEADER_BYTES)
        alpha_points.append((wire_bits, alpha * wire_bits))
        # Eq. (18): the zero-rate intercept sits P_offset per interface
        # above the static Trx level at the same port count.
        p_trx_level = p_static_fit.predict(frames[0].n_pairs)
        offsets.append((fit.intercept - p_trx_level) / n_ifaces)

    if not alpha_points:
        M_DEGENERATE.inc()
        report.warn("no usable Snake sweeps; dynamic terms default to zero")
        zero = FittedValue(value=0.0, stderr=float("nan"))
        return zero, zero, zero

    report.alpha_points = alpha_points
    if len(alpha_points) >= 2:
        xs = [p[0] for p in alpha_points]
        ys = [p[1] for p in alpha_points]
        energy_fit = linear_fit(xs, ys)
        report.energy_fit = energy_fit
        _record_fit(energy_fit, "energy", report.key)
        e_bit = FittedValue(value=units.joules_to_pj(energy_fit.slope),
                            stderr=units.joules_to_pj(energy_fit.slope_stderr))
        e_pkt = FittedValue(
            value=units.joules_to_nj(energy_fit.intercept),
            stderr=units.joules_to_nj(energy_fit.intercept_stderr))
    else:
        # A single payload size cannot separate per-bit from per-packet
        # energy (Eq. 17 degenerates); attribute everything to E_bit.
        M_DEGENERATE.inc()
        report.warn(
            "only one payload size measured; E_pkt is not identifiable "
            "and was set to zero")
        wire_bits, alpha_times_bits = alpha_points[0]
        e_bit = FittedValue(
            value=units.joules_to_pj(alpha_times_bits / wire_bits),
            stderr=float("nan"))
        e_pkt = FittedValue(value=0.0, stderr=float("nan"))

    offsets_arr = np.array(offsets)
    p_offset = FittedValue(
        value=float(offsets_arr.mean()),
        stderr=(float(offsets_arr.std(ddof=1) / np.sqrt(len(offsets_arr)))
                if len(offsets_arr) > 1 else float("nan")))
    return e_bit, e_pkt, p_offset


def derive_power_model(suites: Sequence[ExperimentSuite],
                       router_model: Optional[str] = None,
                       ) -> Tuple[PowerModel, Dict[InterfaceClassKey,
                                                   ClassDerivationReport]]:
    """Build a complete :class:`PowerModel` from one suite per class.

    All suites must come from the same DUT; ``P_base`` is pooled across
    them (the Base experiment does not depend on the interface class).
    """
    if not suites:
        raise DerivationError("no experiment suites provided")
    models = set(s.dut_model for s in suites)
    if router_model is None:
        if len(models) != 1:
            raise DerivationError(
                f"suites come from different DUTs: {sorted(models)}")
        router_model = suites[0].dut_model
    elif models != {router_model}:
        raise DerivationError(
            f"suites are for {sorted(models)}, not {router_model}")

    bases = [derive_base(s) for s in suites]
    p_base = FittedValue(
        value=float(np.mean([b.value for b in bases])),
        stderr=float(np.sqrt(np.mean([b.stderr ** 2 for b in bases]))))

    power_model = PowerModel(router_model=router_model, p_base_w=p_base)
    reports: Dict[InterfaceClassKey, ClassDerivationReport] = {}
    with tracing.span("derive.model", dut=router_model,
                      n_suites=len(suites)):
        for suite in suites:
            iface_model, report = derive_class(suite)
            power_model.add_interface_model(iface_model)
            reports[iface_model.key] = report
    _log.info("power model derived", extra={
        "dut": router_model, "classes": len(reports),
        "warnings": sum(len(r.warnings) for r in reports.values())})
    return power_model, reports
