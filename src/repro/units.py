"""Units, conversions, and physical constants used throughout the library.

The paper mixes macroscopic units (watts, Tbps) with microscopic ones
(picojoules per bit, nanojoules per packet).  All internal computation in
this library uses SI base units -- watts, joules, bits per second, packets
per second, seconds -- and this module provides the named conversions so
call sites never multiply by bare powers of ten.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------

PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12


def pj_to_joules(picojoules: float) -> float:
    """Convert picojoules (the paper's unit for E_bit) to joules."""
    return picojoules * PICO


def joules_to_pj(joules: float) -> float:
    """Convert joules to picojoules."""
    return joules / PICO


def nj_to_joules(nanojoules: float) -> float:
    """Convert nanojoules (the paper's unit for E_pkt) to joules."""
    return nanojoules * NANO


def joules_to_nj(joules: float) -> float:
    """Convert joules to nanojoules."""
    return joules / NANO


# ---------------------------------------------------------------------------
# Data rates
# ---------------------------------------------------------------------------


def gbps_to_bps(gbps: float) -> float:
    """Convert gigabits per second to bits per second."""
    return gbps * GIGA


def bps_to_gbps(bps: float) -> float:
    """Convert bits per second to gigabits per second."""
    return bps / GIGA


def tbps_to_bps(tbps: float) -> float:
    """Convert terabits per second to bits per second."""
    return tbps * TERA


def bps_to_tbps(bps: float) -> float:
    """Convert bits per second to terabits per second."""
    return bps / TERA


def mbps_to_bps(mbps: float) -> float:
    """Convert megabits per second to bits per second."""
    return mbps * MEGA


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: Default SNMP polling period used by Switch in the paper (5 minutes).
SNMP_POLL_PERIOD_S = 5 * SECONDS_PER_MINUTE

#: Autopower sampling period from the paper's ethics section (0.5 s).
AUTOPOWER_SAMPLE_PERIOD_S = 0.5


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLI


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * MILLI


def s_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / MICRO


def us_to_s(microseconds: float) -> float:
    """Convert microseconds to seconds."""
    return microseconds * MICRO


def hours(n: float) -> float:
    """``n`` hours expressed in seconds."""
    return n * SECONDS_PER_HOUR


def days(n: float) -> float:
    """``n`` days expressed in seconds."""
    return n * SECONDS_PER_DAY


def minutes(n: float) -> float:
    """``n`` minutes expressed in seconds."""
    return n * SECONDS_PER_MINUTE


# ---------------------------------------------------------------------------
# Packets
# ---------------------------------------------------------------------------

#: Layer-2 framing overhead per Ethernet frame in bytes: preamble (7) +
#: start-of-frame delimiter (1) + inter-packet gap (12).  Together with the
#: 18-byte Ethernet header/FCS this is the ``L_header`` of the paper's
#: Eq. (12); the paper leaves its exact composition to the operator, we use
#: the physical-layer-complete value so bit rates are physical-layer rates.
ETHERNET_OVERHEAD_BYTES = 7 + 1 + 12

#: Ethernet header (14) + frame check sequence (4).
ETHERNET_HEADER_BYTES = 14 + 4

#: ``L_header`` from Eq. (12): bytes on the wire not counted in the payload
#: size ``L``.  The paper's derivation only requires that the same constant
#: is used when generating traffic and when fitting; we adopt the full
#: physical-layer overhead.
L_HEADER_BYTES = ETHERNET_OVERHEAD_BYTES + ETHERNET_HEADER_BYTES

#: Smallest and largest standard Ethernet payload sizes used for sweeps.
MIN_PACKET_BYTES = 64
MAX_PACKET_BYTES = 1500

BITS_PER_BYTE = 8


def packet_rate(bit_rate_bps: float, packet_bytes: float,
                header_bytes: float = L_HEADER_BYTES) -> float:
    """Packets per second for a physical-layer bit rate and payload size.

    Implements Eq. (12) of the paper: ``p = r / (8 * (L + L_header))``.
    """
    if packet_bytes <= 0:
        raise ValueError(f"packet size must be positive, got {packet_bytes}")
    return bit_rate_bps / (BITS_PER_BYTE * (packet_bytes + header_bytes))


def bit_rate(packet_rate_pps: float, packet_bytes: float,
             header_bytes: float = L_HEADER_BYTES) -> float:
    """Physical-layer bit rate for a packet rate and payload size.

    Inverse of :func:`packet_rate`.
    """
    if packet_bytes <= 0:
        raise ValueError(f"packet size must be positive, got {packet_bytes}")
    return packet_rate_pps * BITS_PER_BYTE * (packet_bytes + header_bytes)


# ---------------------------------------------------------------------------
# Power helpers
# ---------------------------------------------------------------------------


def watts_per_100g(power_w: float, capacity_bps: float) -> float:
    """The paper's efficiency metric: watts per 100 Gbps of capacity.

    Used in Fig. 2 for both the Broadcom ASIC trend and the datasheet trend.
    """
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bps}")
    return power_w / (capacity_bps / gbps_to_bps(100))


def kwh(power_w: float, duration_s: float) -> float:
    """Energy in kilowatt-hours for a constant power draw over a duration."""
    return power_w * duration_s / SECONDS_PER_HOUR / KILO


def relative_error(estimate: float, truth: float) -> float:
    """Relative error ``(estimate - truth) / truth``; NaN-safe for truth=0."""
    if truth == 0:
        return math.inf if estimate != 0 else 0.0
    return (estimate - truth) / truth
