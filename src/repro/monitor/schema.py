"""A minimal, dependency-free JSON-Schema validator for CI smoke checks.

The container deliberately carries no ``jsonschema`` package, so the CI
job that validates ``netpower monitor`` dashboard output against
``docs/schemas/dashboard.schema.json`` uses this subset validator
instead.  Supported keywords (all the checked-in schema needs):
``type`` (string or list), ``const``, ``enum``, ``properties``,
``required``, ``additionalProperties`` (bool or schema), ``items``,
``minItems``, ``minimum``, ``patternProperties``, and local
JSON-pointer ``$ref`` (``#/definitions/...``).

``validate`` returns a list of human-readable error strings; an empty
list means the instance conforms.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, name: str) -> bool:
    expected = _TYPES[name]
    if name in ("number", "integer") and isinstance(value, bool):
        return False  # bool is an int subclass; JSON says it is not
    return isinstance(value, expected)


def _resolve_ref(ref: str, root: Dict[str, Any]) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise ValueError(f"only local JSON-pointer $refs supported: {ref}")
    node: Any = root
    for token in ref[2:].split("/"):
        token = token.replace("~1", "/").replace("~0", "~")
        node = node[token]
    return node


def validate(instance: Any, schema: Dict[str, Any], path: str = "$",
             root: Optional[Dict[str, Any]] = None) -> List[str]:
    """Check ``instance`` against ``schema``; returns error strings.

    ``root`` is the document ``$ref`` pointers resolve against; it
    defaults to ``schema`` itself (the usual top-level call).
    """
    if root is None:
        root = schema
    while "$ref" in schema:
        schema = _resolve_ref(schema["$ref"], root)

    errors: List[str] = []

    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, "
                      f"got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")

    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, name) for name in names):
            errors.append(
                f"{path}: expected type {'|'.join(names)}, got "
                f"{type(instance).__name__}")
            return errors  # structural keywords would only cascade

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        patterns = {re.compile(p): s
                    for p, s in schema.get("patternProperties", {}).items()}
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            child = f"{path}.{key}"
            if key in properties:
                errors.extend(validate(value, properties[key], child, root))
                continue
            matched = False
            for pattern, sub in patterns.items():
                if pattern.search(key):
                    errors.extend(validate(value, sub, child, root))
                    matched = True
            if matched:
                continue
            if additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, child, root))

    if isinstance(instance, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(instance) < min_items:
            errors.append(f"{path}: expected at least {min_items} items, "
                          f"got {len(instance)}")
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(instance):
                errors.extend(
                    validate(value, items, f"{path}[{index}]", root))

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        minimum = schema.get("minimum")
        if minimum is not None and instance < minimum:
            errors.append(f"{path}: {instance} below minimum {minimum}")

    return errors
