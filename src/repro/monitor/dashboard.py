"""Self-contained dashboard snapshots of one monitored run.

``build_snapshot`` turns a :class:`~repro.monitor.core.FleetMonitor`
into a plain dict -- schema ``repro.monitor.dashboard/v2`` -- holding
the scenario metadata, the fleet rollups, the energy attribution panel
(``null`` when the run carried no ledger), the per-router source values
and drift statistics, the PSU health table, and the alert log.  The dict
is deliberately deterministic: keys sort on serialization, no wall-clock
values appear anywhere, and NaN is mapped to ``null`` so the output is
strict JSON (seeded run => byte-identical file).

``write_dashboard`` writes the JSON plus a static HTML rendering with
inline SVG sparklines -- no JavaScript, no external assets, viewable
from a file:// URL.
"""

from __future__ import annotations

import html
import json
import math
from typing import Dict, List, Optional

from repro.ioutil import atomic_write_text
from repro.monitor.core import FleetMonitor
from repro.monitor.rollup import RollupSeries
from repro.obs.ledger import J_PER_KWH

#: Version tag of the snapshot layout (validated in CI).
#: v2 added the nullable top-level ``attribution`` energy panel.
DASHBOARD_SCHEMA = "repro.monitor.dashboard/v2"


def _clean(value):
    """NaN/inf -> None, numpy scalars -> python, recursively."""
    if isinstance(value, dict):
        return {k: _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if hasattr(value, "item"):  # numpy scalar
        return _clean(value.item())
    return value


def _series_block(series: RollupSeries) -> dict:
    last = series.last()
    rollups = {}
    for period_s in sorted(series.rollups):
        rolled = series.rollup_series(period_s)
        rollups[f"{int(period_s)}"] = {
            "timestamps": rolled.timestamps.tolist(),
            "values": rolled.values.tolist(),
        }
    return {
        "last_t_s": None if last is None else last[0],
        "last_value": None if last is None else last[1],
        "n_raw": len(series.raw),
        "evicted": series.raw.evicted,
        "rollups": rollups,
    }


def build_snapshot(monitor: FleetMonitor) -> dict:
    """The full dashboard state of one monitored run, as plain data."""
    store = monitor.store
    signals = {name: _series_block(store.get(name))
               for name in store.names()}

    routers: Dict[str, dict] = {}
    for host in monitor.hosts:
        sources = {}
        for prefix in ("wall_power_w", "autopower_w", "psu_power_w",
                       "model_power_w", "model_residual_w"):
            series = store.get(f"{prefix}/{host}")
            last = series.last() if series is not None else None
            sources[prefix] = None if last is None else last[1]
        tracker = monitor.drift.get(host)
        estimate = tracker.estimate() if tracker is not None else None
        drift: Optional[dict] = None
        if estimate is not None:
            drift = {
                "offset_w": estimate.stats.offset_w,
                "residual_std_w": estimate.stats.residual_std_w,
                "correlation": estimate.stats.correlation,
                "n_windows": estimate.stats.n_samples,
                "verdict": estimate.verdict(),
                "ewma_mean_w": estimate.ewma_mean_w,
                "ewma_std_w": estimate.ewma_std_w,
                "last_z": estimate.last_z,
                "n_residuals": estimate.n_residuals,
            }
        routers[host] = {"sources": sources, "drift": drift, "psus": []}

    for health in monitor.psu_health.health():
        host = health.key.hostname
        if host not in routers:
            continue
        routers[host]["psus"].append({
            "psu": str(health.key),
            "baseline_efficiency": health.baseline_efficiency,
            "last_efficiency": health.last_efficiency,
            "drop": health.drop,
            "degrading": health.degrading,
            "trend_per_month": (None if health.drift is None
                                else health.drift.per_month),
        })

    alerts: List[dict] = [{
        "rule": alert.rule,
        "signal": alert.signal,
        "severity": alert.severity.value,
        "fired_at_s": alert.fired_at_s,
        "resolved_at_s": alert.resolved_at_s,
        "value": alert.value,
        "message": alert.message,
    } for alert in monitor.alerts.alerts]

    fleet = {}
    for name in ("fleet/total_power_w", "fleet/total_traffic_bps"):
        series = store.get(name)
        if series is not None:
            fleet[name.split("/", 1)[1]] = _series_block(series)

    attribution: Optional[dict] = None
    if monitor.attribution_energy_j is not None:
        attribution = {
            "energy_kwh": {name: round(joules / J_PER_KWH, 6)
                           for name, joules
                           in monitor.attribution_energy_j.items()},
            "last_power_w": {name: round(watts, 6)
                             for name, watts
                             in (monitor.attribution_last_w or {}).items()},
            "n_steps": monitor.attribution_steps,
        }

    return _clean({
        "schema": DASHBOARD_SCHEMA,
        "scenario": {
            "engine": monitor.engine_name,
            "step_s": monitor.step_s,
            "n_steps": monitor.n_steps,
            "start_s": monitor.start_s,
            "window_s": monitor.config.window_s,
            "resolutions": list(monitor.store.resolutions),
            "hosts": list(monitor.hosts),
        },
        "fleet": fleet,
        "attribution": attribution,
        "routers": routers,
        "signals": signals,
        "alerts": alerts,
    })


def snapshot_json(snapshot: dict) -> str:
    """Canonical serialization: sorted keys, strict JSON, 2-space indent."""
    return json.dumps(snapshot, indent=2, sort_keys=True,
                      allow_nan=False) + "\n"


# -- static HTML rendering ----------------------------------------------------------

_SEVERITY_COLOURS = {"info": "#2b6cb0", "warning": "#b7791f",
                     "critical": "#c53030"}


def _sparkline(timestamps: List[float], values: List[float],
               width: int = 240, height: int = 36) -> str:
    """Inline SVG polyline of one rollup series (None values skipped)."""
    points = [(t, v) for t, v in zip(timestamps, values) if v is not None]
    if len(points) < 2:
        return "<svg width='240' height='36'></svg>"
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    t0, t1 = min(ts), max(ts)
    v0, v1 = min(vs), max(vs)
    t_span = (t1 - t0) or 1.0
    v_span = (v1 - v0) or 1.0
    coords = " ".join(
        f"{(t - t0) / t_span * (width - 4) + 2:.1f},"
        f"{height - 2 - (v - v0) / v_span * (height - 4):.1f}"
        for t, v in points)
    return (f"<svg width='{width}' height='{height}' "
            f"viewBox='0 0 {width} {height}'>"
            f"<polyline fill='none' stroke='#3182ce' stroke-width='1.5' "
            f"points='{coords}'/></svg>")


def _signal_sparkline(block: Optional[dict]) -> str:
    if not block or not block.get("rollups"):
        return ""
    coarsest = max(block["rollups"], key=int)
    rollup = block["rollups"][coarsest]
    return _sparkline(rollup["timestamps"], rollup["values"])


def _fmt(value, digits: int = 2) -> str:
    if value is None:
        return "&mdash;"
    return f"{value:.{digits}f}"


def render_html(snapshot: dict) -> str:
    """A static, dependency-free dashboard page for one snapshot."""
    scenario = snapshot["scenario"]
    parts: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>netpower monitor</title><style>",
        "body{font-family:system-ui,sans-serif;margin:2em;color:#1a202c}",
        "table{border-collapse:collapse;margin:1em 0}",
        "th,td{border:1px solid #cbd5e0;padding:4px 10px;"
        "text-align:left;font-size:14px}",
        "th{background:#edf2f7}",
        "h1{font-size:22px}h2{font-size:17px;margin-top:1.6em}",
        ".sev{font-weight:600}",
        "</style></head><body>",
        "<h1>netpower fleet monitor</h1>",
        f"<p>engine <b>{html.escape(str(scenario['engine']))}</b>, "
        f"{scenario['n_steps']} steps &times; {scenario['step_s']} s, "
        f"{len(scenario['hosts'])} tracked routers.</p>",
        "<h2>Fleet</h2><table><tr><th>signal</th><th>last</th>"
        "<th>30-min rollup</th></tr>",
    ]
    for name, block in sorted(snapshot["fleet"].items()):
        parts.append(
            f"<tr><td>{html.escape(name)}</td>"
            f"<td>{_fmt(block['last_value'])}</td>"
            f"<td>{_signal_sparkline(block)}</td></tr>")
    parts.append("</table>")

    attribution = snapshot.get("attribution")
    if attribution is not None:
        parts.append("<h2>Energy attribution (fleet)</h2>"
                     "<table><tr><th>component</th><th>energy kWh</th>"
                     "<th>last W</th><th>per-step rollup</th></tr>")
        for name, kwh in sorted(attribution["energy_kwh"].items()):
            signal = snapshot["signals"].get(f"fleet/attribution/{name}")
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{_fmt(kwh, 4)}</td>"
                f"<td>{_fmt(attribution['last_power_w'].get(name))}</td>"
                f"<td>{_signal_sparkline(signal)}</td></tr>")
        parts.append("</table>")

    parts.append("<h2>Routers &mdash; §6.2 drift (model vs Autopower)"
                 "</h2><table><tr><th>router</th><th>model W</th>"
                 "<th>measured W</th><th>offset W</th>"
                 "<th>residual &sigma; W</th><th>verdict</th>"
                 "<th>model rollup</th></tr>")
    for host, block in sorted(snapshot["routers"].items()):
        drift = block["drift"] or {}
        model_block = snapshot["signals"].get(f"model_power_w/{host}")
        parts.append(
            f"<tr><td>{html.escape(host)}</td>"
            f"<td>{_fmt(block['sources'].get('model_power_w'))}</td>"
            f"<td>{_fmt(block['sources'].get('autopower_w'))}</td>"
            f"<td>{_fmt(drift.get('offset_w'), 3)}</td>"
            f"<td>{_fmt(drift.get('residual_std_w'), 3)}</td>"
            f"<td>{html.escape(str(drift.get('verdict', '&mdash;')))}</td>"
            f"<td>{_signal_sparkline(model_block)}</td></tr>")
    parts.append("</table>")

    parts.append("<h2>PSU health (GREEN, §9.4)</h2><table><tr>"
                 "<th>psu</th><th>baseline &eta;</th><th>last &eta;</th>"
                 "<th>drop</th><th>trend /month</th>"
                 "<th>degrading</th></tr>")
    for host, block in sorted(snapshot["routers"].items()):
        for psu in block["psus"]:
            parts.append(
                f"<tr><td>{html.escape(psu['psu'])}</td>"
                f"<td>{_fmt(psu['baseline_efficiency'], 4)}</td>"
                f"<td>{_fmt(psu['last_efficiency'], 4)}</td>"
                f"<td>{_fmt(psu['drop'], 4)}</td>"
                f"<td>{_fmt(psu['trend_per_month'], 5)}</td>"
                f"<td>{'yes' if psu['degrading'] else 'no'}</td></tr>")
    parts.append("</table>")

    parts.append("<h2>Alerts</h2>")
    if snapshot["alerts"]:
        parts.append("<table><tr><th>fired at (s)</th><th>severity</th>"
                     "<th>rule</th><th>signal</th><th>value</th>"
                     "<th>resolved</th></tr>")
        for alert in snapshot["alerts"]:
            colour = _SEVERITY_COLOURS.get(alert["severity"], "#1a202c")
            resolved = (_fmt(alert["resolved_at_s"], 0)
                        if alert["resolved_at_s"] is not None else "active")
            parts.append(
                f"<tr><td>{_fmt(alert['fired_at_s'], 0)}</td>"
                f"<td class='sev' style='color:{colour}'>"
                f"{html.escape(alert['severity'])}</td>"
                f"<td>{html.escape(alert['rule'])}</td>"
                f"<td>{html.escape(alert['signal'])}</td>"
                f"<td>{_fmt(alert['value'], 4)}</td>"
                f"<td>{resolved}</td></tr>")
        parts.append("</table>")
    else:
        parts.append("<p>none fired.</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_dashboard(monitor: FleetMonitor, json_path: str) -> dict:
    """Write the JSON snapshot and its HTML sibling; returns the dict.

    ``json_path`` should end in ``.json``; the HTML lands next to it
    with the extension swapped.
    """
    snapshot = build_snapshot(monitor)
    atomic_write_text(json_path, snapshot_json(snapshot))
    if json_path.endswith(".json"):
        html_path = json_path[:-len(".json")] + ".html"
    else:
        html_path = json_path + ".html"
    atomic_write_text(html_path, render_html(snapshot))
    return snapshot
