"""Continuous fleet power monitoring (the §9.4/§10 longitudinal layer).

Turns the raw observability substrate (:mod:`repro.obs`) into an
always-on monitoring product for fleet simulations:

* :mod:`repro.monitor.rollup` -- fixed-memory multi-resolution rollup
  storage (raw -> 5 min -> 30 min) per signal;
* :mod:`repro.monitor.drift` -- the §6.2 model-vs-measurement
  comparison as a live statistic, plus GREEN PSU-efficiency health;
* :mod:`repro.monitor.alerts` -- declarative alert rules (threshold,
  rate-of-change, z-score, staleness) with dedup and hysteresis;
* :mod:`repro.monitor.core` -- :class:`FleetMonitor`, the step observer
  tying it together;
* :mod:`repro.monitor.aggregate` -- :class:`AggregatingObserver`, the
  fixed-memory per-run aggregator sweep jobs ship across processes;
* :mod:`repro.monitor.dashboard` -- deterministic JSON + static HTML
  snapshots (``netpower monitor``'s output);
* :mod:`repro.monitor.schema` -- the dependency-free snapshot validator
  CI uses.
"""

from repro.monitor.rollup import (
    DEFAULT_RESOLUTIONS,
    RingBuffer,
    RollupSeries,
    RollupStore,
)
from repro.monitor.drift import (
    DriftEstimate,
    DriftTracker,
    OnlineEwma,
    PsuHealth,
    PsuHealthTracker,
)
from repro.monitor.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    RuleKind,
    Severity,
)
from repro.monitor.aggregate import AggregatingObserver
from repro.monitor.core import (
    FleetMonitor,
    MonitorConfig,
    default_rules,
)
from repro.monitor.dashboard import (
    DASHBOARD_SCHEMA,
    build_snapshot,
    render_html,
    snapshot_json,
    write_dashboard,
)

__all__ = [
    "DEFAULT_RESOLUTIONS",
    "RingBuffer",
    "RollupSeries",
    "RollupStore",
    "DriftEstimate",
    "DriftTracker",
    "OnlineEwma",
    "PsuHealth",
    "PsuHealthTracker",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "RuleKind",
    "Severity",
    "AggregatingObserver",
    "FleetMonitor",
    "MonitorConfig",
    "default_rules",
    "DASHBOARD_SCHEMA",
    "build_snapshot",
    "render_html",
    "snapshot_json",
    "write_dashboard",
]
