"""The fleet monitor: a StepObserver tying rollups, drift and alerts.

Attach a :class:`FleetMonitor` to a :class:`NetworkSimulation` before
``run()`` and it continuously maintains, for every tracked router, the
three §6.2 power signals (model prediction, PSU/SNMP telemetry,
Autopower measurement) plus the §9.4 PSU-efficiency channel:

* every step: fleet totals, per-router wall power, Autopower samples
  into the fixed-memory rollup store;
* every SNMP poll: PSU-reported power, the live model prediction
  (bitwise-identical to the offline pipeline at the poll timestamps),
  the model-vs-Autopower residual into the drift tracker, and the
  deterministic per-PSU efficiency into the health tracker;
* alert rules evaluated on each observation, staleness checks at poll
  cadence.

The monitor is strictly read-only with respect to simulation state and
never draws from any RNG stream, so a seeded run produces byte-identical
outputs with or without it attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.model import PowerModel
from repro.network.simulation import (NetworkSimulation, SimulationResult,
                                      StepObserver, StepSnapshot)
from repro.obs import logging as obslog
from repro.obs import profile
from repro.telemetry.snmp import SnmpCollector
from repro.telemetry.sources import (AutopowerSource, CounterRateModelSource,
                                     PsuEfficiencySource, SnmpPowerSource)
from repro.validation.compare import AVERAGING_WINDOW_S
from repro.monitor.alerts import AlertEngine, AlertRule, RuleKind, Severity
from repro.monitor.drift import DriftTracker, PsuHealthTracker
from repro.monitor.rollup import DEFAULT_RESOLUTIONS, RollupStore

_log = obslog.get_logger("monitor")


def default_rules() -> List[AlertRule]:
    """The stock alerting policy.

    One rule per failure mode the paper documents: PSU efficiency
    degradation (§9.4), model drift away from the external measurement
    (§6.2's offset, live), a silent Autopower unit (the store-and-forward
    outages of §5), and abrupt fleet-power steps (the Fig. 1
    commission/decommission edges).
    """
    return [
        AlertRule(
            name="psu-efficiency-drop",
            kind=RuleKind.THRESHOLD,
            signals="psu_efficiency_drop/*",
            severity=Severity.CRITICAL,
            above=0.02, clear_above=0.01,
            description="PSU efficiency fell >2 % below its baseline"),
        AlertRule(
            name="psu-efficiency-floor",
            kind=RuleKind.THRESHOLD,
            signals="psu_efficiency/*",
            severity=Severity.WARNING,
            below=0.50, clear_below=0.55,
            description="PSU conversion efficiency below the 50 % floor"),
        AlertRule(
            name="model-drift-z",
            kind=RuleKind.ZSCORE,
            signals="model_residual_w/*",
            severity=Severity.WARNING,
            z_threshold=6.0, z_clear=3.0, min_samples=12,
            description="model-vs-measurement residual left its band"),
        AlertRule(
            name="autopower-stale",
            kind=RuleKind.STALENESS,
            signals="autopower_w/*",
            severity=Severity.WARNING,
            stale_after_s=1800.0,
            description="no Autopower sample for 30 minutes"),
        AlertRule(
            name="fleet-power-step",
            kind=RuleKind.RATE_OF_CHANGE,
            signals="fleet/total_power_w",
            severity=Severity.INFO,
            rate_above=1.0, rate_below=-1.0,
            description="network total moved faster than diurnal drift"),
    ]


@dataclass
class MonitorConfig:
    """Tunables of one :class:`FleetMonitor`."""

    #: Routers to track per-source; None tracks the run's detailed hosts
    #: plus every Autopower'd router.
    hosts: Optional[Sequence[str]] = None
    window_s: float = float(AVERAGING_WINDOW_S)
    resolutions: Tuple[float, ...] = DEFAULT_RESOLUTIONS
    raw_capacity: int = 4096
    rollup_capacity: int = 1024
    ewma_alpha: float = 0.1
    psu_baseline_samples: int = 3
    #: None installs :func:`default_rules`.
    rules: Optional[Sequence[AlertRule]] = None


class FleetMonitor(StepObserver):
    """Continuous §6.2/§9.4 monitoring attached to a running simulation.

    Parameters
    ----------
    models:
        ``router model name -> PowerModel`` for the live prediction; hosts
        whose product has no model simply lack the model/drift signals.
    config:
        See :class:`MonitorConfig`.
    """

    def __init__(self, models: Optional[Dict[str, PowerModel]] = None,
                 config: Optional[MonitorConfig] = None):
        self.models = dict(models or {})
        self.config = config or MonitorConfig()
        self.store = RollupStore(
            raw_capacity=self.config.raw_capacity,
            rollup_capacity=self.config.rollup_capacity,
            resolutions=self.config.resolutions)
        rules = (default_rules() if self.config.rules is None
                 else list(self.config.rules))
        self.alerts = AlertEngine(rules)
        self.psu_health = PsuHealthTracker(
            baseline_samples=self.config.psu_baseline_samples)
        self.drift: Dict[str, DriftTracker] = {}
        self.hosts: Tuple[str, ...] = tuple(self.config.hosts or ())
        self.engine_name: Optional[str] = None
        self.step_s: Optional[float] = None
        self.n_steps: Optional[int] = None
        self.start_s: Optional[float] = None
        self.result: Optional[SimulationResult] = None
        self._snmp: Optional[SnmpPowerSource] = None
        self._autopower: Optional[AutopowerSource] = None
        self._model: Optional[CounterRateModelSource] = None
        self._efficiency: Optional[PsuEfficiencySource] = None
        self._last_t_s: Optional[float] = None
        #: Fleet attribution rollup, fed by ``StepSnapshot.attribution``
        #: when the run carries an energy ledger (``None`` otherwise).
        self.attribution_energy_j: Optional[Dict[str, float]] = None
        self.attribution_last_w: Optional[Dict[str, float]] = None
        self.attribution_steps: int = 0

    # -- StepObserver ---------------------------------------------------------------

    def view_hosts(self) -> Sequence[str]:
        """Tracked routers need synced objects (device-power reads)."""
        return self.hosts

    def on_run_start(self, sim: NetworkSimulation, engine: str,
                     collector: SnmpCollector, step_s: float,
                     n_steps: int) -> None:
        """Attach to a run: remember the engine and log the rule set."""
        self.engine_name = engine
        self.step_s = step_s
        self.n_steps = n_steps
        self.start_s = sim.clock_s
        if self.config.hosts is None:
            hosts = set(collector.detailed_hosts) | set(sim.autopower_clients)
            self.hosts = tuple(sorted(
                h for h in hosts if h in sim.network.routers))
        else:
            self.hosts = tuple(h for h in self.config.hosts
                               if h in sim.network.routers)
        self._snmp = SnmpPowerSource(collector)
        self._autopower = AutopowerSource(sim.autopower_clients)
        self._model = CounterRateModelSource(collector, self.models)
        self._efficiency = PsuEfficiencySource(
            {h: sim.network.routers[h] for h in self.hosts})
        for host in self.hosts:
            self.drift[host] = DriftTracker(
                host, f"model_power_w/{host}", f"autopower_w/{host}",
                self.store, window_s=self.config.window_s,
                ewma_alpha=self.config.ewma_alpha)
            if host in sim.autopower_clients:
                self.alerts.register_signal(f"autopower_w/{host}",
                                            sim.clock_s)
        _log.info("fleet monitor attached", extra={
            "engine": engine, "hosts": len(self.hosts),
            "rules": len(self.alerts.rules)})

    def on_step(self, snapshot: StepSnapshot) -> None:
        """Ingest one step: rollups, drift tracking, alert evaluation."""
        with profile.region("kernel.monitor_rollup"):
            self._on_step(snapshot)

    def _on_step(self, snapshot: StepSnapshot) -> None:
        t = snapshot.t_s
        self._last_t_s = t
        store = self.store
        alerts = self.alerts
        store.add("fleet/total_power_w", t, snapshot.total_power_w)
        alerts.observe("fleet/total_power_w", t, snapshot.total_power_w)
        store.add("fleet/total_traffic_bps", t,
                  snapshot.total_traffic_bps)
        if snapshot.attribution is not None:
            if self.attribution_energy_j is None:
                self.attribution_energy_j = dict.fromkeys(
                    snapshot.attribution, 0.0)
            for name, watts in snapshot.attribution.items():
                self.attribution_energy_j[name] += watts * snapshot.step_s
                store.add(f"fleet/attribution/{name}", t, watts)
            self.attribution_last_w = dict(snapshot.attribution)
            self.attribution_steps += 1
        fresh_autopower: Dict[str, float] = {}
        for host in self.hosts:
            wall = snapshot.power_by_host.get(host)
            if wall is not None:
                store.add(f"wall_power_w/{host}", t, wall)
            measured = self._autopower.sample(host, t)
            if measured is not None:
                fresh_autopower[host] = measured
                store.add(f"autopower_w/{host}", t, measured)
                alerts.observe(f"autopower_w/{host}", t, measured)
        if snapshot.snmp_polled:
            self._on_poll(t, fresh_autopower)
            alerts.evaluate(t)
            store.flush_metrics()

    def _on_poll(self, t: float, fresh_autopower: Dict[str, float]) -> None:
        store = self.store
        alerts = self.alerts
        for host in self.hosts:
            reported = self._snmp.sample(host, t)
            if reported is not None:
                store.add(f"psu_power_w/{host}", t, reported)
                alerts.observe(f"psu_power_w/{host}", t, reported)
            predicted = self._model.sample(host, t)
            if predicted is not None:
                store.add(f"model_power_w/{host}", t, predicted)
                measured = fresh_autopower.get(host)
                if measured is not None:
                    residual = predicted - measured
                    store.add(f"model_residual_w/{host}", t, residual)
                    alerts.observe(f"model_residual_w/{host}", t, residual)
                    self.drift[host].update(t, predicted, measured)
            for index, input_w, output_w, capacity_w in \
                    self._efficiency.sample(host, t):
                efficiency = (min(1.0, output_w / input_w)
                              if input_w > 0 else 0.0)
                signal = f"psu_efficiency/{host}/psu{index}"
                store.add(signal, t, efficiency)
                alerts.observe(signal, t, efficiency)
                drop = self.psu_health.record(
                    host, index, t, input_w, output_w, capacity_w)
                if drop is not None:
                    drop_signal = f"psu_efficiency_drop/{host}/psu{index}"
                    store.add(drop_signal, t, drop)
                    alerts.observe(drop_signal, t, drop)

    def on_run_end(self, result: SimulationResult) -> None:
        """Finalize rollups and drift trackers at the end of a run."""
        self.result = result
        self.store.finalize()
        for tracker in self.drift.values():
            tracker.refresh()
        if self._last_t_s is not None:
            self.alerts.evaluate(self._last_t_s)
        self.store.flush_metrics()
        _log.info("fleet monitor run complete", extra={
            "signals": len(self.store.names()),
            "alerts": len(self.alerts.alerts)})
