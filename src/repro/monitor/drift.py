"""Online model-drift detection: §6.2's comparison as a live statistic.

The offline validation lines up the model prediction against Autopower
ground truth after the campaign and reports "precise but offset".  The
drift tracker maintains the same statistic continuously:

* a **windowed offset estimate** computed with the *identical* shared
  helper the offline comparison uses
  (:func:`repro.validation.compare.windowed_residuals`), applied to the
  monitor's raw rollup rings -- so as long as the run fits the rings,
  the live offset equals the offline one exactly;
* an **EWMA residual track** (online mean/variance + z-score of the
  instantaneous model-minus-measurement residual), which reacts within
  a few polls when the offset *moves* -- the event the §6.2 plots can
  only show in hindsight.

PSU-efficiency degradation (the §9.4 GREEN concern) is tracked by
reusing :class:`repro.telemetry.green.PsuEfficiencyTrace` and the shared
:func:`repro.telemetry.green.efficiency_drift` fit, plus a baseline/drop
signal that feeds the alerting engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.telemetry.green import (EfficiencyDrift, PsuEfficiencyTrace,
                                   PsuKey, efficiency_drift)
from repro.validation.compare import (AVERAGING_WINDOW_S, ComparisonStats,
                                      compare_series)
from repro.monitor.rollup import RollupStore


class OnlineEwma:
    """Exponentially weighted mean/variance with a z-score view."""

    __slots__ = ("alpha", "mean", "var", "count")

    def __init__(self, alpha: float = 0.1):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.mean = 0.0
        self.var = 0.0
        self.count = 0

    def update(self, value: float) -> None:
        """Fold one observation in (West's EWMA variance recurrence)."""
        if self.count == 0:
            self.mean = value
            self.var = 0.0
        else:
            delta = value - self.mean
            incr = self.alpha * delta
            self.mean += incr
            self.var = (1 - self.alpha) * (self.var + delta * incr)
        self.count += 1

    @property
    def std(self) -> float:
        """EWMA standard deviation."""
        return math.sqrt(self.var) if self.var > 0 else 0.0

    def z(self, value: float) -> float:
        """Z-score of a value against the tracked mean/std.

        0 until the track has seen enough samples to mean anything.
        """
        if self.count < 3 or self.std == 0.0:
            return 0.0
        return (value - self.mean) / self.std


@dataclass
class DriftEstimate:
    """The live §6.2 statistic for one candidate/reference pair."""

    stats: ComparisonStats
    ewma_mean_w: float
    ewma_std_w: float
    last_z: float
    n_residuals: int

    @property
    def offset_w(self) -> float:
        """The windowed constant offset (the Fig. 4 headline number)."""
        return self.stats.offset_w

    def verdict(self) -> str:
        """The paper's qualitative label, as a stable string."""
        return self.stats.verdict().name


class DriftTracker:
    """Model-vs-measurement drift for one router.

    ``update`` feeds the EWMA with instantaneous residuals at poll
    cadence (cheap, O(1)); ``refresh`` recomputes the windowed offset
    from the rollup store's raw rings with the shared §6.2 helper
    (O(ring), called at 30-minute cadence and at end of run).
    """

    def __init__(self, hostname: str, candidate_signal: str,
                 reference_signal: str, store: RollupStore,
                 window_s: float = AVERAGING_WINDOW_S,
                 ewma_alpha: float = 0.1):
        self.hostname = hostname
        self.candidate_signal = candidate_signal
        self.reference_signal = reference_signal
        self.store = store
        self.window_s = window_s
        self.ewma = OnlineEwma(ewma_alpha)
        self.last_z = 0.0
        self._stats: Optional[ComparisonStats] = None
        self._next_refresh_s: Optional[float] = None

    def update(self, t_s: float, candidate_w: float,
               reference_w: float) -> float:
        """Feed one residual; returns its z-score against the track."""
        residual = candidate_w - reference_w
        self.last_z = self.ewma.z(residual)
        self.ewma.update(residual)
        if self._next_refresh_s is None:
            self._next_refresh_s = t_s + self.window_s
        elif t_s >= self._next_refresh_s:
            self.refresh()
            self._next_refresh_s = t_s + self.window_s
        return self.last_z

    def refresh(self) -> Optional[ComparisonStats]:
        """Recompute the windowed §6.2 stats from the raw rings."""
        candidate = self.store.get(self.candidate_signal)
        reference = self.store.get(self.reference_signal)
        if candidate is None or reference is None:
            return None
        self._stats = compare_series(candidate.raw.series(),
                                     reference.raw.series(),
                                     window_s=self.window_s)
        return self._stats

    def estimate(self) -> Optional[DriftEstimate]:
        """The current drift estimate (None before the first refresh)."""
        if self._stats is None:
            return None
        return DriftEstimate(
            stats=self._stats,
            ewma_mean_w=self.ewma.mean,
            ewma_std_w=self.ewma.std,
            last_z=self.last_z,
            n_residuals=self.ewma.count)


@dataclass
class PsuHealth:
    """Dashboard view of one supply's efficiency track."""

    key: PsuKey
    baseline_efficiency: float
    last_efficiency: float
    drop: float
    drift: Optional[EfficiencyDrift]

    @property
    def degrading(self) -> bool:
        """Whether the fitted trend flags measurable degradation."""
        return self.drift is not None and self.drift.degrading


class PsuHealthTracker:
    """Streaming PSU-efficiency health for the monitored routers.

    Reuses the GREEN containers so the fitted trend is identical to what
    an offline :class:`~repro.telemetry.green.GreenCollector` campaign
    over the same samples would report.  The *drop* signal -- baseline
    efficiency (median of the first ``baseline_samples`` readings) minus
    the current reading -- is what the alert rule watches: a step
    degradation moves it from ~0 to the injected delta within one poll.
    """

    def __init__(self, baseline_samples: int = 3, max_samples: int = 4096):
        self.baseline_samples = baseline_samples
        self.max_samples = max_samples
        self.traces: Dict[PsuKey, PsuEfficiencyTrace] = {}
        self._baseline: Dict[PsuKey, float] = {}

    def record(self, hostname: str, psu_index: int, t_s: float,
               input_w: float, output_w: float,
               capacity_w: float) -> Optional[float]:
        """Feed one reading; returns the current drop once baselined."""
        key = PsuKey(hostname, psu_index)
        trace = self.traces.get(key)
        if trace is None:
            trace = PsuEfficiencyTrace(key=key, capacity_w=capacity_w)
            self.traces[key] = trace
        trace.timestamps.append(t_s)
        trace.input_w.append(input_w)
        trace.output_w.append(output_w)
        if len(trace.timestamps) > self.max_samples:
            del trace.timestamps[0]
            del trace.input_w[0]
            del trace.output_w[0]
        efficiency = (min(1.0, output_w / input_w)
                      if input_w > 0 else 0.0)
        baseline = self._baseline.get(key)
        if baseline is None:
            n = sum(1 for w in trace.input_w if w > 0)
            if n >= self.baseline_samples:
                series = trace.efficiency_series().valid()
                self._baseline[key] = baseline = series.median()
            else:
                return None
        return baseline - efficiency

    def health(self) -> List[PsuHealth]:
        """Per-PSU health snapshots, sorted by key (deterministic)."""
        out: List[PsuHealth] = []
        for key in sorted(self.traces, key=str):
            trace = self.traces[key]
            series = trace.efficiency_series().valid()
            if len(series) == 0:
                continue
            baseline = self._baseline.get(key, float("nan"))
            last = float(series.values[-1])
            out.append(PsuHealth(
                key=key,
                baseline_efficiency=baseline,
                last_efficiency=last,
                drop=(baseline - last if baseline == baseline
                      else float("nan")),
                drift=efficiency_drift(trace)))
        return out
