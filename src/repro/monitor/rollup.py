"""Fixed-memory multi-resolution rollup storage for monitor signals.

Every signal the fleet monitor tracks (per-router and fleet-total power,
per source) lands in a :class:`RollupSeries`: a raw ring buffer plus one
ring of streaming bin averages per rollup resolution.  The default
resolutions are 5 minutes (the SNMP poll period) and 30 minutes
(``AVERAGING_WINDOW_S``, the paper's Fig. 4 smoothing window), so the
coarsest rollup is directly comparable to the offline §6.2 plots.

Memory is fixed at construction: each ring is a preallocated pair of
float64 arrays, and appends are O(1) -- old samples are overwritten once
the ring is full.  The streaming downsampler reproduces
``TimeSeries.resample`` semantics exactly: bins are anchored at the
first raw sample, a bin's value is the mean of the raw samples that fell
into it, and its timestamp is the bin centre.  Empty bins are simply not
emitted (``resample`` would give NaN there).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics
from repro.telemetry.traces import TimeSeries
from repro.validation.compare import AVERAGING_WINDOW_S

#: Default rollup resolutions in seconds: SNMP-poll and Fig. 4 windows.
DEFAULT_RESOLUTIONS = (300.0, float(AVERAGING_WINDOW_S))

M_ROLLUP_SAMPLES = metrics.counter(
    "netpower_monitor_rollup_samples_total",
    "Raw samples ingested into the monitor's rollup store.")
M_ROLLUP_EVICTED = metrics.counter(
    "netpower_monitor_rollup_evicted_total",
    "Raw samples overwritten after their ring filled up.")


class RingBuffer:
    """A fixed-capacity (timestamp, value) ring with O(1) append."""

    __slots__ = ("capacity", "_ts", "_values", "_head", "count", "evicted")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ts = np.empty(capacity)
        self._values = np.empty(capacity)
        self._head = 0      # next write position
        self.count = 0      # samples currently held
        self.evicted = 0    # samples overwritten so far

    def __len__(self) -> int:
        return self.count

    def append(self, t_s: float, value: float) -> None:
        """Store one sample, overwriting the oldest when full."""
        self._ts[self._head] = t_s
        self._values[self._head] = value
        self._head = (self._head + 1) % self.capacity
        if self.count < self.capacity:
            self.count += 1
        else:
            self.evicted += 1

    def last(self) -> Optional[Tuple[float, float]]:
        """The most recent (timestamp, value), or None when empty."""
        if self.count == 0:
            return None
        index = (self._head - 1) % self.capacity
        return float(self._ts[index]), float(self._values[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of the held samples in chronological order."""
        if self.count < self.capacity:
            return (self._ts[:self.count].copy(),
                    self._values[:self.count].copy())
        order = np.concatenate([np.arange(self._head, self.capacity),
                                np.arange(0, self._head)])
        return self._ts[order], self._values[order]

    def series(self) -> TimeSeries:
        """The held samples as a :class:`TimeSeries`."""
        ts, values = self.arrays()
        return TimeSeries(ts, values)


class _Downsampler:
    """Streaming bin-averager feeding one rollup ring.

    Accumulates raw samples into the current bin and emits the finished
    bin's mean (stamped at the bin centre, like ``resample``) the moment
    a sample lands past its right edge.
    """

    __slots__ = ("period_s", "ring", "_t0", "_bin", "_sum", "_count")

    def __init__(self, period_s: float, capacity: int):
        self.period_s = period_s
        self.ring = RingBuffer(capacity)
        self._t0: Optional[float] = None
        self._bin = 0
        self._sum = 0.0
        self._count = 0

    def add(self, t_s: float, value: float) -> None:
        if self._t0 is None:
            self._t0 = t_s
        index = int(np.floor((t_s - self._t0) / self.period_s))
        if index > self._bin:
            self._flush()
            self._bin = index
        self._sum += value
        self._count += 1

    def _flush(self) -> None:
        if self._count == 0:
            return
        centre = self._t0 + (self._bin + 0.5) * self.period_s
        self.ring.append(centre, self._sum / self._count)
        self._sum = 0.0
        self._count = 0

    def finalize(self) -> None:
        """Emit the trailing partial bin (end of run)."""
        self._flush()


class RollupSeries:
    """One monitored signal: raw ring + per-resolution rollup rings."""

    def __init__(self, name: str, raw_capacity: int = 4096,
                 rollup_capacity: int = 1024,
                 resolutions: Sequence[float] = DEFAULT_RESOLUTIONS):
        self.name = name
        self.raw = RingBuffer(raw_capacity)
        self.rollups: Dict[float, _Downsampler] = {
            float(period): _Downsampler(float(period), rollup_capacity)
            for period in resolutions}

    def add(self, t_s: float, value: float) -> None:
        """O(1) amortized: one ring write + one accumulator op per level."""
        self.raw.append(t_s, value)
        for sampler in self.rollups.values():
            sampler.add(t_s, value)

    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent raw sample."""
        return self.raw.last()

    def rollup_series(self, period_s: float) -> TimeSeries:
        """Completed bin averages at one resolution."""
        return self.rollups[float(period_s)].ring.series()

    def finalize(self) -> None:
        """Flush trailing partial bins at every resolution."""
        for sampler in self.rollups.values():
            sampler.finalize()


class RollupStore:
    """All monitored signals, keyed by name (``host/source`` style)."""

    def __init__(self, raw_capacity: int = 4096,
                 rollup_capacity: int = 1024,
                 resolutions: Sequence[float] = DEFAULT_RESOLUTIONS):
        self.raw_capacity = raw_capacity
        self.rollup_capacity = rollup_capacity
        self.resolutions = tuple(float(p) for p in resolutions)
        self._series: Dict[str, RollupSeries] = {}
        self._pending_samples = 0
        self._published_evicted = 0

    def series(self, name: str) -> RollupSeries:
        """Get or create the rollup series for one signal."""
        series = self._series.get(name)
        if series is None:
            series = RollupSeries(
                name, raw_capacity=self.raw_capacity,
                rollup_capacity=self.rollup_capacity,
                resolutions=self.resolutions)
            self._series[name] = series
        return series

    def add(self, name: str, t_s: float, value: float) -> None:
        """Ingest one sample for one signal."""
        self.series(name).add(t_s, value)
        self._pending_samples += 1

    def names(self) -> List[str]:
        """All signal names, sorted (deterministic iteration order)."""
        return sorted(self._series)

    def get(self, name: str) -> Optional[RollupSeries]:
        """The series for one signal, or None if never written."""
        return self._series.get(name)

    def flush_metrics(self) -> None:
        """Batch-publish ingest counters (no-op registry: no cost)."""
        if not metrics.enabled():
            self._pending_samples = 0
            return
        if self._pending_samples:
            M_ROLLUP_SAMPLES.inc(self._pending_samples)
            self._pending_samples = 0
        evicted = sum(s.raw.evicted for s in self._series.values())
        if evicted > self._published_evicted:
            M_ROLLUP_EVICTED.inc(evicted - self._published_evicted)
            self._published_evicted = evicted

    def finalize(self) -> None:
        """End of run: flush partial bins and metric counters."""
        for series in self._series.values():
            series.finalize()
        self.flush_metrics()
