"""Declarative alerting over monitor signals.

Rules are declared once (threshold, rate-of-change, z-score, staleness)
and matched to signals by ``fnmatch`` pattern, so one rule covers a
family of signals ("``psu_efficiency_drop/*``").  The engine keeps one
small finite-state machine per (rule, signal) pair:

    ok -> pending (breach observed, debounce running)
       -> firing  (breach held for ``for_s``; the Alert is emitted HERE,
                   exactly once -- deduplication)
       -> ok      (clear condition met; hysteresis bounds apply)

Emission goes through the ``repro.obs`` structured logger and the alert
metric families, so alerts appear in ``--log-json`` streams and
``--metrics-out`` exports without any extra plumbing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

from repro.obs import logging as obslog
from repro.obs import metrics
from repro.monitor.drift import OnlineEwma

_log = obslog.get_logger("monitor.alerts")

M_ALERTS = metrics.counter(
    "netpower_monitor_alerts_total",
    "Alerts fired by the monitoring rule engine.",
    labels=("rule", "severity"))
M_ALERTS_ACTIVE = metrics.gauge(
    "netpower_monitor_alerts_active",
    "Currently firing (unresolved) alerts.")


class Severity(enum.Enum):
    """Alert severity, ordered."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


class RuleKind(enum.Enum):
    """What aspect of a signal a rule watches."""

    THRESHOLD = "threshold"
    RATE_OF_CHANGE = "rate_of_change"
    ZSCORE = "zscore"
    STALENESS = "staleness"


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting rule.

    ``signals`` is an fnmatch pattern over signal names.  Unused bound
    fields stay None; hysteresis comes from the ``clear_*`` bounds (a
    firing alert only resolves once the signal crosses *those*, not the
    firing bound).  ``for_s`` debounces: the breach must hold that long
    before the alert fires.
    """

    name: str
    kind: RuleKind
    signals: str
    severity: Severity = Severity.WARNING
    description: str = ""
    # THRESHOLD bounds (breach when value > above or value < below).
    above: Optional[float] = None
    below: Optional[float] = None
    clear_above: Optional[float] = None   # resolves when value < this
    clear_below: Optional[float] = None   # resolves when value > this
    # RATE_OF_CHANGE bounds, in signal units per second.
    rate_above: Optional[float] = None
    rate_below: Optional[float] = None
    # ZSCORE bounds.
    z_threshold: float = 4.0
    z_clear: float = 2.0
    min_samples: int = 10
    ewma_alpha: float = 0.1
    # STALENESS bound.
    stale_after_s: Optional[float] = None
    # Debounce.
    for_s: float = 0.0


@dataclass
class Alert:
    """One fired alert (the deduplicated event, not every breach)."""

    rule: str
    signal: str
    severity: Severity
    fired_at_s: float
    value: float
    message: str
    resolved_at_s: Optional[float] = None

    @property
    def active(self) -> bool:
        """Whether the alert is still firing."""
        return self.resolved_at_s is None


class _RuleState:
    """Per-(rule, signal) FSM state."""

    __slots__ = ("phase", "pending_since_s", "alert", "ewma", "last")

    def __init__(self):
        self.phase = "ok"                    # ok | pending | firing
        self.pending_since_s: float = 0.0
        self.alert: Optional[Alert] = None
        self.ewma: Optional[OnlineEwma] = None
        self.last: Optional[Tuple[float, float]] = None  # (t, value)


class AlertEngine:
    """Evaluates every rule against every matching signal observation."""

    def __init__(self, rules: List[AlertRule]):
        self.rules = list(rules)
        self.alerts: List[Alert] = []
        self._states: Dict[Tuple[str, str], _RuleState] = {}
        self._matches: Dict[str, List[AlertRule]] = {}
        self._last_seen: Dict[str, float] = {}

    # -- signal routing -----------------------------------------------------------

    def _rules_for(self, signal: str) -> List[AlertRule]:
        rules = self._matches.get(signal)
        if rules is None:
            rules = [rule for rule in self.rules
                     if fnmatchcase(signal, rule.signals)]
            self._matches[signal] = rules
        return rules

    def register_signal(self, signal: str, t_s: float) -> None:
        """Declare a signal exists (staleness baseline, no value yet)."""
        self._last_seen.setdefault(signal, t_s)
        self._rules_for(signal)

    def observe(self, signal: str, t_s: float, value: float) -> None:
        """Feed one observation of one signal through the matching rules."""
        self._last_seen[signal] = t_s
        for rule in self._rules_for(signal):
            if rule.kind == RuleKind.STALENESS:
                continue  # handled on evaluate()
            state = self._state(rule, signal)
            breach, clear = self._judge(rule, state, t_s, value)
            self._transition(rule, signal, state, t_s, value, breach, clear)

    def evaluate(self, t_s: float) -> None:
        """Clock tick: run staleness rules over everything seen so far."""
        for signal in self._last_seen:
            for rule in self._rules_for(signal):
                if rule.kind != RuleKind.STALENESS:
                    continue
                state = self._state(rule, signal)
                age = t_s - self._last_seen[signal]
                breach = (rule.stale_after_s is not None
                          and age > rule.stale_after_s)
                self._transition(rule, signal, state, t_s, age,
                                 breach, not breach)

    # -- rule evaluation ----------------------------------------------------------

    def _state(self, rule: AlertRule, signal: str) -> _RuleState:
        key = (rule.name, signal)
        state = self._states.get(key)
        if state is None:
            state = _RuleState()
            self._states[key] = state
        return state

    def _judge(self, rule: AlertRule, state: _RuleState, t_s: float,
               value: float) -> Tuple[bool, bool]:
        """(breach, clear) for one observation under one rule."""
        if rule.kind == RuleKind.THRESHOLD:
            breach = ((rule.above is not None and value > rule.above)
                      or (rule.below is not None and value < rule.below))
            clear_above = (rule.clear_above if rule.clear_above is not None
                           else rule.above)
            clear_below = (rule.clear_below if rule.clear_below is not None
                           else rule.below)
            clear = not ((clear_above is not None and value > clear_above)
                         or (clear_below is not None
                             and value < clear_below))
            return breach, clear
        if rule.kind == RuleKind.RATE_OF_CHANGE:
            previous = state.last
            state.last = (t_s, value)
            if previous is None or t_s <= previous[0]:
                return False, True
            rate = (value - previous[1]) / (t_s - previous[0])
            breach = ((rule.rate_above is not None
                       and rate > rule.rate_above)
                      or (rule.rate_below is not None
                          and rate < rule.rate_below))
            return breach, not breach
        if rule.kind == RuleKind.ZSCORE:
            if state.ewma is None:
                state.ewma = OnlineEwma(rule.ewma_alpha)
            ewma = state.ewma
            if ewma.count < rule.min_samples:
                ewma.update(value)
                return False, True
            z = abs(ewma.z(value))
            if state.phase != "firing":
                # Freeze the baseline while firing: a stuck anomaly must
                # not teach the track that anomalous is normal.
                ewma.update(value)
            return z > rule.z_threshold, z < rule.z_clear
        return False, True

    def _transition(self, rule: AlertRule, signal: str, state: _RuleState,
                    t_s: float, value: float, breach: bool,
                    clear: bool) -> None:
        if state.phase == "ok":
            if breach:
                if rule.for_s <= 0:
                    self._fire(rule, signal, state, t_s, value)
                else:
                    state.phase = "pending"
                    state.pending_since_s = t_s
        elif state.phase == "pending":
            if not breach:
                state.phase = "ok"
            elif t_s - state.pending_since_s >= rule.for_s:
                self._fire(rule, signal, state, t_s, value)
        elif state.phase == "firing":
            if clear:
                self._resolve(rule, signal, state, t_s)

    def _fire(self, rule: AlertRule, signal: str, state: _RuleState,
              t_s: float, value: float) -> None:
        state.phase = "firing"
        message = (f"{rule.name}: {signal} "
                   f"{rule.kind.value} breach (value={value:.6g})")
        alert = Alert(rule=rule.name, signal=signal,
                      severity=rule.severity, fired_at_s=t_s,
                      value=value, message=message)
        state.alert = alert
        self.alerts.append(alert)
        _log.warning("alert fired", extra={
            "rule": rule.name, "signal": signal,
            "severity": rule.severity.value, "t_s": t_s,
            "value": value})
        if metrics.enabled():
            M_ALERTS.labels(rule=rule.name,
                            severity=rule.severity.value).inc()
            M_ALERTS_ACTIVE.set(float(len(self.active())))

    def _resolve(self, rule: AlertRule, signal: str, state: _RuleState,
                 t_s: float) -> None:
        state.phase = "ok"
        if state.alert is not None:
            state.alert.resolved_at_s = t_s
            _log.info("alert resolved", extra={
                "rule": rule.name, "signal": signal, "t_s": t_s})
            state.alert = None
        if metrics.enabled():
            M_ALERTS_ACTIVE.set(float(len(self.active())))

    # -- views --------------------------------------------------------------------

    def active(self) -> List[Alert]:
        """Currently firing alerts, in firing order."""
        return [alert for alert in self.alerts if alert.active]
