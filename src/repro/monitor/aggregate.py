"""Fixed-memory per-run aggregation for sweep jobs.

The full :class:`~repro.monitor.core.FleetMonitor` keeps rollup rings,
drift trackers, and an alert engine -- far more state than a parameter
sweep wants to ship across a process boundary for every job.  This
module is the lightweight end of the observer spectrum: an
:class:`AggregatingObserver` folds every :class:`StepSnapshot` into a
handful of running sums (mean/peak power, energy, traffic, per-host
energy) and renders them as a small deterministic dict.

Determinism contract: aggregation only *reads* snapshot fields that both
engines produce identically, consumes no randomness, and iterates hosts
in sorted order when exporting -- so a job's aggregate dict is bytewise
stable across engines, worker counts, and completion order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.network.simulation import StepObserver, StepSnapshot

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.network.simulation import NetworkSimulation
    from repro.telemetry.snmp import SnmpCollector

#: Joules per kilowatt-hour.
_J_PER_KWH = 3.6e6


class AggregatingObserver(StepObserver):
    """Streaming per-run aggregates: one observer per sweep job.

    Attach via :meth:`NetworkSimulation.add_observer` before ``run``;
    read :meth:`to_dict` afterwards.  Memory is O(routers), independent
    of run length.
    """

    def __init__(self, top_consumers: int = 5):
        self.top_consumers = top_consumers
        self.n_steps = 0
        self.engine: Optional[str] = None
        self.step_s: Optional[float] = None
        self._power_sum_w = 0.0
        self._peak_power_w = 0.0
        self._peak_power_t_s = 0.0
        self._traffic_sum_bps = 0.0
        self._peak_traffic_bps = 0.0
        self._energy_j = 0.0
        self._host_energy_j: Dict[str, float] = {}
        self._snmp_polls = 0

    # -- StepObserver ------------------------------------------------------------

    def on_run_start(self, sim: "NetworkSimulation", engine: str,
                     collector: "SnmpCollector", step_s: float,
                     n_steps: int) -> None:
        """Record the engine name and step size for the summary."""
        self.engine = engine
        self.step_s = step_s

    def on_step(self, snapshot: StepSnapshot) -> None:
        """Fold one step's totals into the running aggregates."""
        self.n_steps += 1
        self._power_sum_w += snapshot.total_power_w
        if snapshot.total_power_w > self._peak_power_w:
            self._peak_power_w = snapshot.total_power_w
            self._peak_power_t_s = snapshot.t_s
        self._traffic_sum_bps += snapshot.total_traffic_bps
        self._peak_traffic_bps = max(self._peak_traffic_bps,
                                     snapshot.total_traffic_bps)
        self._energy_j += snapshot.total_power_w * snapshot.step_s
        if snapshot.snmp_polled:
            self._snmp_polls += 1
        host_energy = self._host_energy_j
        step_s = snapshot.step_s
        for host, power_w in snapshot.power_by_host.items():
            host_energy[host] = (host_energy.get(host, 0.0)
                                 + power_w * step_s)

    # -- export ------------------------------------------------------------------

    def mean_power_w(self) -> float:
        """Mean fleet power over the observed steps (0 before any)."""
        return self._power_sum_w / self.n_steps if self.n_steps else 0.0

    def energy_kwh(self) -> float:
        """Total fleet energy over the run."""
        return self._energy_j / _J_PER_KWH

    def to_dict(self) -> Dict:
        """The aggregates as a JSON-able, deterministically ordered dict.

        Floats are rounded (6 decimals -- micro-watt-hours) so reports
        stay readable; rounding a deterministic value is deterministic.
        """
        ranked: List = sorted(
            self._host_energy_j.items(), key=lambda kv: (-kv[1], kv[0]))
        return {
            "steps": self.n_steps,
            "snmp_polls": self._snmp_polls,
            "mean_power_w": round(self.mean_power_w(), 6),
            "peak_power_w": round(self._peak_power_w, 6),
            "peak_power_t_s": self._peak_power_t_s,
            "energy_kwh": round(self.energy_kwh(), 6),
            "mean_traffic_bps": round(
                self._traffic_sum_bps / self.n_steps
                if self.n_steps else 0.0, 3),
            "peak_traffic_bps": round(self._peak_traffic_bps, 3),
            "top_consumers": [
                {"host": host, "energy_kwh": round(joules / _J_PER_KWH, 6)}
                for host, joules in ranked[:self.top_consumers]
            ],
        }
