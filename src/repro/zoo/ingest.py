"""Bulk ingestion into the Network Power Zoo.

The Zoo is "open for the community to use and contribute to"; these
helpers turn the library's artefacts -- a parsed datasheet corpus, a
fleet monitoring campaign, a PSU sensor export, a batch of fitted power
models -- into Zoo records in one call each, with provenance attached.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.core.model import PowerModel
from repro.datasheets.parser import ParsedDatasheet
from repro.psu_opt.analysis import PsuPoint
from repro.telemetry.snmp import RouterTrace
from repro.zoo.database import (
    DatasheetRecord,
    MeasurementRecord,
    NetworkPowerZoo,
    PowerModelRecord,
    Provenance,
    PsuRecord,
)


def contribute_datasheets(zoo: NetworkPowerZoo,
                          parsed: Mapping[str, ParsedDatasheet],
                          provenance: Provenance) -> int:
    """Add every parsed datasheet with at least one power value."""
    count = 0
    for model, record in parsed.items():
        if record.typical_w is None and record.max_w is None:
            continue
        zoo.add(DatasheetRecord(
            vendor=record.vendor or "unknown",
            model=model,
            typical_w=record.typical_w,
            max_w=record.max_w,
            max_bandwidth_gbps=record.max_bandwidth_gbps,
            release_year=record.release_year,
            provenance=provenance))
        count += 1
    return count


def contribute_measurements(zoo: NetworkPowerZoo,
                            traces: Mapping[str, RouterTrace],
                            provenance: Provenance,
                            vendor_by_model: Optional[Mapping[str, str]]
                            = None) -> int:
    """Add a measurement summary per router with usable power telemetry."""
    count = 0
    for hostname, trace in traces.items():
        valid = trace.power.valid()
        if len(valid) < 2:
            continue  # ABSENT-quirk platforms have nothing to contribute
        vendor = "unknown"
        if vendor_by_model is not None:
            vendor = vendor_by_model.get(trace.router_model, "unknown")
        zoo.add(MeasurementRecord(
            vendor=vendor,
            model=trace.router_model,
            hostname=hostname,
            median_w=valid.median(),
            mean_w=valid.mean(),
            duration_s=valid.duration_s,
            provenance=provenance))
        count += 1
    return count


def contribute_psu_points(zoo: NetworkPowerZoo,
                          points: Iterable[PsuPoint],
                          provenance: Provenance,
                          vendor_by_model: Optional[Mapping[str, str]]
                          = None) -> int:
    """Add every cleaned §9.2 PSU observation."""
    count = 0
    for point in points:
        vendor = "unknown"
        if vendor_by_model is not None:
            vendor = vendor_by_model.get(point.router_model, "unknown")
        zoo.add(PsuRecord(
            vendor=vendor,
            model=point.router_model,
            hostname=point.router,
            capacity_w=point.capacity_w,
            load_fraction=point.load_fraction,
            efficiency=point.efficiency,
            provenance=provenance))
        count += 1
    return count


def contribute_power_models(zoo: NetworkPowerZoo,
                            models: Mapping[str, PowerModel],
                            provenance: Provenance,
                            vendor_by_model: Optional[Mapping[str, str]]
                            = None) -> int:
    """Add a batch of fitted power models."""
    count = 0
    for name, model in models.items():
        vendor = "unknown"
        if vendor_by_model is not None:
            vendor = vendor_by_model.get(name, "unknown")
        zoo.add(PowerModelRecord(vendor=vendor, model=name,
                                 power_model=model,
                                 provenance=provenance))
        count += 1
    return count


def vendor_lookup() -> Dict[str, str]:
    """Vendor per catalog router model (convenience for the helpers)."""
    from repro.hardware.catalog import ROUTER_CATALOG

    return {name: spec.vendor for name, spec in ROUTER_CATALOG.items()}
