"""The Network Power Zoo: a community database of router power data.

The paper launches the Zoo as a public aggregation point for every kind
of network power record: datasheet extractions, fitted power models,
measurement summaries, and PSU observations -- open for contribution.
This module is that database: typed records with provenance, queryable by
vendor and model, serialisable to a single JSON document.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.model import PowerModel

#: Version stamp for the zoo's JSON document.
ZOO_SCHEMA = "repro.zoo/v1"


@dataclass(frozen=True)
class Provenance:
    """Who contributed a record and from what kind of source."""

    contributor: str
    #: "datasheet-extraction", "netbox", "manual", "lab-measurement",
    #: "snmp", "external-measurement" ... (the dataset distinguishes LLM
    #: output from curated values, §3.2).
    method: str
    date: str = ""

    def to_dict(self) -> dict:
        """JSON-able form (embedded in every zoo record)."""
        return asdict(self)


@dataclass
class DatasheetRecord:
    """Datasheet power values for one router model."""

    vendor: str
    model: str
    typical_w: Optional[float]
    max_w: Optional[float]
    max_bandwidth_gbps: Optional[float]
    release_year: Optional[int]
    provenance: Provenance

    KIND = "datasheet"


@dataclass
class MeasurementRecord:
    """A summarised power measurement of one deployed router."""

    vendor: str
    model: str
    hostname: str
    median_w: float
    mean_w: float
    duration_s: float
    provenance: Provenance

    KIND = "measurement"


@dataclass
class PowerModelRecord:
    """A fitted power model (the §5 output)."""

    vendor: str
    model: str
    power_model: PowerModel
    provenance: Provenance

    KIND = "power-model"


@dataclass
class PsuRecord:
    """One PSU efficiency observation (§9.2)."""

    vendor: str
    model: str
    hostname: str
    capacity_w: float
    load_fraction: float
    efficiency: float
    provenance: Provenance

    KIND = "psu"


_RECORD_KINDS = {
    DatasheetRecord.KIND: DatasheetRecord,
    MeasurementRecord.KIND: MeasurementRecord,
    PowerModelRecord.KIND: PowerModelRecord,
    PsuRecord.KIND: PsuRecord,
}


class NetworkPowerZoo:
    """The aggregation database."""

    def __init__(self):
        self._records: Dict[str, List] = {kind: [] for kind in _RECORD_KINDS}

    # -- contribution -------------------------------------------------------------

    def add(self, record: object) -> None:
        """Contribute one record (typed; unknown kinds are rejected)."""
        kind = getattr(type(record), "KIND", None)
        if kind not in self._records:
            raise TypeError(
                f"unsupported record type {type(record).__name__}; "
                f"known kinds: {sorted(self._records)}")
        self._records[kind].append(record)

    def add_all(self, records: Iterable) -> int:
        """Contribute many records; returns how many were added."""
        count = 0
        for record in records:
            self.add(record)
            count += 1
        return count

    # -- queries -------------------------------------------------------------------

    def records(self, kind: str) -> List:
        """All records of one kind."""
        if kind not in self._records:
            raise KeyError(f"unknown record kind {kind!r}")
        return list(self._records[kind])

    def for_model(self, model: str, kind: Optional[str] = None) -> List:
        """Every record about one router model (optionally one kind)."""
        kinds = [kind] if kind else list(self._records)
        out = []
        for k in kinds:
            out.extend(r for r in self._records[k] if r.model == model)
        return out

    def vendors(self) -> List[str]:
        """Vendors with at least one record."""
        seen = set()
        for records in self._records.values():
            seen.update(r.vendor for r in records)
        return sorted(seen)

    def models(self, vendor: Optional[str] = None) -> List[str]:
        """Router models with at least one record."""
        seen = set()
        for records in self._records.values():
            for record in records:
                if vendor is None or record.vendor == vendor:
                    seen.add(record.model)
        return sorted(seen)

    def summary(self) -> Dict[str, int]:
        """Record counts per kind."""
        return {kind: len(records)
                for kind, records in self._records.items()}

    # -- serialisation ----------------------------------------------------------------

    def to_json(self) -> str:
        """One JSON document holding the whole Zoo."""
        payload = {}
        for kind, records in self._records.items():
            entries = []
            for record in records:
                if kind == PowerModelRecord.KIND:
                    entries.append({
                        "vendor": record.vendor,
                        "model": record.model,
                        "power_model": record.power_model.to_dict(),
                        "provenance": record.provenance.to_dict(),
                    })
                else:
                    entries.append(asdict(record))
            payload[kind] = entries
        payload["schema"] = ZOO_SCHEMA
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NetworkPowerZoo":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        schema = payload.pop("schema", None)
        if schema is not None and schema != ZOO_SCHEMA:
            raise ValueError(
                f"unsupported zoo schema {schema!r}; this library reads "
                f"{ZOO_SCHEMA!r}")
        zoo = cls()
        for kind, entries in payload.items():
            record_cls = _RECORD_KINDS.get(kind)
            if record_cls is None:
                raise ValueError(f"unknown record kind in document: {kind!r}")
            for entry in entries:
                prov = Provenance(**entry.pop("provenance"))
                if kind == PowerModelRecord.KIND:
                    model = PowerModel.from_dict(entry.pop("power_model"))
                    zoo.add(PowerModelRecord(provenance=prov,
                                             power_model=model, **entry))
                else:
                    zoo.add(record_cls(provenance=prov, **entry))
        return zoo
