"""The Network Power Zoo: aggregation database for router power data."""

from repro.zoo.ingest import (
    contribute_datasheets,
    contribute_measurements,
    contribute_power_models,
    contribute_psu_points,
    vendor_lookup,
)
from repro.zoo.database import (
    DatasheetRecord,
    MeasurementRecord,
    NetworkPowerZoo,
    PowerModelRecord,
    Provenance,
    PsuRecord,
)

__all__ = [
    "contribute_datasheets",
    "contribute_measurements",
    "contribute_power_models",
    "contribute_psu_points",
    "vendor_lookup",
    "DatasheetRecord",
    "MeasurementRecord",
    "NetworkPowerZoo",
    "PowerModelRecord",
    "Provenance",
    "PsuRecord",
]
