"""Crash-safe file output shared by every JSON-writing surface.

Metrics snapshots, traces, profiles, dashboards, sweep state, and serve
fleet snapshots are all consumed by *other* tooling (CI artifact
uploads, the bench sentinel, dashboards polling a file).  A process
killed mid-``write()`` must never leave a truncated document where a
valid one used to be, so every writer routes through
:func:`atomic_write_text`: write a sibling temp file, then ``os.replace``
it over the target -- an atomic operation on POSIX and Windows alike.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text"]


def atomic_write_text(path: Union[str, os.PathLike], text: str) -> None:
    """Replace ``path``'s contents with ``text``, never leaving a torn file.

    The temp file lives in the target's directory (same filesystem, so
    the final ``os.replace`` is atomic) under ``<name>.tmp``.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, target)
