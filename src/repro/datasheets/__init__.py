"""Datasheet pipeline (§3): corpus, extraction, and analyses."""

from repro.datasheets.corpus import (
    DatasheetCorpus,
    DatasheetDocument,
    DatasheetTruth,
    VENDORS,
    build_corpus,
    render_datasheet,
)
from repro.datasheets.parser import (
    ExtractionAccuracy,
    ParsedDatasheet,
    measure_accuracy,
    parse_corpus,
    parse_datasheet,
)
from repro.datasheets.netbox import (
    DeviceTypeLibrary,
    DeviceTypeRecord,
    library_from_corpus,
)
from repro.datasheets.analysis import (
    DatasheetComparison,
    TrendPoint,
    TREND_MIN_BANDWIDTH_GBPS,
    TREND_OUTLIER_W_PER_100G,
    datasheet_vs_measured,
    efficiency_trend,
    trend_fit,
    trend_spread_by_year,
)
from repro.datasheets.asic import (
    AsicGeneration,
    BROADCOM_ASIC_TREND,
    asic_trend_fit,
    asic_trend_points,
    halving_time_years,
)

__all__ = [
    "DatasheetCorpus",
    "DatasheetDocument",
    "DatasheetTruth",
    "VENDORS",
    "build_corpus",
    "render_datasheet",
    "ExtractionAccuracy",
    "ParsedDatasheet",
    "measure_accuracy",
    "parse_corpus",
    "parse_datasheet",
    "DeviceTypeLibrary",
    "DeviceTypeRecord",
    "library_from_corpus",
    "DatasheetComparison",
    "TrendPoint",
    "TREND_MIN_BANDWIDTH_GBPS",
    "TREND_OUTLIER_W_PER_100G",
    "datasheet_vs_measured",
    "efficiency_trend",
    "trend_fit",
    "trend_spread_by_year",
    "AsicGeneration",
    "BROADCOM_ASIC_TREND",
    "asic_trend_fit",
    "asic_trend_points",
    "halving_time_years",
]
