"""Broadcom switching-ASIC efficiency trend (Fig. 2a).

The paper redraws this trend from a public Broadcom presentation
(Kiselevsky, "Evolution of Switches Power Consumption", 2023): ASIC power
per 100 Gbps of switching capacity dropped steeply across the Trident /
Tomahawk generations.  The figure's point of existence in the paper is as
a *contrast*: the router-level datasheet numbers of Fig. 2b show no such
clean decline.  Values below are read off the redrawn figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.regression import LinearFit, linear_fit


@dataclass(frozen=True)
class AsicGeneration:
    """One switching-ASIC generation's efficiency point."""

    name: str
    year: int
    capacity_gbps: float
    efficiency_w_per_100g: float


#: The Fig. 2a series (redrawn values).
BROADCOM_ASIC_TREND: Tuple[AsicGeneration, ...] = (
    AsicGeneration("Trident+", 2010, 640, 26.0),
    AsicGeneration("Trident2", 2012, 1280, 17.5),
    AsicGeneration("Tomahawk", 2014, 3200, 9.5),
    AsicGeneration("Tomahawk2", 2016, 6400, 6.5),
    AsicGeneration("Tomahawk3", 2018, 12800, 4.3),
    AsicGeneration("Tomahawk4", 2020, 25600, 2.8),
    AsicGeneration("Tomahawk5", 2022, 51200, 2.0),
)


def asic_trend_points() -> List[Tuple[int, float]]:
    """(year, W/100G) pairs for plotting Fig. 2a."""
    return [(g.year, g.efficiency_w_per_100g) for g in BROADCOM_ASIC_TREND]


def asic_trend_fit() -> LinearFit:
    """Linear fit of the ASIC efficiency over time (clearly negative)."""
    years = [g.year for g in BROADCOM_ASIC_TREND]
    effs = [g.efficiency_w_per_100g for g in BROADCOM_ASIC_TREND]
    return linear_fit(years, effs)


def halving_time_years() -> float:
    """Doubling-rate view: years for ASIC W/100G to halve (log-space fit)."""
    import numpy as np

    years = np.array([g.year for g in BROADCOM_ASIC_TREND], dtype=float)
    logs = np.log2([g.efficiency_w_per_100g for g in BROADCOM_ASIC_TREND])
    fit = linear_fit(years, logs)
    return -1.0 / fit.slope
