"""Synthetic vendor-datasheet corpus (§3).

The paper assembles power data from 777 router datasheets.  Since the
originals are unstructured web pages, its pipeline is: NetBox device list
-> fetch datasheet -> LLM extraction -> normalised record.  We reproduce
the *pipeline* with a corpus generator: ground-truth specs are rendered
into deliberately messy datasheet text (several layouts, inconsistent
field names, units in W/kW and Gbps/Tbps, per-port bandwidth that must be
summed, missing values, the occasional literal "TBD" -- all failure modes
§3.1 catalogues), and the parser must extract the fields back.

The corpus embeds the real catalog devices with their true datasheet
values (so Table 1 and Fig. 2b can be regenerated) among synthetic models
whose efficiency statistics follow the paper's observed spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import units
from repro.hardware.catalog import ROUTER_CATALOG

VENDORS = ("Cisco", "Arista", "Juniper")

#: Series name stems per vendor, roughly era-ordered.
_SERIES_STEMS = {
    "Cisco": ["Catalyst 4500", "Catalyst 6500", "ASR 900", "ASR 9000",
              "ISR 4000", "NCS 540", "NCS 5500", "NCS 5700", "Nexus 3000",
              "Nexus 7000", "Nexus 9300", "Cisco 8000", "Cisco 8100"],
    "Arista": ["7050X", "7060X", "7280R", "7280R3", "7300X", "7500R",
               "7800R3", "720XP"],
    "Juniper": ["EX4300", "EX4600", "MX204", "MX480", "QFX5100",
                "QFX5200", "ACX7100", "PTX10000"],
}


@dataclass(frozen=True)
class DatasheetTruth:
    """Ground truth behind one rendered datasheet."""

    model: str
    vendor: str
    series: str
    release_year: Optional[int]
    typical_w: Optional[float]
    max_w: Optional[float]
    max_bandwidth_gbps: float
    psu_options_w: Tuple[int, ...] = ()

    @property
    def efficiency_w_per_100g(self) -> Optional[float]:
        """The Fig. 2 metric, from typical power (max as fallback)."""
        power = self.typical_w if self.typical_w is not None else self.max_w
        if power is None or self.max_bandwidth_gbps <= 0:
            return None
        return power / (self.max_bandwidth_gbps / 100.0)


@dataclass
class DatasheetDocument:
    """One datasheet as published: truth plus the rendered text."""

    truth: DatasheetTruth
    text: str
    url: str


@dataclass
class DatasheetCorpus:
    """The full corpus, keyed by model name."""

    documents: Dict[str, DatasheetDocument] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.documents)

    def truths(self) -> List[DatasheetTruth]:
        """All ground-truth records."""
        return [doc.truth for doc in self.documents.values()]

    def document(self, model: str) -> DatasheetDocument:
        """Datasheet for one model."""
        try:
            return self.documents[model]
        except KeyError:
            raise KeyError(f"no datasheet for model {model!r}")


# ---------------------------------------------------------------------------
# Truth generation
# ---------------------------------------------------------------------------


def _efficiency_for_year(year: int, rng: np.random.Generator) -> float:
    """Typical W/100G for a router released in ``year``.

    Calibrated to Fig. 2b: a slow, noisy decline -- mostly 10-120 W/100G
    throughout the 2010s with heavy spread and the occasional ancient
    outlier near 300 -- rather than the crisp ASIC-level exponential of
    Fig. 2a.
    """
    central = 22.0 + 300.0 * np.exp(-(year - 2002) / 6.5)
    value = central * float(rng.lognormal(0.0, 0.75))
    return float(np.clip(value, 4.0, 400.0))


_BANDWIDTH_LADDER = (24, 48, 64, 96, 128, 160, 240, 480, 640, 960, 1200,
                     1800, 2400, 3200, 3600, 4800, 6400, 9600, 12800, 14400)


def _synthetic_truths(n_models: int,
                      rng: np.random.Generator) -> List[DatasheetTruth]:
    truths = []
    used_names = set(ROUTER_CATALOG)
    shares = [n_models // len(VENDORS)] * len(VENDORS)
    shares[0] += n_models - sum(shares)  # exact total, remainder to Cisco
    for vendor, share in zip(VENDORS, shares):
        stems = _SERIES_STEMS[vendor]
        made = 0
        while made < share:
            series = str(rng.choice(stems))
            year = int(rng.integers(2005, 2024))
            n_in_series = int(rng.integers(2, 7))
            for _ in range(n_in_series):
                if made >= share:
                    break
                bandwidth = float(rng.choice(_BANDWIDTH_LADDER))
                efficiency = _efficiency_for_year(year, rng)
                typical = efficiency * bandwidth / 100.0
                maximum = typical * float(rng.uniform(1.3, 2.2))
                suffix = int(rng.integers(1, 99))
                model = f"{series.replace(' ', '-')}-{int(bandwidth)}G-{suffix:02d}"
                if model in used_names:
                    continue
                used_names.add(model)
                # §3.1's irregularities: some sheets omit typical power,
                # some omit the release year entirely.
                has_typical = rng.random() > 0.25
                psu = tuple(sorted(set(
                    int(rng.choice([250, 400, 650, 750, 1100, 2000, 3000]))
                    for _ in range(int(rng.integers(1, 3))))))
                truths.append(DatasheetTruth(
                    model=model, vendor=vendor, series=series,
                    release_year=year if vendor == "Cisco" else None,
                    typical_w=round(typical) if has_typical else None,
                    max_w=round(maximum),
                    max_bandwidth_gbps=bandwidth,
                    psu_options_w=psu))
                made += 1
    return truths


def _catalog_truths() -> List[DatasheetTruth]:
    truths = []
    for spec in ROUTER_CATALOG.values():
        ds = spec.datasheet
        truths.append(DatasheetTruth(
            model=spec.name, vendor=spec.vendor, series=spec.series,
            release_year=ds.release_year,
            typical_w=ds.typical_w, max_w=ds.max_w,
            max_bandwidth_gbps=ds.max_bandwidth_gbps,
            psu_options_w=ds.psu_options_w))
    return truths


# ---------------------------------------------------------------------------
# Rendering: structured truth -> messy text
# ---------------------------------------------------------------------------


def _fmt_power(value_w: float, rng: np.random.Generator) -> str:
    if value_w >= 1000 and rng.random() < 0.4:
        return f"{value_w / units.KILO:.2f} kW"
    if rng.random() < 0.3:
        return f"{value_w:.1f}W"
    return f"{value_w:.0f} W"


def _fmt_bandwidth(gbps: float, rng: np.random.Generator) -> str:
    if gbps >= 1000 and rng.random() < 0.6:
        return f"{gbps / units.KILO:g} Tbps"
    if rng.random() < 0.3:
        return f"{gbps:g}-Gbps"
    return f"{gbps:g} Gbps"


_TYPICAL_LABELS = ("Typical power", "Power draw (typical)",
                   "Typical operating power", "Power consumption, typical",
                   "Typical power consumption at 25°C")
_MAX_LABELS = ("Maximum power", "Max power draw", "Power (max)",
               "Maximum power consumption", "Worst-case power")
_BW_LABELS = ("Switching capacity", "Maximum bandwidth", "Throughput",
              "Aggregate bandwidth", "Forwarding capacity")


def _render_table_style(truth: DatasheetTruth,
                        rng: np.random.Generator) -> str:
    rows = [f"{truth.vendor} {truth.model} Data Sheet", "",
            "Specifications", "=" * 40]
    rows.append(f"| Product ID | {truth.model} |")
    rows.append(f"| Series | {truth.vendor} {truth.series} Series |")
    bw_label = str(rng.choice(_BW_LABELS))
    rows.append(f"| {bw_label} | {_fmt_bandwidth(truth.max_bandwidth_gbps, rng)} |")
    if truth.typical_w is not None:
        rows.append(f"| {rng.choice(_TYPICAL_LABELS)} | "
                    f"{_fmt_power(truth.typical_w, rng)} |")
    elif rng.random() < 0.5:
        rows.append(f"| {rng.choice(_TYPICAL_LABELS)} | TBD |")
    if truth.max_w is not None:
        rows.append(f"| {rng.choice(_MAX_LABELS)} | "
                    f"{_fmt_power(truth.max_w, rng)} |")
    for capacity in truth.psu_options_w:
        rows.append(f"| Power supply option | {capacity} W AC |")
    return "\n".join(rows)


def _render_prose_style(truth: DatasheetTruth,
                        rng: np.random.Generator) -> str:
    parts = [
        f"{truth.vendor} {truth.model}",
        "",
        f"The {truth.model}, part of the {truth.series} series, delivers "
        f"{_fmt_bandwidth(truth.max_bandwidth_gbps, rng)} of forwarding "
        f"capacity in a compact form factor.",
    ]
    if truth.typical_w is not None:
        parts.append(
            f"In typical deployments the system draws "
            f"{_fmt_power(truth.typical_w, rng)}"
            + (" at 25°C ambient." if rng.random() < 0.4 else "."))
    if truth.max_w is not None:
        parts.append(
            f"Provision facilities for a maximum power of "
            f"{_fmt_power(truth.max_w, rng)}.")
    if truth.psu_options_w:
        options = " or ".join(f"{c} W" for c in truth.psu_options_w)
        parts.append(f"The chassis accepts redundant {options} AC supplies.")
    return "\n".join(parts)


def _render_portsum_style(truth: DatasheetTruth,
                          rng: np.random.Generator) -> str:
    """Bandwidth only derivable by summing port groups (§3.1 item 3)."""
    total = truth.max_bandwidth_gbps
    port_speed = float(rng.choice([10, 25, 100, 400]))
    while port_speed > total:
        port_speed /= 4
    n_ports = max(1, int(round(total / port_speed)))
    remainder = total - n_ports * port_speed
    lines = [f"{truth.vendor} {truth.model} -- Product Overview", "",
             "Port configuration:",
             f"  - {n_ports} x {port_speed:g}GE ports"]
    if remainder > 0:
        lines.append(f"  - 1 x {remainder:g}GE uplink")
    lines.append("")
    if truth.typical_w is not None:
        lines.append(f"{rng.choice(_TYPICAL_LABELS)}: "
                     f"{_fmt_power(truth.typical_w, rng)}")
    if truth.max_w is not None:
        lines.append(f"{rng.choice(_MAX_LABELS)}: "
                     f"{_fmt_power(truth.max_w, rng)}")
    return "\n".join(lines)


_RENDERERS = (_render_table_style, _render_prose_style, _render_portsum_style)


def render_datasheet(truth: DatasheetTruth,
                     rng: np.random.Generator) -> str:
    """Render a truth record into one of the messy datasheet layouts."""
    renderer = _RENDERERS[int(rng.integers(0, len(_RENDERERS)))]
    return renderer(truth, rng)


def build_corpus(n_models: int = 777,
                 rng: Optional[np.random.Generator] = None,
                 ) -> DatasheetCorpus:
    """Build the full corpus: real catalog devices + synthetic fill.

    ``n_models`` is the total corpus size (the paper's collection spans
    777 models from Cisco, Arista, and Juniper).
    """
    if rng is None:
        rng = np.random.default_rng()
    catalog = _catalog_truths()
    n_synthetic = max(0, n_models - len(catalog))
    truths = catalog + _synthetic_truths(n_synthetic, rng)
    corpus = DatasheetCorpus()
    for truth in truths:
        slug = truth.model.lower().replace(" ", "-")
        corpus.documents[truth.model] = DatasheetDocument(
            truth=truth,
            text=render_datasheet(truth, rng),
            url=f"https://www.{truth.vendor.lower()}.com/datasheets/{slug}.html",
        )
    return corpus
