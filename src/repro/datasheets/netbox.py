"""NetBox device-type library stand-in (§3.2's model list source).

The paper bootstraps its datasheet collection from the community NetBox
device-type library: a structured YAML collection of device models per
manufacturer, including datasheet URLs and PSU definitions.  This module
provides the equivalent structured records, generated from the corpus, so
the pipeline "device list -> fetch sheet -> extract" runs end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.datasheets.corpus import DatasheetCorpus


@dataclass(frozen=True)
class DeviceTypeRecord:
    """One NetBox-style device-type entry."""

    manufacturer: str
    model: str
    slug: str
    datasheet_url: str
    psu_count: int = 0
    psu_capacity_w: Optional[float] = None

    def to_yamlish(self) -> str:
        """Render in the library's YAML shape (for round-trip tests)."""
        lines = [
            f"manufacturer: {self.manufacturer}",
            f"model: {self.model}",
            f"slug: {self.slug}",
            f"comments: '[Datasheet]({self.datasheet_url})'",
        ]
        if self.psu_count and self.psu_capacity_w:
            lines.append("module-bays:")
            for i in range(self.psu_count):
                lines.append(f"  - name: PSU{i}")
                lines.append(f"    power: {self.psu_capacity_w:.0f}")
        return "\n".join(lines)


@dataclass
class DeviceTypeLibrary:
    """The library: records grouped by manufacturer."""

    records: Dict[str, DeviceTypeRecord] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def by_manufacturer(self, manufacturer: str) -> List[DeviceTypeRecord]:
        """All models of one vendor, sorted by model name."""
        return sorted(
            (r for r in self.records.values()
             if r.manufacturer == manufacturer),
            key=lambda r: r.model)

    def datasheet_urls(self) -> List[str]:
        """Every datasheet URL in the library (the crawl worklist)."""
        return [r.datasheet_url for r in self.records.values()]


def library_from_corpus(corpus: DatasheetCorpus) -> DeviceTypeLibrary:
    """Build the device-type library the collection pipeline starts from."""
    library = DeviceTypeLibrary()
    for model, document in corpus.documents.items():
        truth = document.truth
        psu_options = truth.psu_options_w
        library.records[model] = DeviceTypeRecord(
            manufacturer=truth.vendor,
            model=model,
            slug=model.lower().replace(" ", "-"),
            datasheet_url=document.url,
            psu_count=2 if psu_options else 0,
            psu_capacity_w=float(psu_options[0]) if psu_options else None,
        )
    return library
