"""Datasheet field extraction (the LLM-extraction stand-in, §3.2).

The paper uses GPT-4o to pull power and bandwidth values out of
unstructured datasheets, noting the results are "reasonably accurate
but -- as one would expect -- far from perfect".  This module plays that
role with deterministic heuristics: keyword-anchored regexes over the
rendered text, unit normalisation, and port-group summation.  Like the
LLM, it is imperfect by design; extraction accuracy is itself measured by
the test suite, and parsed records carry a flag distinguishing them from
authoritative sources (the paper separates LLM output from NetBox and
manual data for the same reason).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.datasheets.corpus import DatasheetCorpus, DatasheetDocument

#: A power quantity: float, optional kW suffix.
_POWER_RE = re.compile(
    r"(\d+(?:[.,]\d+)?)\s*(kW|W)\b", re.IGNORECASE)
#: A bandwidth quantity.
_BANDWIDTH_RE = re.compile(
    r"(\d+(?:[.,]\d+)?)[\s-]*(Tbps|Gbps)\b", re.IGNORECASE)
#: A port group line like "24 x 100GE ports" or "1 x 40GE uplink".
_PORT_GROUP_RE = re.compile(
    r"(\d+)\s*x\s*(\d+(?:\.\d+)?)GE\b", re.IGNORECASE)
#: PSU option like "1100 W AC" near supply keywords.
_PSU_RE = re.compile(
    r"(\d{3,4})\s*W\s*AC", re.IGNORECASE)

_TYPICAL_KEYWORDS = ("typical", "typical deployments")
_MAX_KEYWORDS = ("max", "maximum", "worst-case", "provision")
_BANDWIDTH_KEYWORDS = ("bandwidth", "capacity", "throughput", "forwarding")
_PSU_KEYWORDS = ("power supply", "supplies", "psu")


@dataclass
class ParsedDatasheet:
    """What extraction recovered from one datasheet."""

    model: str
    vendor: str = ""
    series: str = ""
    typical_w: Optional[float] = None
    max_w: Optional[float] = None
    max_bandwidth_gbps: Optional[float] = None
    psu_options_w: Tuple[int, ...] = ()
    release_year: Optional[int] = None
    #: Marks values produced by automated extraction (vs NetBox/manual),
    #: mirroring the dataset's provenance tagging (§3.2).
    source: str = "extracted"

    @property
    def efficiency_w_per_100g(self) -> Optional[float]:
        """Fig. 2 metric from the parsed values (typical, else max)."""
        power = self.typical_w if self.typical_w is not None else self.max_w
        if power is None or not self.max_bandwidth_gbps:
            return None
        return power / (self.max_bandwidth_gbps / 100.0)


def _to_watts(value: str, unit: str) -> float:
    number = float(value.replace(",", "."))
    return number * units.KILO if unit.lower() == "kw" else number


def _to_gbps(value: str, unit: str) -> float:
    number = float(value.replace(",", "."))
    return number * units.KILO if unit.lower() == "tbps" else number


def _power_near_keywords(lines: List[str], keywords: Tuple[str, ...],
                         ) -> Optional[float]:
    for line in lines:
        lowered = line.lower()
        if any(k in lowered for k in keywords):
            match = _POWER_RE.search(line)
            if match:
                return _to_watts(match.group(1), match.group(2))
    return None


def parse_datasheet(document: DatasheetDocument) -> ParsedDatasheet:
    """Extract the §3.1 target fields from one rendered datasheet."""
    text = document.text
    lines = text.splitlines()
    model = document.truth.model  # the fetch loop knows which model it asked for

    parsed = ParsedDatasheet(model=model)

    # Vendor & series: first line is the title on every layout we know.
    if lines:
        title = lines[0]
        for vendor in ("Cisco", "Arista", "Juniper", "EdgeCore", "Extreme"):
            if vendor.lower() in title.lower():
                parsed.vendor = vendor
        series_match = re.search(r"part of the (.+?) series", text,
                                 re.IGNORECASE)
        if series_match:
            parsed.series = series_match.group(1).strip()
        else:
            series_match = re.search(r"\|\s*Series\s*\|\s*(.+?)\s*\|", text)
            if series_match:
                parsed.series = (series_match.group(1)
                                 .replace("Series", "").strip())

    parsed.typical_w = _power_near_keywords(lines, _TYPICAL_KEYWORDS)
    # Avoid the typical line being re-matched as max: scan only lines
    # with max-ish keywords and without typical keywords.
    max_lines = [l for l in lines
                 if not any(k in l.lower() for k in _TYPICAL_KEYWORDS)]
    parsed.max_w = _power_near_keywords(max_lines, _MAX_KEYWORDS)

    # Bandwidth: explicit value near a capacity keyword, else port sums.
    for line in lines:
        lowered = line.lower()
        if any(k in lowered for k in _BANDWIDTH_KEYWORDS):
            match = _BANDWIDTH_RE.search(line)
            if match:
                parsed.max_bandwidth_gbps = _to_gbps(match.group(1),
                                                     match.group(2))
                break
    if parsed.max_bandwidth_gbps is None:
        match = _BANDWIDTH_RE.search(text)
        if match:
            parsed.max_bandwidth_gbps = _to_gbps(match.group(1),
                                                 match.group(2))
    if parsed.max_bandwidth_gbps is None:
        groups = _PORT_GROUP_RE.findall(text)
        if groups:
            parsed.max_bandwidth_gbps = sum(
                int(count) * float(speed) for count, speed in groups)

    # PSU options: W-AC quantities on supply-flavoured lines.
    psu: List[int] = []
    for line in lines:
        lowered = line.lower()
        if any(k in lowered for k in _PSU_KEYWORDS):
            psu.extend(int(m.group(1)) for m in _PSU_RE.finditer(line))
    parsed.psu_options_w = tuple(sorted(set(psu)))

    return parsed


def parse_corpus(corpus: DatasheetCorpus) -> Dict[str, ParsedDatasheet]:
    """Run extraction over every document; never raises per-document."""
    parsed: Dict[str, ParsedDatasheet] = {}
    for model, document in corpus.documents.items():
        try:
            parsed[model] = parse_datasheet(document)
        except Exception:  # noqa: BLE001 -- a bad sheet must not kill the run
            parsed[model] = ParsedDatasheet(model=model, source="failed")
    return parsed


@dataclass
class ExtractionAccuracy:
    """How well extraction recovered the corpus ground truth."""

    n_documents: int
    typical_correct: int
    typical_present: int
    max_correct: int
    max_present: int
    bandwidth_correct: int
    bandwidth_present: int

    @staticmethod
    def _rate(correct: int, present: int) -> float:
        return correct / present if present else 1.0

    @property
    def typical_rate(self) -> float:
        """Fraction of present typical-power values recovered."""
        return self._rate(self.typical_correct, self.typical_present)

    @property
    def max_rate(self) -> float:
        """Fraction of present max-power values recovered."""
        return self._rate(self.max_correct, self.max_present)

    @property
    def bandwidth_rate(self) -> float:
        """Fraction of bandwidth values recovered."""
        return self._rate(self.bandwidth_correct, self.bandwidth_present)


def measure_accuracy(corpus: DatasheetCorpus,
                     parsed: Dict[str, ParsedDatasheet],
                     tolerance: float = 0.02) -> ExtractionAccuracy:
    """Compare parsed values to corpus truth (manual-verification analogue)."""
    def close(a: Optional[float], b: Optional[float]) -> bool:
        if a is None or b is None:
            return False
        return abs(a - b) <= tolerance * max(abs(b), 1.0)

    acc = ExtractionAccuracy(n_documents=len(corpus), typical_correct=0,
                             typical_present=0, max_correct=0,
                             max_present=0, bandwidth_correct=0,
                             bandwidth_present=0)
    for model, document in corpus.documents.items():
        truth = document.truth
        record = parsed.get(model)
        if record is None:
            continue
        if truth.typical_w is not None:
            acc.typical_present += 1
            if close(record.typical_w, truth.typical_w):
                acc.typical_correct += 1
        if truth.max_w is not None:
            acc.max_present += 1
            if close(record.max_w, truth.max_w):
                acc.max_correct += 1
        acc.bandwidth_present += 1
        if close(record.max_bandwidth_gbps, truth.max_bandwidth_gbps):
            acc.bandwidth_correct += 1
    return acc
