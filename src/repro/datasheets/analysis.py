"""Datasheet analyses of §3.3: the efficiency trend and Table 1.

Two questions:

* **3.3.1** do datasheets show power-efficiency improvements over time?
  (Fig. 2b: W/100G by release year for >100G routers; compare the fitted
  trend to the crisp ASIC decline of Fig. 2a.)
* **3.3.2** are datasheet power numbers accurate?  (Table 1: the
  datasheet "typical" against the median of the measured SNMP power,
  with the relative overestimation ``(typical - measured) / typical``.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.regression import LinearFit, linear_fit
from repro.datasheets.parser import ParsedDatasheet

#: Routers below this capacity are excluded from the efficiency trend --
#: "the metric is intended for high-end routers" (§3.3.1).
TREND_MIN_BANDWIDTH_GBPS = 100.0

#: Efficiency values above this are dropped from the *plot* (the paper
#: removed two outliers around 300 W/100G for readability).
TREND_OUTLIER_W_PER_100G = 250.0


@dataclass(frozen=True)
class TrendPoint:
    """One router's efficiency point for Fig. 2b."""

    model: str
    year: int
    efficiency_w_per_100g: float


def efficiency_trend(parsed: Mapping[str, ParsedDatasheet],
                     release_years: Optional[Mapping[str, int]] = None,
                     min_bandwidth_gbps: float = TREND_MIN_BANDWIDTH_GBPS,
                     drop_outliers_above: Optional[float]
                     = TREND_OUTLIER_W_PER_100G) -> List[TrendPoint]:
    """The Fig. 2b point cloud.

    ``release_years`` supplies manually collected dates for models whose
    parsed record has none (the paper collected all release dates by hand;
    only Cisco devices have them in the dataset).
    """
    points: List[TrendPoint] = []
    for model, record in parsed.items():
        year = record.release_year
        if year is None and release_years is not None:
            year = release_years.get(model)
        if year is None:
            continue
        if (record.max_bandwidth_gbps is None
                or record.max_bandwidth_gbps <= min_bandwidth_gbps):
            continue
        efficiency = record.efficiency_w_per_100g
        if efficiency is None:
            continue
        if (drop_outliers_above is not None
                and efficiency > drop_outliers_above):
            continue
        points.append(TrendPoint(model=model, year=year,
                                 efficiency_w_per_100g=efficiency))
    return points


def trend_fit(points: Sequence[TrendPoint]) -> LinearFit:
    """Linear fit of datasheet efficiency over release year."""
    if len(points) < 2:
        raise ValueError(f"need >= 2 trend points, got {len(points)}")
    return linear_fit([p.year for p in points],
                      [p.efficiency_w_per_100g for p in points])


def trend_spread_by_year(points: Sequence[TrendPoint]) -> Dict[int, Tuple[float, float]]:
    """Per-year (mean, std) of the efficiency metric."""
    by_year: Dict[int, List[float]] = {}
    for point in points:
        by_year.setdefault(point.year, []).append(point.efficiency_w_per_100g)
    return {
        year: (float(np.mean(vals)),
               float(np.std(vals)) if len(vals) > 1 else 0.0)
        for year, vals in sorted(by_year.items())
    }


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DatasheetComparison:
    """One Table 1 row."""

    router_model: str
    measured_median_w: float
    datasheet_typical_w: float
    #: ``(typical - measured) / typical`` -- positive means the datasheet
    #: overestimates (the expected case), negative that it *under*states
    #: real draw (the Cisco 8000 surprise).
    relative_overestimate: float

    @property
    def overestimates(self) -> bool:
        """Whether the datasheet value is above the measured median."""
        return self.relative_overestimate > 0


def datasheet_vs_measured(parsed: Mapping[str, ParsedDatasheet],
                          measured_medians_w: Mapping[str, float],
                          ) -> List[DatasheetComparison]:
    """Build Table 1: datasheet "typical" vs measured median power.

    Models missing either side are skipped; rows are ordered by
    decreasing overestimation like the paper's table.
    """
    rows: List[DatasheetComparison] = []
    for model, median in measured_medians_w.items():
        record = parsed.get(model)
        if record is None:
            continue
        typical = record.typical_w
        if typical is None:
            typical = record.max_w
        if typical is None or typical <= 0 or not np.isfinite(median):
            continue
        rows.append(DatasheetComparison(
            router_model=model,
            measured_median_w=float(median),
            datasheet_typical_w=float(typical),
            relative_overestimate=(typical - median) / typical))
    rows.sort(key=lambda r: r.relative_overestimate, reverse=True)
    return rows
